//! Self-stabilization: recovery from clock corruption.
//!
//! Theorem 5.6 (II) promises that whenever the global skew exceeds the
//! steady-state bound, it *shrinks* at rate at least `mu(1-rho) - 2rho`.
//! The registry scenario `self-heal` scripts the corruption — one node's
//! logical clock jumps a full second — as a `fault offset` line in
//! `scenarios/self-heal.scn`; this example injects it at the scripted
//! instant (exactly what the campaign runner does) and watches the network
//! pull itself back into spec, in time linear in the injected skew.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example self_healing
//! ```

use gradient_clock_sync::net::NodeId;
use gradient_clock_sync::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = registry::find("self-heal").expect("built-in scenario");
    let &FaultSpec::ClockOffset { at, node, amount } =
        spec.faults.first().expect("self-heal scripts a fault")
    else {
        unreachable!("self-heal's scripted fault is a clock corruption");
    };
    let mut sim = spec.build(5)?;
    let recovery_rate = sim.params().mu() * (1.0 - sim.params().rho()) - 2.0 * sim.params().rho();

    sim.run_until_secs(at);
    let baseline = sim.snapshot().global_skew();
    println!("steady-state global skew: {baseline:.6}s");

    sim.inject_clock_offset(NodeId::from(node), amount);
    println!("t = {at}s: corrupted node v{node} by +{amount}s\n");
    println!(
        "expected recovery rate >= mu(1-rho) - 2rho = {recovery_rate:.4}  \
         (=> ~{:.0}s to recover)\n",
        amount / recovery_rate
    );

    println!("   t      global skew");
    let mut recovered_at = None;
    let steps = (spec.end_secs() - at).ceil() as u32;
    for step in 0..=steps {
        let t = at + f64::from(step);
        sim.run_until_secs(t);
        let g = sim.snapshot().global_skew();
        if step % 2 == 0 {
            println!("{t:>6.0}s  {g:>10.6}s");
        }
        if recovered_at.is_none() && g <= 2.0 * baseline {
            recovered_at = Some(t);
        }
    }

    match recovered_at {
        Some(t) => println!(
            "\nrecovered to 2x the steady-state skew after {:.0}s — linear-time \
             self-stabilization.",
            t - at
        ),
        None => println!("\nnot yet recovered (increase the horizon)"),
    }
    Ok(())
}
