//! Self-stabilization: recovery from clock corruption.
//!
//! Theorem 5.6 (II) promises that whenever the global skew exceeds the
//! steady-state bound, it *shrinks* at rate at least `mu(1-rho) - 2rho`.
//! We corrupt one node's logical clock by a full second and watch the
//! network pull itself back into spec — in time linear in the injected
//! skew, exactly as the self-stabilization discussion in §5.2/§5.3
//! predicts.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example self_healing
//! ```

use gradient_clock_sync::net::NodeId;
use gradient_clock_sync::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::builder().rho(0.01).mu(0.1).build()?;
    let recovery_rate = params.mu() * (1.0 - params.rho()) - 2.0 * params.rho();
    let mut sim = SimBuilder::new(params)
        .topology(Topology::line(8))
        .drift(DriftModel::TwoBlock)
        .seed(5)
        .build()?;

    sim.run_until_secs(10.0);
    let baseline = sim.snapshot().global_skew();
    println!("steady-state global skew: {baseline:.6}s");

    const INJECTED: f64 = 1.0;
    sim.inject_clock_offset(NodeId(0), INJECTED);
    println!("t = 10s: corrupted node v0 by +{INJECTED}s\n");
    println!(
        "expected recovery rate >= mu(1-rho) - 2rho = {recovery_rate:.4}  \
         (=> ~{:.0}s to recover)\n",
        INJECTED / recovery_rate
    );

    println!("   t      global skew");
    let mut recovered_at = None;
    for step in 0..=30 {
        let t = 10.0 + f64::from(step);
        sim.run_until_secs(t);
        let g = sim.snapshot().global_skew();
        if step % 2 == 0 {
            println!("{t:>6.0}s  {g:>10.6}s");
        }
        if recovered_at.is_none() && g <= 2.0 * baseline {
            recovered_at = Some(t);
        }
    }

    match recovered_at {
        Some(t) => println!(
            "\nrecovered to 2x the steady-state skew after {:.0}s — linear-time \
             self-stabilization.",
            t - 10.0
        ),
        None => println!("\nnot yet recovered (increase the horizon)"),
    }
    Ok(())
}
