//! Watch a new edge being inserted level by level.
//!
//! A chord appears across a 12-ring at t = 5 s. Until its endpoints have
//! (a) completed the Listing 1 handshake and (b) unlocked enough levels,
//! the edge tolerates the large skew its endpoints accumulated while they
//! were distant; the staged insertion then tightens the requirement until
//! the stable gradient bound holds. This is Theorem 5.25's O(G/mu)
//! stabilization, observable.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example edge_insertion
//! ```

use gradient_clock_sync::core::edge_state::Level;
use gradient_clock_sync::net::{EdgeKey, NodeId};
use gradient_clock_sync::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 12;
    let (u, v) = (NodeId(0), NodeId(6)); // antipodal on the ring
    let chord = EdgeKey::new(u, v);

    // A short insertion scale keeps the demo brisk; scale 1.0 reproduces
    // the paper's (conservative) constant.
    let mut pb = Params::builder();
    pb.rho(0.01).mu(0.1).insertion_scale(0.05);
    let params = pb.build()?;

    let schedule = NetworkSchedule::with_edge_insertion(
        &Topology::ring(n),
        &[(chord, SimTime::from_secs(5.0))],
        0.002,
    );
    let mut sim = SimBuilder::new(params)
        .schedule(schedule)
        .drift(DriftModel::TwoBlock)
        .seed(11)
        .build()?;

    println!("ring({n}) + chord {chord} at t = 5s\n");
    println!("   t      skew(u,v)   level(u,v)   global");
    let mut last_level = None;
    for step in 0..240 {
        let t = f64::from(step) * 0.5;
        sim.run_until_secs(t);
        let snap = sim.snapshot();
        let level = sim.level_between(u, v);
        let level_str = match level {
            None => "--".to_string(),
            Some(Level::Infinite) => "inf".to_string(),
            Some(Level::Finite(s)) => s.to_string(),
        };
        // Print on level changes and every 10 s.
        if level != last_level || step % 20 == 0 {
            println!(
                "{:>6.1}s  {:>9.6}s  {:>10}  {:>9.6}s",
                t,
                snap.skew(u, v),
                level_str,
                snap.global_skew()
            );
            last_level = level;
        }
    }

    let info = sim.edge_info(chord).expect("chord is in the universe");
    let g_hat = sim.params().g_tilde().unwrap();
    let bound = gradient_bound(sim.params(), g_hat, info.kappa);
    let final_skew = sim.snapshot().skew(u, v);
    println!(
        "\nfinal skew on the chord: {final_skew:.6}s  (stable gradient bound: {bound:.6}s) -> {}",
        if final_skew <= bound {
            "OK"
        } else {
            "not yet stabilized"
        }
    );
    Ok(())
}
