//! Quickstart: run a built-in scenario and print the skews.
//!
//! The scenario itself — an 8-ring with alternating worst-case drift —
//! is data, not code: `ring-steady` in the scenario registry (see
//! `scenarios/ring-steady.scn` and `gcs-scenarios list`).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gradient_clock_sync::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The scenario: topology, drift, estimates, and observation plan
    //    all come from the registry entry.
    let spec = registry::find("ring-steady").expect("built-in scenario");
    let mut sim = spec.build(42)?;
    println!(
        "scenario {} — {}\nA_OPT with rho = {}, mu = {}, sigma = {:.2}\n",
        spec.name,
        spec.description,
        sim.params().rho(),
        sim.params().mu(),
        sim.params().sigma()
    );

    // 2. Run to the scenario's end, reporting at four checkpoints.
    let end = spec.end_secs();
    for step in 1..=4 {
        sim.run_until_secs(end * f64::from(step) / 4.0);
        let snap = sim.snapshot();
        println!(
            "t = {:>4.0}s   global skew = {:>10.6}s   local skew = {:>10.6}s",
            snap.time,
            snap.global_skew(),
            local_skew(&sim),
        );
    }

    // 3. The gradient property: neighbours are far better synchronized
    //    than the global bound requires.
    let g_hat = sim.params().g_tilde().expect("derived by the builder");
    let slack = sim.params().discretization_slack(sim.tick_interval());
    let report = GradientChecker::new(g_hat, 12, slack).check(&sim);
    println!(
        "gradient legality: {} (worst pairwise bound usage: {:.1}%)",
        if report.is_legal() { "OK" } else { "VIOLATED" },
        100.0 * report.worst_pair_ratio
    );
    Ok(())
}
