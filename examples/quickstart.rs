//! Quickstart: synchronize an 8-node ring and print the skews.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gradient_clock_sync::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Algorithm parameters: drift bound rho, fast-mode boost mu.
    //    sigma = (1-rho)*mu/(2*rho) is the gradient base; here ~4.95.
    let params = Params::builder().rho(0.01).mu(0.1).build()?;
    println!(
        "A_OPT with rho = {}, mu = {}, sigma = {:.2}",
        params.rho(),
        params.mu(),
        params.sigma()
    );

    // 2. Scenario: a static 8-ring with worst-case drift (alternate nodes
    //    run +1% / -1% fast).
    let mut sim = SimBuilder::new(params)
        .topology(Topology::ring(8))
        .drift(DriftModel::Alternating)
        .seed(42)
        .build()?;

    // 3. Run for 60 simulated seconds, reporting every 15.
    for checkpoint in [15.0, 30.0, 45.0, 60.0] {
        sim.run_until_secs(checkpoint);
        let snap = sim.snapshot();
        println!(
            "t = {:>4.0}s   global skew = {:>10.6}s   local skew = {:>10.6}s",
            snap.time,
            snap.global_skew(),
            local_skew(&sim),
        );
    }

    // 4. The gradient property: neighbours are far better synchronized
    //    than the global bound requires.
    let g_hat = sim.params().g_tilde().expect("derived by the builder");
    let slack = sim.params().discretization_slack(sim.tick_interval());
    let report = GradientChecker::new(g_hat, 12, slack).check(&sim);
    println!(
        "gradient legality: {} (worst pairwise bound usage: {:.1}%)",
        if report.is_legal() { "OK" } else { "VIOLATED" },
        100.0 * report.worst_pair_ratio
    );
    Ok(())
}
