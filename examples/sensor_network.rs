//! TDMA guard bands in a grid sensor network — the motivating scenario
//! from the paper's introduction.
//!
//! A TDMA MAC layer must pad every transmission slot with a guard band
//! covering the worst clock skew that can ever occur between *interfering*
//! (i.e. nearby) nodes. Guard bands are provisioned from *guarantees*, not
//! from lucky runs:
//!
//! * with a max-flood synchronizer the only guarantee available is the
//!   global-skew bound Θ(D) — any edge may carry the whole network skew in
//!   the worst case;
//! * with gradient synchronization the local skew is guaranteed to stay
//!   within `O(κ · log_σ(D/κ))`, exponentially smaller.
//!
//! This example provisions both guards on a 6×6 grid from the respective
//! bounds and sanity-checks them against a measured run.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example sensor_network
//! ```

use gradient_clock_sync::prelude::*;

const SLOT_SECONDS: f64 = 0.050; // 50 ms TDMA slots

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::builder().rho(0.01).mu(0.1).build()?;
    let mut sim = SimBuilder::new(params)
        .topology(Topology::grid(6, 6))
        .drift(DriftModel::RandomConstant)
        .estimates(EstimateMode::Oracle(ErrorModel::RandomBias))
        .seed(7)
        .build()?;

    // Provisioning: the guarantees each synchronizer can promise.
    let g_hat = sim.params().g_tilde().expect("derived by the builder");
    let chord = sim.graph().undirected_edges().next().expect("grid edge");
    let kappa = sim.edge_info(chord).expect("edge info").kappa;
    let gradient_guard = gradient_bound(sim.params(), g_hat, kappa);
    let global_guard = g_hat;

    // Sanity run: observe one minute of steady state.
    sim.run_until_secs(30.0);
    let mut worst_local: f64 = 0.0;
    let mut worst_global: f64 = 0.0;
    for step in 0..60 {
        sim.run_until_secs(30.0 + f64::from(step));
        worst_local = worst_local.max(local_skew(&sim));
        worst_global = worst_global.max(sim.snapshot().global_skew());
    }

    let capacity = |guard: f64| (SLOT_SECONDS / (SLOT_SECONDS + 2.0 * guard)) * 100.0;

    println!("6x6 sensor grid, 50 ms TDMA slots, rho = 1%\n");
    println!("provisioned guarantees:");
    println!(
        "  gradient (A_OPT) local-skew bound : {gradient_guard:>9.4}s  -> slot efficiency {:>5.1}%",
        capacity(gradient_guard)
    );
    println!(
        "  max-flood global-skew bound       : {global_guard:>9.4}s  -> slot efficiency {:>5.1}%",
        capacity(global_guard)
    );
    println!(
        "  provisioning advantage            : {:>8.1}x smaller guard band",
        global_guard / gradient_guard
    );
    println!("\nmeasured over 60 s of steady state (benign drift):");
    println!(
        "  worst neighbour skew: {worst_local:>9.6}s (within the gradient guard: {})",
        worst_local <= gradient_guard
    );
    println!("  worst global skew   : {worst_global:>9.6}s");
    Ok(())
}
