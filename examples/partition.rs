//! Network partition and merge — why the model requires connectivity.
//!
//! A 16-node ring is cut in half for 30 seconds. While the cut is open,
//! nothing can bound the skew across it: it grows at the full drift rate
//! `2ρ` (each side chases its own fastest clock). Within each side the
//! gradient property keeps everything tight. When the cut closes, the
//! max-estimate flood collapses the global skew at the guaranteed recovery
//! rate while the staged insertion re-admits the cut edges to the level
//! sets without disturbing the survivors.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example partition
//! ```

use gradient_clock_sync::net::NodeId;
use gradient_clock_sync::prelude::*;

const SPLIT: f64 = 10.0;
const MERGE: f64 = 40.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let topo = Topology::ring(16);
    let left: Vec<NodeId> = (0..8u32).map(NodeId).collect();
    let schedule = NetworkSchedule::partition_and_merge(
        &topo,
        &left,
        SimTime::from_secs(SPLIT),
        SimTime::from_secs(MERGE),
        0.002,
    );

    let mut pb = Params::builder();
    pb.rho(0.01).mu(0.1).g_tilde(2.0).insertion_scale(0.02);
    let mut sim = SimBuilder::new(pb.build()?)
        .schedule(schedule)
        .drift(DriftModel::TwoBlock)
        .seed(10)
        .build()?;

    let side_skew = |sim: &Simulation, range: std::ops::Range<u32>| {
        let snap = sim.snapshot();
        let vals: Vec<f64> = range.map(|u| snap.logical[u as usize]).collect();
        vals.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - vals.iter().copied().fold(f64::INFINITY, f64::min)
    };

    println!("ring(16): cut {{0..8}} | {{8..16}} open during [{SPLIT}s, {MERGE}s]\n");
    println!("    t   phase       global     left-half  right-half");
    for step in 0..=16 {
        let t = f64::from(step) * 5.0;
        sim.run_until_secs(t);
        let phase = if t < SPLIT {
            "connected"
        } else if t < MERGE {
            "CUT OPEN "
        } else {
            "merged   "
        };
        println!(
            "{t:>5.0}s  {phase}  {:>9.5}s  {:>9.5}s  {:>9.5}s",
            sim.snapshot().global_skew(),
            side_skew(&sim, 0..8),
            side_skew(&sim, 8..16),
        );
    }

    println!(
        "\nWhile the cut was open the halves drifted apart at ~2*rho = {:.3}/s;\n\
         each half stayed internally synchronized the whole time, and after\n\
         the merge the skew collapsed at ~mu(1-rho)-2rho = {:.3}/s.",
        2.0 * sim.params().rho(),
        sim.params().mu() * (1.0 - sim.params().rho()) - 2.0 * sim.params().rho()
    );
    Ok(())
}
