//! Network partition and merge — why the model requires connectivity.
//!
//! A 16-node ring is cut in half for 30 seconds. While the cut is open,
//! nothing can bound the skew across it: it grows at the full drift rate
//! `2ρ` (each side chases its own fastest clock). Within each side the
//! gradient property keeps everything tight. When the cut closes, the
//! max-estimate flood collapses the global skew at the guaranteed recovery
//! rate while the staged insertion re-admits the cut edges to the level
//! sets without disturbing the survivors.
//!
//! The whole script — who is cut, when, and for how long — is the
//! registry scenario `partition-heal` (`scenarios/partition-heal.scn`).
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example partition
//! ```

use gradient_clock_sync::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = registry::find("partition-heal").expect("built-in scenario");
    let DynamicsSpec::Partition { split, merge, .. } = spec.dynamics else {
        unreachable!("partition-heal scripts a partition");
    };
    let n = spec.topology.node_count() as u32;
    let mut sim = spec.build(10)?;

    let side_skew = |sim: &Simulation, range: std::ops::Range<u32>| {
        let snap = sim.snapshot();
        let vals: Vec<f64> = range.map(|u| snap.logical[u as usize]).collect();
        vals.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - vals.iter().copied().fold(f64::INFINITY, f64::min)
    };

    println!(
        "ring({n}): cut {{0..{h}}} | {{{h}..{n}}} open during [{split}s, {merge}s]\n",
        h = n / 2
    );
    println!("    t   phase       global     left-half  right-half");
    let end = spec.end_secs();
    let steps = (end / 5.0).ceil() as u32;
    for step in 0..=steps {
        let t = (f64::from(step) * 5.0).min(end);
        sim.run_until_secs(t);
        let phase = if t < split {
            "connected"
        } else if t < merge {
            "CUT OPEN "
        } else {
            "merged   "
        };
        println!(
            "{t:>5.0}s  {phase}  {:>9.5}s  {:>9.5}s  {:>9.5}s",
            sim.snapshot().global_skew(),
            side_skew(&sim, 0..n / 2),
            side_skew(&sim, n / 2..n),
        );
    }

    println!(
        "\nWhile the cut was open the halves drifted apart at ~2*rho = {:.3}/s;\n\
         each half stayed internally synchronized the whole time, and after\n\
         the merge the skew collapsed at ~mu(1-rho)-2rho = {:.3}/s.",
        2.0 * sim.params().rho(),
        sim.params().mu() * (1.0 - sim.params().rho()) - 2.0 * sim.params().rho()
    );
    Ok(())
}
