//! Gradient synchronization in a mobile swarm.
//!
//! Twelve nodes wander a unit square under random-waypoint mobility; radio
//! links appear and disappear with distance (with hysteresis). The paper's
//! model was built for exactly this: links churn arbitrarily, yet the
//! algorithm keeps currently-adjacent nodes tightly synchronized while the
//! global skew stays bounded.
//!
//! The walk parameters live in the registry scenario `mobile-swarm`
//! (`scenarios/mobile-swarm.scn`); this example just replays and narrates
//! it.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example mobile_swarm
//! ```

use gradient_clock_sync::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = registry::find("mobile-swarm").expect("built-in scenario");
    // Schedule generation is deterministic per seed, so inspecting the
    // script here and letting build() compile its own copy below yields
    // the exact same link events.
    let schedule = spec.schedule(23)?;
    println!(
        "mobile swarm: {} nodes, {} scripted link events\n",
        schedule.node_count(),
        schedule.events().len()
    );
    let mut sim = spec.build(23)?;

    println!("   t    links   global skew   worst link skew");
    let end = spec.end_secs();
    let steps = (end / 10.0).floor() as u32;
    for step in 0..=steps {
        let t = f64::from(step) * 10.0;
        sim.run_until_secs(t);
        let links = sim.graph().undirected_edges().count();
        println!(
            "{:>5.0}s  {:>5}   {:>10.6}s   {:>10.6}s",
            t,
            links,
            sim.snapshot().global_skew(),
            local_skew(&sim),
        );
    }

    let stats = sim.stats();
    println!(
        "\n{} messages sent, {} delivered, {} dropped by link churn;",
        stats.messages_sent, stats.messages_delivered, stats.messages_dropped
    );
    println!(
        "{} edge removals detected, {} insertions scheduled.",
        stats.edge_removals, stats.insertions_scheduled
    );
    Ok(())
}
