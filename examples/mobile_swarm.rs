//! Gradient synchronization in a mobile swarm.
//!
//! Twelve nodes wander a unit square under random-waypoint mobility; radio
//! links appear and disappear with distance (with hysteresis). The paper's
//! model was built for exactly this: links churn arbitrarily, yet the
//! algorithm keeps currently-adjacent nodes tightly synchronized while the
//! global skew stays bounded.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example mobile_swarm
//! ```

use gradient_clock_sync::net::mobility::RandomWaypoint;
use gradient_clock_sync::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mobility = RandomWaypoint {
        n: 12,
        radius: 0.5, // generous range keeps the swarm connected
        hysteresis: 1.2,
        speed: (0.01, 0.03),
        horizon: 120.0,
        sample_period: 0.5,
        direction_skew_max: 0.002,
    };
    let schedule = mobility.generate(23);
    println!(
        "mobile swarm: {} nodes, {} scripted link events\n",
        schedule.node_count(),
        schedule.events().len()
    );

    let mut pb = Params::builder();
    pb.rho(0.01).mu(0.1).insertion_scale(0.05);
    let mut sim = SimBuilder::new(pb.build()?)
        .schedule(schedule)
        .drift(DriftModel::RandomConstant)
        .seed(23)
        .build()?;

    println!("   t    links   global skew   worst link skew");
    for step in 0..=12 {
        let t = f64::from(step) * 10.0;
        sim.run_until_secs(t);
        let links = sim.graph().undirected_edges().count();
        println!(
            "{:>5.0}s  {:>5}   {:>10.6}s   {:>10.6}s",
            t,
            links,
            sim.snapshot().global_skew(),
            local_skew(&sim),
        );
    }

    let stats = sim.stats();
    println!(
        "\n{} messages sent, {} delivered, {} dropped by link churn;",
        stats.messages_sent, stats.messages_delivered, stats.messages_dropped
    );
    println!(
        "{} edge removals detected, {} insertions scheduled.",
        stats.edge_removals, stats.insertions_scheduled
    );
    Ok(())
}
