//! Workspace smoke test: drives the umbrella `prelude` end-to-end, proving
//! the re-export surface stays wired.  If a future refactor drops or
//! renames a cross-crate re-export, this file stops compiling.

use gradient_clock_sync::prelude::*;

#[test]
fn prelude_builds_and_runs_a_ring() {
    let params = Params::builder().rho(0.01).mu(0.1).build().unwrap();
    let mut sim = SimBuilder::new(params)
        .topology(Topology::ring(8))
        .drift(DriftModel::Alternating)
        .seed(42)
        .build()
        .unwrap();
    sim.run_until_secs(10.0);

    let snap = sim.snapshot();
    let g = snap.global_skew();
    assert!(g.is_finite(), "global skew must be finite, got {g}");
    assert!(g > 0.0, "drifting clocks must show some skew, got {g}");
    assert!(sim.verify_invariants().is_empty());
}

#[test]
fn prelude_exposes_the_advertised_symbols() {
    // Analysis layer: closed-form gradient bound and κ-weighted diameter.
    let params = Params::builder().rho(0.01).mu(0.1).build().unwrap();
    let mut sim = SimBuilder::new(params)
        .topology(Topology::line(4))
        .drift(DriftModel::TwoBlock)
        .seed(7)
        .build()
        .unwrap();
    sim.run_until_secs(5.0);

    let kd = kappa_diameter(&sim, 1).expect("connected line has a finite kappa diameter");
    assert!(kd > 0.0, "kappa diameter of a connected line is positive");
    let bound = gradient_bound(sim.params(), kd, kd);
    assert!(bound > 0.0);
    assert!(local_skew(&sim).is_finite());

    // Reporting layer: Table is constructible and renders.
    let mut table = Table::new("smoke", &["col"]);
    table.row(["1.0"]);
    assert!(table.to_string().contains("smoke"));

    // Baselines are nameable as policies.
    let _max_only: MaxOnlyPolicy = MaxOnlyPolicy;
    let single = SingleLevelPolicy::new(0.5);
    assert_eq!(single.threshold(), 0.5);

    // Sim-kernel types reach through the prelude.
    let t = SimTime::from_secs(1.5) + SimDuration::from_secs(0.5);
    assert!((t.as_secs() - 2.0).abs() < 1e-12);
}
