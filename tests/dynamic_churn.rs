//! Integration tests for fully dynamic behaviour: connectivity-preserving
//! churn and mobility-driven schedules. The model invariants and the
//! global-skew bound must survive arbitrary (scripted) edge dynamics.

use gradient_clock_sync::net::mobility::RandomWaypoint;
use gradient_clock_sync::net::{ChurnOptions, NetworkSchedule, Topology};
use gradient_clock_sync::prelude::*;

fn params(scale: f64) -> Params {
    let mut pb = Params::builder();
    pb.rho(0.01).mu(0.1).insertion_scale(scale);
    pb.build().unwrap()
}

#[test]
fn churn_preserves_invariants_and_global_bound() {
    let topo = Topology::grid(3, 3);
    let schedule = NetworkSchedule::churn(
        &topo,
        ChurnOptions {
            horizon: 40.0,
            mean_up: 8.0,
            mean_down: 4.0,
            direction_skew_max: 0.004,
            start_up_probability: 0.6,
        },
        11,
    );
    let mut sim = SimBuilder::new(params(0.05))
        .schedule(schedule)
        .drift(DriftModel::TwoBlock)
        .seed(11)
        .build()
        .unwrap();
    let g_tilde = sim.params().g_tilde().unwrap();
    for k in 1..=40 {
        sim.run_until_secs(f64::from(k));
        let violations = sim.verify_invariants();
        assert!(violations.is_empty(), "t={k}s: {violations:?}");
        assert!(sim.snapshot().global_skew() <= g_tilde);
    }
    // Churn actually happened.
    assert!(sim.stats().edge_removals > 0, "no churn exercised");
}

#[test]
fn mobility_schedule_runs_clean() {
    let schedule = RandomWaypoint {
        n: 10,
        radius: 0.45,
        hysteresis: 1.2,
        speed: (0.02, 0.05),
        horizon: 30.0,
        sample_period: 0.5,
        direction_skew_max: 0.002,
    }
    .generate(13);
    let mut sim = SimBuilder::new(params(0.02))
        .schedule(schedule)
        .drift(DriftModel::RandomConstant)
        .seed(13)
        .build()
        .unwrap();
    for k in 1..=30 {
        sim.run_until_secs(f64::from(k));
        let violations = sim.verify_invariants();
        assert!(violations.is_empty(), "t={k}s: {violations:?}");
    }
}

#[test]
fn messages_dropped_only_under_churn() {
    // On a static graph the continuity rule never drops anything...
    let mut sim = SimBuilder::new(params(1.0))
        .topology(Topology::ring(6))
        .seed(1)
        .build()
        .unwrap();
    sim.run_until_secs(20.0);
    assert_eq!(sim.stats().messages_dropped, 0);

    // ...under churn it may (and the counters stay consistent).
    let topo = Topology::complete(6);
    let schedule = NetworkSchedule::churn(
        &topo,
        ChurnOptions {
            horizon: 20.0,
            mean_up: 2.0,
            mean_down: 2.0,
            direction_skew_max: 0.004,
            start_up_probability: 0.8,
        },
        3,
    );
    let mut churny = SimBuilder::new(params(0.05))
        .schedule(schedule)
        .seed(3)
        .build()
        .unwrap();
    churny.run_until_secs(20.0);
    let stats = churny.stats();
    assert_eq!(
        stats.messages_delivered + stats.messages_dropped,
        stats.messages_sent - pending_in_flight(&churny),
        "counters add up (modulo in-flight messages)"
    );
}

/// Messages still in the queue at the end of a run.
fn pending_in_flight(sim: &Simulation) -> u64 {
    let s = sim.stats();
    s.messages_sent - s.messages_delivered - s.messages_dropped
}

#[test]
fn long_churn_run_remains_stable() {
    let topo = Topology::ring(8);
    let schedule = NetworkSchedule::churn(
        &topo,
        ChurnOptions {
            horizon: 80.0,
            mean_up: 10.0,
            mean_down: 5.0,
            direction_skew_max: 0.002,
            start_up_probability: 0.5,
        },
        21,
    );
    let mut sim = SimBuilder::new(params(0.02))
        .schedule(schedule)
        .drift(DriftModel::FlipFlop { period: 10.0 })
        .horizon(90.0)
        .seed(21)
        .build()
        .unwrap();
    sim.run_until_secs(80.0);
    let g = sim.snapshot().global_skew();
    let g_tilde = sim.params().g_tilde().unwrap();
    assert!(g <= g_tilde, "skew {g} exceeded estimate {g_tilde}");
    assert!(sim.verify_invariants().is_empty());
}
