//! Property tests for the sampled-pairs conformance oracle.
//!
//! The sampled gradient sweep draws `K = max(min_sources, ⌈rate·n⌉)`
//! sources per snapshot and checks each against every reachable target
//! with the *identical* arithmetic the exact all-pairs pass uses. Three
//! families of properties pin that design:
//!
//! 1. **Conservative projection** — every sampled check is one the exact
//!    pass also makes, so the sampled worst-case statistics can never
//!    exceed the exact ones and a sampled alarm is never false.
//! 2. **Stratified coverage** — on a ring every source sees exactly the
//!    same hop-class profile, so per-hop-class sample counts follow the
//!    detection-probability knob `K/n` *exactly*, not just in
//!    expectation, and the per-snapshot escape probability obeys the
//!    documented `(1 − rate)²` bound.
//! 3. **Engine invariance** — the source draw depends only on
//!    `(seed, snapshot index, n)`, so the sampled verdict is bit-identical
//!    across shard counts.

use gcs_analysis::oracle::OracleSampling;
use gcs_scenarios::conformance::{run_scenario_conformance, run_scenario_conformance_with};
use gcs_scenarios::{registry, ConformanceOptions, Scale, TopologySpec};

fn opts(rate: f64, oracle_seed: u64, threads: usize) -> ConformanceOptions {
    ConformanceOptions {
        oracle_sample: Some(rate),
        oracle_seed,
        threads,
    }
}

/// Sampled worst-case statistics lower-bound the exact ones on the same
/// run, per bound family and per hop class, across scenarios × rates ×
/// seeds — including rates high enough that the double-counted
/// source-source pairs make the sampled *check count* exceed half the
/// exact one. The non-gradient families never sample and stay equal.
#[test]
fn sampled_is_a_conservative_projection_of_exact() {
    for name in ["grid-sensor", "line-worstcase", "churn-burst"] {
        let spec = registry::find(name).expect("registry scenario");
        for seed in [0u64, 1] {
            let exact = run_scenario_conformance(&spec, seed).unwrap();
            for rate in [0.1, 0.3, 0.7] {
                let sampled =
                    run_scenario_conformance_with(&spec, seed, &opts(rate, 5, 1)).unwrap();
                let ctx = format!("{name} seed {seed} rate {rate}");
                assert!(sampled.sampled_sources > 0, "{ctx}: sampled mode ran");
                assert_eq!(sampled.samples, exact.samples, "{ctx}: same snapshots");
                assert!(
                    sampled.gradient.worst_utilization <= exact.gradient.worst_utilization,
                    "{ctx}: sampled worst utilization must not exceed exact"
                );
                assert!(
                    sampled.gradient.min_margin >= exact.gradient.min_margin,
                    "{ctx}: sampled margin must not undercut exact"
                );
                if exact.is_conformant() {
                    assert!(sampled.is_conformant(), "{ctx}: no false alarms");
                }
                // Global and weak-edge families are never sampled.
                assert_eq!(sampled.global, exact.global, "{ctx}");
                assert_eq!(sampled.weak_edges, exact.weak_edges, "{ctx}");
                // Per hop class the same subset argument applies.
                for class in &sampled.per_hop {
                    if class.pairs == 0 {
                        continue;
                    }
                    let e = exact
                        .per_hop
                        .iter()
                        .find(|c| c.hops == class.hops)
                        .unwrap_or_else(|| {
                            panic!(
                                "{ctx}: hop class {} sampled but never swept exactly",
                                class.hops
                            )
                        });
                    assert!(class.worst_skew <= e.worst_skew, "{ctx} d={}", class.hops);
                    assert!(class.min_margin >= e.min_margin, "{ctx} d={}", class.hops);
                    assert!(
                        class.worst_utilization <= e.worst_utilization,
                        "{ctx} d={}",
                        class.hops
                    );
                }
            }
        }
    }
}

/// On an even ring every node has exactly two peers at each hop distance
/// `d < n/2` and one at `n/2`, so stratified sampling hits every hop
/// class with *exactly* `2K/n` of the exact pass's per-class pair count:
/// `sampled.pairs · n == exact.pairs · 2K` for every class. The gross
/// counts follow too (`K(n−1)` vs `n(n−1)/2` per snapshot), and the
/// per-snapshot escape probability matches its closed form and the
/// documented `(1 − rate)²` ceiling.
#[test]
fn ring_stratification_matches_the_detection_probability_knob() {
    let n = 40usize;
    let rate = 0.25;
    let mut spec = registry::find("ring-steady").expect("registry scenario");
    spec.topology = TopologySpec::Ring { n };

    let sampling = OracleSampling::new(rate, 0);
    let k = sampling.sources_for(n);
    assert_eq!(k, 10, "max(8, ceil(0.25 * 40))");

    for seed in [0u64, 3] {
        let exact = run_scenario_conformance(&spec, seed).unwrap();
        let sampled = run_scenario_conformance_with(&spec, seed, &opts(rate, 0, 1)).unwrap();
        let s = sampled.samples;
        assert!(s > 0);
        assert_eq!(sampled.sampled_sources, s * k as u64);
        assert_eq!(
            sampled.gradient.checks,
            s * (k * (n - 1)) as u64,
            "each drawn source sweeps every other node"
        );
        assert_eq!(exact.gradient.checks, s * (n * (n - 1) / 2) as u64);
        assert_eq!(sampled.per_hop.len(), n / 2, "ring diameter classes");
        for (class, e) in sampled.per_hop.iter().zip(&exact.per_hop) {
            assert_eq!(class.hops, e.hops);
            assert_eq!(
                class.pairs * n as u64,
                e.pairs * 2 * k as u64,
                "hop class {} coverage must equal the 2K/n stratification exactly",
                class.hops
            );
        }
    }

    // The documented per-snapshot escape probability: the closed form
    // (n−K)(n−K−1)/(n(n−1)), never above (1 − rate)², shrinking as the
    // knob rises, zero at rate 1.
    for &m in &[10usize, 40, 500, 100_000] {
        let mut last = f64::INFINITY;
        for &r in &[0.05, 0.25, 0.5, 0.9, 1.0] {
            let sm = OracleSampling::new(r, 0);
            let km = sm.sources_for(m) as f64;
            let mf = m as f64;
            let closed = ((mf - km) * (mf - km - 1.0) / (mf * (mf - 1.0))).max(0.0);
            let esc = sm.escape_probability(m);
            assert!((esc - closed).abs() < 1e-12, "n={m} rate={r}");
            assert!(esc <= (1.0 - r) * (1.0 - r) + 1e-12, "n={m} rate={r}");
            assert!(esc <= last + 1e-12, "escape must shrink as the knob rises");
            last = esc;
        }
        assert_eq!(OracleSampling::new(1.0, 0).escape_probability(m), 0.0);
    }
}

/// The sampled verdict is a pure function of `(scenario, seed, oracle
/// seed)` — the source draw never sees the engine, so sequential and
/// sharded runs at any shard count produce the identical report.
#[test]
fn sampled_verdict_is_shard_count_invariant() {
    for name in ["self-heal", "churn-burst"] {
        let spec = registry::find(name).unwrap().scaled(Scale::Tiny);
        for rate in [0.2, 0.5] {
            for seed in [0u64, 2] {
                let reference = run_scenario_conformance_with(&spec, seed, &opts(rate, 9, 1));
                let reference = reference.unwrap();
                assert!(reference.sampled_sources > 0);
                for threads in [2usize, 3, 4] {
                    let sharded =
                        run_scenario_conformance_with(&spec, seed, &opts(rate, 9, threads))
                            .unwrap();
                    assert_eq!(
                        sharded, reference,
                        "{name} rate {rate} seed {seed} x{threads}"
                    );
                }
            }
        }
    }
}
