//! Stand-alone trace replay: the chaos subsystem's bit-exactness contract.
//!
//! A sealed `gcs-trace/v1` artifact embeds its canonical `.scn` spec, so
//! the artifact *alone* must re-materialize the run — same records, same
//! content hash — on either engine at any shard count. These tests drive
//! `gcs_scenarios::chaos` end-to-end over the same scenario grid as the
//! engine-equivalence suites, plus the negative control (a tampered
//! artifact is rejected at the seal, before any simulation runs) and the
//! byte-determinism contract of the adversarial search log.

use gradient_clock_sync::scenarios::chaos::{
    chaos_search, frontier_from_log, read_trace, replay_trace, ChaosOptions,
};
use gradient_clock_sync::scenarios::telemetry::run_instrumented;
use gradient_clock_sync::scenarios::{registry, FaultSpec, Scale, ScenarioSpec};

/// The same scenario grid as `parallel_equivalence`: oracle and message
/// estimates, static and churning topologies, drift flips, scripted
/// corruptions.
fn grid() -> Vec<ScenarioSpec> {
    [
        "ring-steady",
        "line-worstcase",
        "torus-messages",
        "churn-storm",
        "churn-burst",
        "byzantine-est",
        "drift-flip",
        "self-heal",
    ]
    .iter()
    .map(|n| registry::find(n).expect("built-in").scaled(Scale::Tiny))
    .collect()
}

fn trace_of(spec: &ScenarioSpec, seed: u64) -> String {
    let run = run_instrumented(spec, seed, 1, true, false).expect("instrumented run");
    run.telemetry
        .trace
        .as_ref()
        .expect("trace requested")
        .text
        .clone()
}

#[test]
fn replay_is_bit_identical_across_the_grid_and_shard_counts() {
    for spec in grid() {
        let text = trace_of(&spec, 0);
        for threads in [1usize, 2, 7] {
            let outcome = replay_trace(&text, threads).expect("artifact replays");
            assert!(
                outcome.is_identical(),
                "{} seed 0, {threads} thread(s): replay diverged at line {:?}",
                spec.name,
                outcome.divergence.map(|d| d.line)
            );
            assert_eq!(
                outcome.replayed_hash, outcome.artifact.hash,
                "{} seed 0, {threads} thread(s): replayed hash diverged",
                spec.name
            );
            assert_eq!(
                outcome.replayed_records, outcome.artifact.records,
                "{} seed 0, {threads} thread(s): record count diverged",
                spec.name
            );
        }
    }
}

#[test]
fn replay_covers_estimate_bias_faults() {
    // The new in-model adversary must survive the full artifact cycle:
    // spec → trace (fault records included) → embedded `.scn` → rebuilt
    // run, bit for bit.
    let mut spec = registry::find("ring-steady")
        .expect("built-in")
        .scaled(Scale::Tiny);
    spec.faults.push(FaultSpec::EstimateBias {
        at: spec.end_secs() / 3.0,
        node: 1,
        bias: -1.0,
    });
    spec.validate().expect("biased spec is valid");
    let text = trace_of(&spec, 4);
    assert!(
        text.contains("\"rec\":\"fault\""),
        "the scripted fault must appear in the trace"
    );
    for threads in [1usize, 3] {
        let outcome = replay_trace(&text, threads).expect("artifact replays");
        assert!(
            outcome.is_identical(),
            "{threads} thread(s): est-bias replay diverged"
        );
    }
}

#[test]
fn tampered_artifacts_are_rejected_before_any_replay() {
    let spec = registry::find("self-heal")
        .expect("built-in")
        .scaled(Scale::Tiny);
    let text = trace_of(&spec, 1);

    // Flip one digit inside a sample record: the running FNV-1a seal no
    // longer matches, so the artifact must be refused outright.
    let tampered = text.replacen("\"rec\":\"sample\",\"t\":", "\"rec\":\"sample\",\"t\":9", 1);
    assert_ne!(text, tampered, "the tamper must hit a sample record");
    let err = read_trace(&tampered).expect_err("seal mismatch is fatal");
    assert!(
        err.to_string().contains("trace rejected"),
        "unexpected error: {err}"
    );
    assert!(
        replay_trace(&tampered, 1).is_err(),
        "replay must refuse a tampered artifact too"
    );

    // Truncation (a lost end record) is equally fatal.
    let truncated = text
        .lines()
        .take(text.lines().count() - 1)
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        read_trace(&truncated).is_err(),
        "a truncated artifact must be rejected"
    );
}

#[test]
fn chaos_search_logs_are_byte_deterministic_and_resumable() {
    let base = registry::find("self-heal")
        .expect("built-in")
        .scaled(Scale::Tiny);
    let opts = ChaosOptions {
        seed: 11,
        budget: 6,
        run_seeds: vec![0],
        threads: 1,
    };
    let first = chaos_search(&base, &opts).expect("search runs");
    let second = chaos_search(&base, &opts).expect("search runs");
    assert_eq!(
        first.log, second.log,
        "same seed + budget must reproduce the log byte for byte"
    );
    assert!(
        first.violation.is_none(),
        "the scripted base must stay conformant at this budget"
    );

    // The frontier embedded in the log is the best candidate's schedule —
    // resuming from the log alone continues from exactly that spec.
    let frontier = frontier_from_log(&first.log).expect("log has a frontier");
    assert_eq!(frontier, first.best.spec, "frontier must match the best");
    let resumed = chaos_search(
        &frontier,
        &ChaosOptions {
            seed: 12,
            budget: 2,
            ..opts
        },
    )
    .expect("resumed search runs");
    assert!(
        resumed.best.utilization >= first.best.utilization,
        "resuming from the frontier can only ratchet upwards"
    );
}
