//! Integration tests for the gradient skew property (Theorems 5.22 / 7.9,
//! Corollaries 5.26 / 7.10): after stabilization, the system is legal with
//! respect to the gradient sequences and every pair's skew obeys the
//! `O(κ_p · log_σ(Ĝ/κ_p))` bound.

use gradient_clock_sync::analysis::{
    gradient_bound, legality::gradient_sequence, skew::stable_local_skew, weighted_skew_profile,
    GradientChecker,
};
use gradient_clock_sync::net::{EdgeKey, EdgeParams, EdgeParamsMap, NodeId};
use gradient_clock_sync::prelude::*;

fn params() -> Params {
    Params::builder().rho(0.01).mu(0.1).build().unwrap()
}

fn stabilized(topo: Topology, drift: DriftModel, seed: u64, secs: f64) -> Simulation {
    let mut sim = SimBuilder::new(params())
        .topology(topo)
        .drift(drift)
        .seed(seed)
        .build()
        .unwrap();
    sim.run_until_secs(secs);
    sim
}

fn check_legal(sim: &Simulation) {
    let g_hat = sim.params().g_tilde().unwrap();
    let slack = sim.params().discretization_slack(sim.tick_interval());
    let report = GradientChecker::new(g_hat, 16, slack).check(sim);
    assert!(
        report.is_legal(),
        "legality violated: {:?}",
        report.violations()
    );
    assert!(
        report.worst_pair_ratio <= 1.0,
        "a pair exceeds the gradient bound: ratio {}",
        report.worst_pair_ratio
    );
}

#[test]
fn line_is_legal_under_worst_case_drift() {
    check_legal(&stabilized(
        Topology::line(10),
        DriftModel::TwoBlock,
        1,
        30.0,
    ));
}

#[test]
fn ring_is_legal_under_alternating_drift() {
    check_legal(&stabilized(
        Topology::ring(10),
        DriftModel::Alternating,
        2,
        30.0,
    ));
}

#[test]
fn grid_is_legal_under_random_walk_drift() {
    let drift = DriftModel::RandomWalk {
        period: 2.0,
        step_frac: 0.5,
    };
    check_legal(&stabilized(Topology::grid(3, 4), drift, 3, 30.0));
}

#[test]
fn legality_holds_at_many_instants() {
    let mut sim = SimBuilder::new(params())
        .topology(Topology::line(8))
        .drift(DriftModel::TwoBlock)
        .seed(4)
        .build()
        .unwrap();
    let g_hat = sim.params().g_tilde().unwrap();
    let slack = sim.params().discretization_slack(sim.tick_interval());
    let checker = GradientChecker::new(g_hat, 16, slack);
    for k in 1..=25 {
        sim.run_until_secs(f64::from(k));
        let report = checker.check(&sim);
        assert!(report.is_legal(), "t={k}s: {:?}", report.violations());
    }
}

#[test]
fn pairwise_skew_respects_d_log_d_shape() {
    // Neighbouring pairs must be *much* tighter than the global bound: the
    // essence of the gradient property.
    let sim = stabilized(Topology::line(12), DriftModel::TwoBlock, 5, 40.0);
    let g_hat = sim.params().g_tilde().unwrap();
    let profile = weighted_skew_profile(&sim);
    assert!(!profile.is_empty());
    for (kappa_p, skew) in profile {
        let bound = gradient_bound(sim.params(), g_hat, kappa_p)
            + sim.params().discretization_slack(sim.tick_interval());
        assert!(
            skew <= bound,
            "pair at weight {kappa_p}: skew {skew} above bound {bound}"
        );
    }
    // And the local skew is far below the global estimate.
    assert!(stable_local_skew(&sim) < g_hat / 4.0);
}

#[test]
fn gradient_sequences_anchor_at_global_skew() {
    // C_1 = C_2 = 2 G^, then geometric decay by sigma (Definition 5.19
    // stabilized form).
    let sigma = params().sigma();
    let c: Vec<f64> = (1..=5).map(|s| gradient_sequence(1.0, sigma, s)).collect();
    assert_eq!(c[0], 2.0);
    assert_eq!(c[1], 2.0);
    assert!((c[2] - 2.0 / sigma).abs() < 1e-12);
    assert!((c[3] - 2.0 / (sigma * sigma)).abs() < 1e-12);
    assert!(c[4] < c[3]);
}

#[test]
fn heterogeneous_edges_bound_in_terms_of_kappa() {
    // E9: a line whose middle edge is 10x noisier. The skew across that
    // edge may be larger in absolute terms, but every pair still respects
    // its kappa-weighted bound.
    let mut map = EdgeParamsMap::uniform(EdgeParams::default());
    map.set(
        EdgeKey::new(NodeId(3), NodeId(4)),
        EdgeParams::new(0.02, 0.01, 0.002, 0.01),
    );
    let mut sim = SimBuilder::new(params())
        .topology(Topology::line(8))
        .edge_params(map)
        .drift(DriftModel::TwoBlock)
        .seed(6)
        .build()
        .unwrap();
    sim.run_until_secs(30.0);

    let heavy = sim.edge_info(EdgeKey::new(NodeId(3), NodeId(4))).unwrap();
    let light = sim.edge_info(EdgeKey::new(NodeId(0), NodeId(1))).unwrap();
    assert!(heavy.kappa > 5.0 * light.kappa, "weights reflect epsilon");

    check_legal(&sim);
}

#[test]
fn message_mode_satisfies_gradient_property() {
    let mut sim = SimBuilder::new(params())
        .topology(Topology::line(8))
        .estimates(EstimateMode::Messages)
        .drift(DriftModel::TwoBlock)
        .seed(7)
        .build()
        .unwrap();
    sim.run_until_secs(30.0);
    check_legal(&sim);
    assert!(sim.verify_invariants().is_empty());
}

#[test]
fn adversarial_hide_estimates_stay_legal() {
    // Even when the estimate layer hides as much skew as inequality (1)
    // permits, the gradient property holds (the bound already budgets for
    // epsilon).
    let mut sim = SimBuilder::new(params())
        .topology(Topology::line(8))
        .estimates(EstimateMode::Oracle(ErrorModel::Hide))
        .drift(DriftModel::TwoBlock)
        .seed(8)
        .build()
        .unwrap();
    sim.run_until_secs(30.0);
    check_legal(&sim);
}
