//! Property-based tests: the model and algorithm invariants hold across
//! randomized scenarios, parameters, and schedules.

use proptest::prelude::*;

use gradient_clock_sync::core::edge_state::InsertState;
use gradient_clock_sync::net::{ChurnOptions, NetworkSchedule, Topology};
use gradient_clock_sync::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (3usize..8).prop_map(Topology::line),
        (3usize..8).prop_map(Topology::ring),
        (2usize..4, 2usize..4).prop_map(|(w, h)| Topology::grid(w, h)),
        (3usize..7).prop_map(Topology::star),
        (3usize..6).prop_map(Topology::complete),
        (6usize..12, any::<u64>()).prop_map(|(n, s)| Topology::random_gnp(n, 0.3, s)),
    ]
}

fn arb_drift() -> impl Strategy<Value = DriftModel> {
    prop_oneof![
        Just(DriftModel::None),
        Just(DriftModel::TwoBlock),
        Just(DriftModel::Alternating),
        Just(DriftModel::RandomConstant),
        (0.5f64..3.0, 0.1f64..0.9)
            .prop_map(|(period, step_frac)| DriftModel::RandomWalk { period, step_frac }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs a full (small) simulation
        .. ProptestConfig::default()
    })]

    #[test]
    fn random_scenarios_never_violate_invariants(
        topo in arb_topology(),
        drift in arb_drift(),
        seed in any::<u64>(),
    ) {
        let params = Params::builder().rho(0.01).mu(0.1).build().unwrap();
        let mut sim = SimBuilder::new(params)
            .topology(topo)
            .drift(drift)
            .seed(seed)
            .build()
            .unwrap();
        for k in 1..=8 {
            sim.run_until_secs(f64::from(k));
            let violations = sim.verify_invariants();
            prop_assert!(violations.is_empty(), "t={}s: {:?}", k, violations);
        }
        let g = sim.snapshot().global_skew();
        let g_tilde = sim.params().g_tilde().unwrap();
        prop_assert!(g <= g_tilde, "global skew {} above estimate {}", g, g_tilde);
    }

    #[test]
    fn churny_scenarios_never_violate_invariants(
        n in 4usize..8,
        seed in any::<u64>(),
        mean_up in 2.0f64..10.0,
        mean_down in 1.0f64..5.0,
    ) {
        let topo = Topology::complete(n);
        let schedule = NetworkSchedule::churn(
            &topo,
            ChurnOptions {
                horizon: 15.0,
                mean_up,
                mean_down,
                direction_skew_max: 0.004,
                start_up_probability: 0.6,
            },
            seed,
        );
        let mut pb = Params::builder();
        pb.rho(0.01).mu(0.1).insertion_scale(0.05);
        let mut sim = SimBuilder::new(pb.build().unwrap())
            .schedule(schedule)
            .drift(DriftModel::TwoBlock)
            .seed(seed)
            .build()
            .unwrap();
        for k in 1..=15 {
            sim.run_until_secs(f64::from(k));
            let violations = sim.verify_invariants();
            prop_assert!(violations.is_empty(), "t={}s: {:?}", k, violations);
        }
    }
}

/// Brute-force reference for the trigger definitions: scan every level up
/// to a huge cap with no early termination.
mod trigger_reference {
    use gradient_clock_sync::core::NodeView;

    pub fn fast(view: &NodeView<'_>) -> bool {
        (1..=2000u32).any(|s| {
            let sf = f64::from(s);
            let mut exists = false;
            for n in view.neighbors {
                if !n.level.includes(s) {
                    continue;
                }
                match n.estimate {
                    Some(est) => {
                        if est - view.logical >= sf * n.kappa - n.epsilon {
                            exists = true;
                        }
                        if view.logical - est > sf * n.kappa + 2.0 * view.mu * n.tau + n.epsilon {
                            return false; // blocked at this level
                        }
                    }
                    None => return false,
                }
            }
            exists
        })
    }

    pub fn slow(view: &NodeView<'_>) -> bool {
        (1..=2000u32).any(|s| {
            let sh = f64::from(s) + 0.5;
            let mut exists = false;
            for n in view.neighbors {
                if !n.level.includes(s) {
                    continue;
                }
                match n.estimate {
                    Some(est) => {
                        if view.logical - est >= sh * n.kappa - n.delta - n.epsilon {
                            exists = true;
                        }
                        if est - view.logical
                            > sh * n.kappa
                                + n.delta
                                + n.epsilon
                                + view.mu * (1.0 + view.rho) * n.tau
                        {
                            return false;
                        }
                    }
                    None => return false,
                }
            }
            exists
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn trigger_scan_limit_is_lossless(
        logical in -30.0f64..30.0,
        raw_neighbors in proptest::collection::vec(
            (-30.0f64..30.0, 0.5f64..2.0, proptest::option::of(0u32..8)),
            1..6,
        ),
    ) {
        use gradient_clock_sync::core::edge_state::Level;
        use gradient_clock_sync::core::{triggers, Mode, NeighborView, NodeView};
        let neighbors: Vec<NeighborView> = raw_neighbors
            .into_iter()
            .map(|(est, kappa, lvl)| NeighborView {
                estimate: Some(est),
                kappa,
                epsilon: 0.05 * kappa,
                tau: 0.01,
                delta: 0.1 * kappa,
                level: lvl.map_or(Level::Infinite, Level::Finite),
            })
            .collect();
        let view = NodeView {
            logical,
            max_estimate: logical + 1.0,
            current_mode: Mode::Slow,
            iota: 0.01,
            mu: 0.1,
            rho: 0.01,
            neighbors: &neighbors,
        };
        // The production scan terminates early via a computed level bound;
        // it must agree with the exhaustive reference exactly.
        prop_assert_eq!(
            triggers::fast_trigger(&view, 4096),
            trigger_reference::fast(&view)
        );
        prop_assert_eq!(
            triggers::slow_trigger(&view, 4096),
            trigger_reference::slow(&view)
        );
    }

    #[test]
    fn node_state_advance_respects_envelopes(
        rate in 0.99f64..1.01,
        fast_steps in proptest::collection::vec(proptest::bool::ANY, 1..20),
    ) {
        use gradient_clock_sync::core::node::NodeState;
        use gradient_clock_sync::core::{Mode, Params};
        use gradient_clock_sync::net::NodeId;
        let params = Params::builder().rho(0.01).mu(0.1).build().unwrap();
        let mut node = NodeState::new(NodeId(0), rate);
        let mut t = 0.0;
        for (k, fast) in fast_steps.iter().enumerate() {
            node.set_mode(if *fast { Mode::Fast } else { Mode::Slow });
            t += 0.5;
            node.advance_to(SimTime::from_secs(t), &params);
            // Envelope: alpha * t <= L <= beta * t.
            prop_assert!(node.logical() >= params.alpha() * t - 1e-9, "step {k}");
            prop_assert!(node.logical() <= params.beta() * t + 1e-9, "step {k}");
            // Structural invariants of Condition 4.3 and the bracket.
            prop_assert!(node.max_estimate() >= node.logical() - 1e-12);
            prop_assert!(node.min_lower_bound() <= node.logical() + 1e-12);
            prop_assert!(node.max_upper_bound() >= node.max_estimate() - 1e-12);
            prop_assert!(node.fast_secs() <= t + 1e-12);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn valid_params_build_and_derive_consistently(
        rho in 1e-6f64..0.02,
        mu_factor in 3.0f64..40.0,
    ) {
        // mu chosen as a multiple of 2rho/(1-rho) so sigma > 1 by
        // construction, capped by the paper's mu <= 1/10.
        let mu = (mu_factor * 2.0 * rho / (1.0 - rho)).min(0.1);
        prop_assume!(mu > 2.0 * rho / (1.0 - rho));
        let params = Params::builder().rho(rho).mu(mu).build().unwrap();
        prop_assert!(params.sigma() > 1.0);
        prop_assert!(params.alpha() < 1.0);
        prop_assert!(params.beta() > 1.0);
        prop_assert!(params.insertion_duration_static(1.0) > 0.0);
        // kappa constraint (eq. 9) for an arbitrary edge.
        let e = gradient_clock_sync::net::EdgeParams::default();
        let kappa = params.kappa(e, e.epsilon);
        prop_assert!(kappa > 4.0 * (e.epsilon + mu * e.tau));
        let delta = params.delta(e, e.epsilon);
        prop_assert!(delta > 0.0);
        prop_assert!(delta < kappa / 2.0 - 2.0 * e.epsilon - 2.0 * mu * e.tau);
    }

    #[test]
    fn insertion_times_are_monotone_and_dyadically_aligned(
        t0_mult in 0u32..1000,
        i_exp in -3i32..12,
        levels in 2u32..20,
    ) {
        let i = 2f64.powi(i_exp);
        let t0 = f64::from(t0_mult) * i;
        // Monotone increasing, converging to t0 + i.
        let mut prev = f64::NEG_INFINITY;
        for s in 1..=levels {
            let ts = InsertState::t_s(t0, i, s);
            prop_assert!(ts > prev);
            prop_assert!(ts <= t0 + i);
            // Quantization: T_s is an integer multiple of I / 2^{s-1}.
            let grid = i / 2f64.powi(s as i32 - 1);
            let ratio = ts / grid;
            prop_assert!((ratio - ratio.round()).abs() < 1e-9,
                "T_{} = {} not on the {} grid", s, ts, grid);
            prev = ts;
        }
        prop_assert!((InsertState::t_infinity(t0, i) - (t0 + i)).abs() < 1e-12);
    }

    #[test]
    fn level_at_inverts_t_s(
        t0_mult in 0u32..100,
        i_exp in -2i32..10,
        offset_frac in 0.0f64..1.5,
    ) {
        let i = 2f64.powi(i_exp);
        let t0 = f64::from(t0_mult) * i;
        let st = InsertState::Scheduled { t0, i };
        let l = t0 + offset_frac * i;
        match st.level_at(l) {
            gradient_clock_sync::core::edge_state::Level::Finite(s) => {
                if s > 0 {
                    prop_assert!(InsertState::t_s(t0, i, s) <= l + 1e-9);
                }
                prop_assert!(InsertState::t_s(t0, i, s + 1) > l - 1e-9);
            }
            gradient_clock_sync::core::edge_state::Level::Infinite => {
                prop_assert!(l >= t0 + i - 1e-9);
            }
        }
    }

    #[test]
    fn random_topologies_are_connected(
        n in 2usize..40,
        p in 0.0f64..0.3,
        seed in any::<u64>(),
    ) {
        let topo = Topology::random_gnp(n, p, seed);
        prop_assert!(topo.is_connected());
        let geo = Topology::random_geometric(n.max(2), 0.2, seed);
        prop_assert!(geo.is_connected());
    }

    #[test]
    fn drift_schedules_respect_rho(
        rho in 1e-5f64..0.1,
        seed in any::<u64>(),
        n in 2usize..10,
    ) {
        for model in [
            DriftModel::None,
            DriftModel::TwoBlock,
            DriftModel::Alternating,
            DriftModel::RandomConstant,
            DriftModel::RandomWalk { period: 1.0, step_frac: 0.5 },
            DriftModel::FlipFlop { period: 5.0 },
        ] {
            let s = model.realize(n, rho, SimTime::from_secs(20.0), seed);
            prop_assert!(s.respects_bound(rho), "{:?}", model);
            prop_assert_eq!(s.node_count(), n);
        }
    }
}
