//! Partition-and-merge: what the paper's connectivity requirement is *for*.
//!
//! While a cut is open, nothing can bound the skew across it — it grows at
//! up to the drift rate `2ρ` (the Ω lower bound intuition of §1). Within
//! each connected side, everything stays synchronized. After the merge, the
//! cut edges re-run the Listing 1 insertion and the whole network recovers.

use gradient_clock_sync::analysis::GradientChecker;
use gradient_clock_sync::net::{NetworkSchedule, NodeId, Topology};
use gradient_clock_sync::prelude::*;

const SPLIT: f64 = 10.0;
const MERGE: f64 = 40.0;

fn partition_sim() -> Simulation {
    // ring(16): left = nodes 0..8 (fast block), right = 8..16 (slow block).
    let topo = Topology::ring(16);
    let left: Vec<NodeId> = (0..8u32).map(NodeId).collect();
    let schedule = NetworkSchedule::partition_and_merge(
        &topo,
        &left,
        SimTime::from_secs(SPLIT),
        SimTime::from_secs(MERGE),
        0.002,
    );
    let mut pb = Params::builder();
    // The cross-partition skew can reach ~2 rho * 30 s = 0.6; the static
    // estimate must still be an upper bound for the insertion machinery.
    pb.rho(0.01).mu(0.1).g_tilde(2.0).insertion_scale(0.02);
    SimBuilder::new(pb.build().unwrap())
        .schedule(schedule)
        .drift(DriftModel::TwoBlock)
        .seed(10)
        .build()
        .unwrap()
}

fn cross_skew(sim: &Simulation) -> f64 {
    // Worst skew across the cut.
    let mut worst: f64 = 0.0;
    for l in 0..8u32 {
        for r in 8..16u32 {
            worst = worst.max(sim.snapshot().skew(NodeId(l), NodeId(r)));
        }
    }
    worst
}

fn side_skew(sim: &Simulation, nodes: std::ops::Range<u32>) -> f64 {
    let snap = sim.snapshot();
    let vals: Vec<f64> = nodes.map(|u| snap.logical[u as usize]).collect();
    vals.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - vals.iter().copied().fold(f64::INFINITY, f64::min)
}

#[test]
fn skew_grows_across_the_cut_but_not_within_sides() {
    let mut sim = partition_sim();
    sim.run_until_secs(SPLIT);
    let pre_cross = cross_skew(&sim);

    sim.run_until_secs(MERGE - 0.5);
    let open_cross = cross_skew(&sim);
    let left_internal = side_skew(&sim, 0..8);
    let right_internal = side_skew(&sim, 8..16);

    // The cut was open ~30 s with a 2 rho = 0.02/s divergence budget; the
    // two blocks drift apart nearly at full rate since each side's maximum
    // chases its own fast clocks.
    let expected = 2.0 * sim.params().rho() * (MERGE - 0.5 - SPLIT);
    assert!(
        open_cross > pre_cross + 0.5 * expected,
        "cross-cut skew did not grow: {pre_cross} -> {open_cross} (expected ~{expected})"
    );
    assert!(
        open_cross <= expected + pre_cross + 0.05,
        "cross-cut skew grew faster than drift allows: {open_cross}"
    );
    // Each side stays internally tight (an order of magnitude below).
    assert!(
        left_internal < open_cross / 4.0,
        "left side loose: {left_internal}"
    );
    assert!(
        right_internal < open_cross / 4.0,
        "right side loose: {right_internal}"
    );
}

#[test]
fn merge_recovers_global_skew_and_legality() {
    let mut sim = partition_sim();
    sim.run_until_secs(MERGE);
    let at_merge = sim.snapshot().global_skew();
    assert!(at_merge > 0.2, "partition should have built real skew");

    // Recovery: the max-flood closes the gap at rate ~mu(1-rho)-2rho as
    // soon as the first cross edge carries floods again.
    let rate = sim.params().mu() * (1.0 - sim.params().rho()) - 2.0 * sim.params().rho();
    let deadline = MERGE + 3.0 * at_merge / rate + 20.0;
    let mut recovered_at = None;
    let mut t = MERGE;
    while t < deadline {
        t += 0.5;
        sim.run_until_secs(t);
        if sim.snapshot().global_skew() < 0.05 {
            recovered_at = Some(t);
            break;
        }
    }
    let recovered_at = recovered_at.expect("global skew must recover after the merge");
    assert!(
        recovered_at - MERGE <= 2.0 * at_merge / rate + 15.0,
        "recovery took implausibly long: {:.1}s",
        recovered_at - MERGE
    );

    // After the cut edges finish re-insertion, full legality is restored.
    sim.run_until_secs(recovered_at + 60.0);
    let slack = sim.params().discretization_slack(sim.tick_interval());
    let checker = GradientChecker::new(sim.params().g_tilde().unwrap(), 12, slack);
    let report = checker.check(&sim);
    assert!(report.is_legal(), "{:?}", report.violations());
    assert!(sim.verify_invariants().is_empty());
}

#[test]
fn legality_over_level_sets_holds_even_while_cut_is_open() {
    // The legality notion (Definition 5.13) quantifies over level-s paths.
    // Cross edges are *removed* during the partition and re-enter the level
    // sets only through staged insertion, so the checker must stay green
    // the whole time — this is exactly how the algorithm protects the
    // gradient property from unbounded foreign skew.
    let mut sim = partition_sim();
    let slack = sim.params().discretization_slack(sim.tick_interval());
    let checker = GradientChecker::new(sim.params().g_tilde().unwrap(), 12, slack);
    let mut t = 1.0;
    while t <= MERGE + 20.0 {
        sim.run_until_secs(t);
        let report = checker.check(&sim);
        assert!(report.is_legal(), "t={t}: {:?}", report.violations());
        t += 1.0;
    }
}
