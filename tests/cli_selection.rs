//! CLI-level regression tests for scenario selection and the trend verbs.
//!
//! The conformance gate used to resolve its target leniently; a typo'd
//! scenario name must be a hard error (exit ≠ 0), never an empty —
//! vacuously green — sweep. These tests drive the real binary via
//! `CARGO_BIN_EXE_gcs-scenarios`.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gcs-scenarios"))
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn unknown_scenario_name_is_a_hard_error() {
    for verb in ["conformance", "run", "bench"] {
        let out = bin()
            .args([verb, "no-such-scenario", "--seeds", "1"])
            .output()
            .unwrap();
        assert!(
            !out.status.success(),
            "{verb} with an unknown name must exit non-zero"
        );
        let err = stderr(&out);
        assert!(
            err.contains("no-such-scenario"),
            "{verb}: error must name the bad token: {err}"
        );
    }
}

#[test]
fn empty_and_partial_selections_are_hard_errors() {
    // A comma list with one bad token fails even when the rest resolve.
    let out = bin()
        .args(["conformance", "ring-steady,typo-name", "--seeds", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(stderr(&out).contains("typo-name"));

    // Dangling comma ⇒ empty token ⇒ hard error.
    let out = bin()
        .args(["conformance", "ring-steady,", "--seeds", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn named_sets_and_comma_lists_resolve() {
    let out = bin()
        .args([
            "conformance",
            "ring-steady,self-heal",
            "--seeds",
            "1",
            "--scale",
            "tiny",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("2 scenario(s)"), "{text}");
    assert!(text.contains("every run conforms"), "{text}");
}

#[test]
fn sampled_conformance_with_trend_gates_end_to_end() {
    let dir = std::env::temp_dir().join(format!("gcs-cli-trend-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trend: PathBuf = dir.join("TREND_test.jsonl");
    let _ = std::fs::remove_file(&trend);

    // Three sampled runs build the series; the gate stays green and
    // reports the series as building/ok (never a regression on a flat
    // deterministic history).
    for _ in 0..3 {
        let out = bin()
            .args([
                "conformance",
                "self-heal",
                "--seeds",
                "1",
                "--scale",
                "tiny",
                "--oracle-sample",
                "0.5",
                "--trend",
                trend.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", stderr(&out));
        assert!(stdout(&out).contains("sampled oracle"), "mode is surfaced");
    }
    let out = bin()
        .args(["trend-gate", trend.to_str().unwrap(), "--explain"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("no trend regression"));

    // Forge a regressed newest point (gradient utilization quadrupled)
    // and the gate must fail, with --explain naming the fired tolerance
    // and the window it was judged against.
    let text = std::fs::read_to_string(&trend).unwrap();
    let last = text.lines().last().unwrap();
    let forged = regex_replace(last, "\"gradient_worst\":", 4.0);
    std::fs::write(&trend, format!("{text}{forged}\n")).unwrap();
    let out = bin()
        .args(["trend-gate", trend.to_str().unwrap(), "--explain"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "forged regression must gate");
    let err = stderr(&out);
    assert!(err.contains("REGRESSION"), "{err}");
    assert!(
        err.contains("rose above"),
        "--explain prints direction: {err}"
    );
    assert!(err.contains("tolerance source"), "{err}");

    // An out-of-band --tol wide enough swallows it, and its provenance
    // would be the override.
    let out = bin()
        .args(["trend-gate", trend.to_str().unwrap(), "--tol", "100000"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trend_append_seeds_a_series_from_a_bench_artifact() {
    let dir = std::env::temp_dir().join(format!("gcs-cli-append-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trend = dir.join("TREND_engine.jsonl");

    let repo = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let artifact = repo.join("results/BENCH_engine_tiny.json");
    let out = bin()
        .args([
            "trend-append",
            artifact.to_str().unwrap(),
            "--out",
            trend.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    let text = std::fs::read_to_string(&trend).unwrap();
    assert!(text.lines().count() > 0);
    assert!(text.starts_with("{\"format\":\"gcs-trend/v1\""));

    // One point per series: everything is `building`, the gate passes.
    let out = bin()
        .args(["trend-gate", trend.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("building"));

    std::fs::remove_dir_all(&dir).ok();
}

/// Replaces the number following `key` in a JSONL line with `value` (a
/// two-line stand-in for a regex dependency).
fn regex_replace(line: &str, key: &str, value: f64) -> String {
    let start = line.find(key).expect("metric present") + key.len();
    let end = start + line[start..].find([',', '}']).expect("number terminator");
    format!("{}{}{}", &line[..start], value, &line[end..])
}
