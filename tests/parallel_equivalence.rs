//! Bit-identity of the parallel sharded engine.
//!
//! The sharded engine's contract is stronger than "statistically the
//! same": at every shard count, under both partitioners, it must
//! reproduce the sequential reference **bit for bit** — every clock,
//! every mode, every realized change-log entry, and every deterministic
//! counter, *including* `mode_evaluations` (the tick sweeps run
//! sequentially on the master, so even the dirty-set bookkeeping is
//! shared). This is the whole-system check of the merge-order argument
//! in the `gcs-core` parallel module: original `(time, seq)` keys +
//! namespaced shard counters + the conservative lookahead window.

use gradient_clock_sync::analysis::oracle::ConformanceChecker;
use gradient_clock_sync::core::{
    ClockSnapshot, Engine, ParallelBuildError, ParallelSimBuilder, Partition, SimStats,
};
use gradient_clock_sync::scenarios::campaign::drive_sampled;
use gradient_clock_sync::scenarios::{registry, Scale, ScenarioSpec};

/// The same scenario grid as the sequential `engine_equivalence` suite:
/// oracle and message estimates, static and churning topologies, drift
/// flips, scripted corruptions.
fn grid() -> Vec<ScenarioSpec> {
    [
        "ring-steady",
        "line-worstcase",
        "torus-messages",
        "churn-storm",
        "churn-burst",
        "byzantine-est",
        "drift-flip",
        "self-heal",
    ]
    .iter()
    .map(|n| registry::find(n).expect("built-in").scaled(Scale::Tiny))
    .collect()
}

struct Run {
    snapshots: Vec<ClockSnapshot>,
    changes: Vec<String>,
    stats: SimStats,
}

/// Drives either engine over the scenario's observation grid via the one
/// shared sampling/fault-replay loop, snapshotting at every sample.
fn drive<E: Engine>(spec: &ScenarioSpec, mut sim: E) -> Run {
    let mut snapshots = Vec::new();
    drive_sampled(
        &mut sim,
        &spec.faults,
        spec.sample,
        spec.end_secs(),
        |_, sim| {
            snapshots.push(sim.as_sim().snapshot());
        },
    );
    Run {
        snapshots,
        changes: sim
            .as_sim()
            .change_log()
            .iter()
            .map(|c| format!("{c:?}"))
            .collect(),
        stats: sim.as_sim().stats(),
    }
}

fn sequential(spec: &ScenarioSpec, seed: u64) -> Run {
    drive(spec, spec.build(seed).expect("spec builds"))
}

fn sharded(spec: &ScenarioSpec, seed: u64, shards: usize, partition: Partition) -> Run {
    let sim = ParallelSimBuilder::new(spec.builder(seed).expect("spec builds"))
        .shards(shards)
        .partition(partition)
        .build()
        .expect("parallel build");
    drive(spec, sim)
}

/// Full bit-identity: snapshots, change log, and *all* counters — no
/// scrubbing, unlike the sequential suite's full-reevaluation comparison.
fn assert_identical(ctx: &str, reference: &Run, candidate: &Run) {
    assert_eq!(
        reference.snapshots.len(),
        candidate.snapshots.len(),
        "{ctx}: sample count diverged"
    );
    let bits = |v: &[f64]| -> Vec<u64> { v.iter().map(|x| x.to_bits()).collect() };
    for (i, (a, b)) in reference
        .snapshots
        .iter()
        .zip(&candidate.snapshots)
        .enumerate()
    {
        let at = |field: &str| format!("{ctx}: sample {i} (t={}): {field} diverged", a.time);
        assert_eq!(bits(&a.logical), bits(&b.logical), "{}", at("logical"));
        assert_eq!(bits(&a.hardware), bits(&b.hardware), "{}", at("hardware"));
        assert_eq!(
            bits(&a.max_estimates),
            bits(&b.max_estimates),
            "{}",
            at("max_estimates")
        );
        assert_eq!(a.modes, b.modes, "{}", at("modes"));
    }
    assert_eq!(
        reference.changes, candidate.changes,
        "{ctx}: change log diverged"
    );
    assert_eq!(
        reference.stats, candidate.stats,
        "{ctx}: counters diverged (events/ticks/mode_evaluations/messages must all match)"
    );
}

#[test]
fn sharded_engine_is_bit_identical_across_the_grid() {
    for spec in grid() {
        for seed in 0..2u64 {
            let reference = sequential(&spec, seed);
            for shards in [1usize, 2, 3, 7] {
                for partition in [Partition::Contiguous, Partition::DegreeBalanced] {
                    let candidate = sharded(&spec, seed, shards, partition);
                    assert_identical(
                        &format!("{} seed {seed}, {shards} shards, {partition:?}", spec.name),
                        &reference,
                        &candidate,
                    );
                }
            }
        }
    }
}

#[test]
fn conformance_reports_match_the_sequential_engine() {
    // The conformance oracle reads clocks, levels, weights, counters, and
    // the realized change log through the same observation surface — the
    // whole report must come out identical on the sharded engine.
    for name in ["churn-burst", "byzantine-est"] {
        let spec = registry::find(name).expect("built-in").scaled(Scale::Tiny);
        for seed in 0..2u64 {
            let reports: Vec<_> = [1usize, 3]
                .iter()
                .map(|&shards| {
                    let mut sim = ParallelSimBuilder::new(spec.builder(seed).expect("builds"))
                        .shards(shards)
                        .build()
                        .expect("parallel build");
                    let mut checker = ConformanceChecker::new(&sim, spec.sample);
                    drive_sampled(
                        &mut sim,
                        &spec.faults,
                        spec.sample,
                        spec.end_secs(),
                        |_, sim| {
                            checker.observe(sim);
                        },
                    );
                    checker.finish()
                })
                .collect();
            let mut sim = spec.build(seed).expect("builds");
            let mut checker = ConformanceChecker::new(&sim, spec.sample);
            drive_sampled(
                &mut sim,
                &spec.faults,
                spec.sample,
                spec.end_secs(),
                |_, sim| {
                    checker.observe(sim);
                },
            );
            let sequential = checker.finish();
            for (i, report) in reports.iter().enumerate() {
                assert_eq!(
                    report, &sequential,
                    "{name} seed {seed}, variant {i}: conformance report diverged"
                );
            }
        }
    }
}

#[test]
fn oversized_lookahead_window_is_rejected_at_construction() {
    // A window wider than the scenario's minimum transit latency is not a
    // conservative lookahead: a cross-shard message could land inside an
    // already-drained window. The builder must refuse it outright rather
    // than silently produce a nondeterministic engine.
    let spec = registry::find("ring-steady")
        .expect("built-in")
        .scaled(Scale::Tiny);
    let probe = ParallelSimBuilder::new(spec.builder(0).expect("builds"))
        .shards(2)
        .build()
        .expect("model-derived window builds");
    let max = probe.window();
    assert!(
        max.is_finite() && max > 0.0,
        "scenario has a real lookahead"
    );

    let err = ParallelSimBuilder::new(spec.builder(0).expect("builds"))
        .shards(2)
        .lookahead_override(max * 2.0)
        .build()
        .map(|_| ())
        .expect_err("over-wide window must be rejected");
    match err {
        ParallelBuildError::WindowTooWide { requested, max: m } => {
            assert_eq!(requested, max * 2.0);
            assert_eq!(m, max);
        }
        other => panic!("expected WindowTooWide, got {other:?}"),
    }

    // Narrowing is allowed (merely slower), and still bit-identical.
    let narrowed = ParallelSimBuilder::new(spec.builder(0).expect("builds"))
        .shards(2)
        .lookahead_override(max / 2.0)
        .build()
        .expect("narrower window is conservative");
    assert_eq!(narrowed.window(), max / 2.0);
    let candidate = drive(&spec, narrowed);
    let reference = sequential(&spec, 0);
    assert_identical("ring-steady narrowed window", &reference, &candidate);
}

#[test]
fn trace_bytes_are_identical_across_engines_and_shard_counts() {
    // The telemetry trace is the replayable run log: for the same
    // (scenario, seed) the sequential engine and the sharded engine at
    // EVERY shard count must emit the identical JSONL bytes — and the
    // same sealed FNV-1a content hash. This is the acceptance contract
    // of the observability layer: a trace that depended on the engine
    // would be useless as a cross-engine equivalence witness.
    use gradient_clock_sync::scenarios::telemetry::run_instrumented;
    for spec in grid() {
        for seed in 0..2u64 {
            let reference = run_instrumented(&spec, seed, 1, true, false).expect("runs");
            let ref_trace = reference.telemetry.trace.as_ref().expect("trace on");
            gradient_clock_sync::telemetry::verify_trace(&ref_trace.text)
                .expect("sequential trace seals");
            for shards in [2usize, 7] {
                let candidate = run_instrumented(&spec, seed, shards, true, false).expect("runs");
                let cand_trace = candidate.telemetry.trace.as_ref().expect("trace on");
                assert_eq!(
                    ref_trace.text, cand_trace.text,
                    "{} seed {seed}, {shards} shards: trace bytes diverged",
                    spec.name
                );
                assert_eq!(
                    ref_trace.hash, cand_trace.hash,
                    "{} seed {seed}, {shards} shards: trace hash diverged",
                    spec.name
                );
                // The order-free local-counter channel agrees too, even
                // though its increments happen in a different order.
                assert_eq!(
                    reference.telemetry.local, candidate.telemetry.local,
                    "{} seed {seed}, {shards} shards: local counters diverged",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn trace_diff_pinpoints_the_first_divergent_record() {
    // Negative control: perturb a run (one extra scripted clock fault)
    // and the diff must land exactly on the injected fault record, not
    // merely report "something differs".
    use gradient_clock_sync::scenarios::telemetry::run_instrumented;
    use gradient_clock_sync::scenarios::FaultSpec;
    use gradient_clock_sync::telemetry::trace_diff;

    let spec = registry::find("ring-steady")
        .expect("built-in")
        .scaled(Scale::Tiny);
    let mut perturbed = spec.clone();
    perturbed.faults.push(FaultSpec::ClockOffset {
        at: spec.end_secs() / 2.0,
        node: 0,
        amount: 0.25,
    });

    let base = run_instrumented(&spec, 0, 1, true, false).expect("runs");
    let pert = run_instrumented(&perturbed, 0, 2, true, false).expect("runs");
    let a = base.telemetry.trace.as_ref().expect("trace on");
    let b = pert.telemetry.trace.as_ref().expect("trace on");
    assert_ne!(a.hash, b.hash, "the perturbation must change the hash");

    // The first divergence is the embedded spec record on line 2: the
    // perturbed run scripts an extra fault, and the trace carries its
    // canonical .scn (what makes replay-from-artifact possible).
    let d = trace_diff(&a.text, &b.text).expect("traces must diverge");
    assert_eq!(d.line, 2, "the embedded spec records differ first");
    assert!(
        d.b.as_deref()
            .expect("both traces carry a spec record")
            .contains("\"rec\":\"spec\""),
        "line 2 is the spec record"
    );

    // With the spec records masked the *runs* must diverge exactly at
    // the injected fault record — the diff pinpoints it, not merely
    // "something differs".
    let strip_spec = |t: &str| {
        t.lines()
            .filter(|l| !l.starts_with("{\"rec\":\"spec\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let (a_run, b_run) = (strip_spec(&a.text), strip_spec(&b.text));
    let d = trace_diff(&a_run, &b_run).expect("the runs themselves diverge");
    assert!(d.line > 1, "prefix before the fault instant is shared");
    let diverging =
        d.b.as_deref()
            .expect("perturbed trace has the extra record");
    assert!(
        diverging.contains("\"rec\":\"fault\""),
        "the first divergent record is the injected fault, got {diverging:?}"
    );
    // Everything before the divergence is byte-identical.
    let prefix = |t: &str| t.lines().take(d.line - 1).collect::<Vec<_>>().join("\n");
    assert_eq!(prefix(&a_run), prefix(&b_run));
}

#[test]
fn diameter_tracking_and_event_log_are_rejected() {
    let spec = registry::find("ring-steady")
        .expect("built-in")
        .scaled(Scale::Tiny);
    let err = ParallelSimBuilder::new(spec.builder(0).expect("builds").track_diameter(true))
        .shards(2)
        .build()
        .map(|_| ())
        .expect_err("diameter tracking is sequential-only");
    assert!(matches!(
        err,
        ParallelBuildError::DiameterTrackingUnsupported
    ));
    let err = ParallelSimBuilder::new(spec.builder(0).expect("builds").log_events(64))
        .shards(2)
        .build()
        .map(|_| ())
        .expect_err("event log is sequential-only");
    assert!(matches!(err, ParallelBuildError::EventLogUnsupported));
}
