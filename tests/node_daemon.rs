//! Integration tests for the `gcs-node` socket daemon: a two-process
//! Unix-domain-socket cluster exchanging wire floods, plus the
//! `gcs-scenarios node-smoke` loopback harness end to end.
//!
//! Everything here runs over loopback transports with piped stdin, so
//! the tests are hermetic; a daemon whose stdin pipe closes shuts
//! itself down, so a failing assertion cannot leak processes past the
//! test binary's lifetime.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

fn daemon() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_gcs-node"));
    cmd.stdin(Stdio::piped()).stdout(Stdio::piped());
    cmd
}

/// Reads the `listening <addr>` announce line.
fn announced_addr(reader: &mut BufReader<ChildStdout>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim()
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("expected an announce line, got {line:?}"))
        .to_string()
}

/// Polls until the child exits or the deadline passes.
fn wait_with_deadline(child: &mut Child, secs: u64) -> Option<std::process::ExitStatus> {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Some(status) = child.try_wait().unwrap() {
            return Some(status);
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn two_daemons_exchange_floods_over_unix_sockets_and_shut_down_cleanly() {
    let dir = std::env::temp_dir();
    let sock_a = dir.join(format!("gcs-node-a-{}.sock", std::process::id()));
    let sock_b = dir.join(format!("gcs-node-b-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&sock_a);
    let _ = std::fs::remove_file(&sock_b);

    let mut a = daemon()
        .args(["--uds", sock_a.to_str().unwrap()])
        .args(["--first", "0", "--count", "1", "--total", "2"])
        .args(["--refresh", "0.1", "--status-every", "0.1"])
        .spawn()
        .unwrap();
    let mut a_out = BufReader::new(a.stdout.take().unwrap());
    let addr_a = announced_addr(&mut a_out);
    assert_eq!(addr_a, format!("unix:{}", sock_a.display()));

    let mut b = daemon()
        .args(["--uds", sock_b.to_str().unwrap()])
        .args(["--first", "1", "--count", "1", "--total", "2"])
        .args(["--refresh", "0.1", "--status-every", "0.1"])
        .args(["--peers", &addr_a])
        .spawn()
        .unwrap();
    let mut b_out = BufReader::new(b.stdout.take().unwrap());
    let _ = announced_addr(&mut b_out);

    // Let the pair exchange a handful of refresh rounds, then request
    // the graceful path by closing both stdin pipes.
    std::thread::sleep(Duration::from_millis(1200));
    drop(a.stdin.take());
    drop(b.stdin.take());
    let status_a = wait_with_deadline(&mut a, 5).expect("daemon A ignored stdin EOF");
    let status_b = wait_with_deadline(&mut b, 5).expect("daemon B ignored stdin EOF");
    assert_eq!(status_a.code(), Some(0), "A: {status_a}");
    assert_eq!(status_b.code(), Some(0), "B: {status_b}");

    // Drain both logs: each daemon must have heard the other (floods
    // crossed the socket in both directions — B dialed A, and A routes
    // back over the same connection) and printed the clean-exit marker.
    for (name, reader) in [("A", &mut a_out), ("B", &mut b_out)] {
        let lines: Vec<String> = reader.lines().map_while(Result::ok).collect();
        let heard = lines
            .iter()
            .filter_map(|l| l.split("peers_heard=").nth(1))
            .filter_map(|v| v.trim().parse::<usize>().ok())
            .max()
            .unwrap_or(0);
        assert_eq!(heard, 1, "daemon {name} never heard its peer: {lines:?}");
        assert!(
            lines.iter().any(|l| l == "shutdown clean"),
            "daemon {name} skipped the graceful path: {lines:?}"
        );
    }
    assert!(!sock_a.exists(), "daemon A left its socket file behind");
    assert!(!sock_b.exists(), "daemon B left its socket file behind");
}

#[test]
fn node_smoke_verb_passes_on_a_small_tcp_cluster() {
    let out = Command::new(env!("CARGO_BIN_EXE_gcs-scenarios"))
        .args([
            "node-smoke",
            "--procs",
            "2",
            "--per-proc",
            "1",
            "--secs",
            "2",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "node-smoke failed:\n{stdout}\n{stderr}"
    );
    assert!(
        stdout.contains("within the Thm 5.22 envelope"),
        "skew verdict missing: {stdout}"
    );
}
