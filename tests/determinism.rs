//! Reproducibility: a simulation is a pure function of its configuration
//! and seed.

use gradient_clock_sync::net::{ChurnOptions, NetworkSchedule, Topology};
use gradient_clock_sync::prelude::*;

fn params() -> Params {
    Params::builder().rho(0.01).mu(0.1).build().unwrap()
}

#[test]
fn identical_configs_give_identical_traces() {
    let build = || {
        SimBuilder::new(params())
            .topology(Topology::grid(3, 3))
            .drift(DriftModel::RandomWalk {
                period: 1.0,
                step_frac: 0.3,
            })
            .estimates(EstimateMode::Messages)
            .horizon(40.0)
            .seed(1234)
            .build()
            .unwrap()
    };
    let mut a = build();
    let mut b = build();
    for k in 1..=20 {
        a.run_until_secs(f64::from(k));
        b.run_until_secs(f64::from(k));
        assert_eq!(a.snapshot(), b.snapshot(), "diverged at t={k}s");
    }
    assert_eq!(a.stats(), b.stats());
}

#[test]
fn different_run_granularity_gives_equivalent_results() {
    // Stepping in 0.5 s increments or one 10 s jump must not matter: event
    // processing is driven purely by the queue. Querying at intermediate
    // times does split the (exact) piecewise-linear integration into more
    // f64 additions, so values may differ in the last ulps — but nothing
    // more: behaviour (modes, messages, stats) is identical.
    let build = || {
        SimBuilder::new(params())
            .topology(Topology::ring(6))
            .drift(DriftModel::TwoBlock)
            .seed(77)
            .build()
            .unwrap()
    };
    let mut fine = build();
    for k in 1..=20 {
        fine.run_until_secs(f64::from(k) * 0.5);
    }
    let mut coarse = build();
    coarse.run_until_secs(10.0);
    let (f, c) = (fine.snapshot(), coarse.snapshot());
    assert_eq!(f.modes, c.modes);
    for i in 0..f.node_count() {
        assert!((f.logical[i] - c.logical[i]).abs() < 1e-9, "node {i}");
        assert!((f.hardware[i] - c.hardware[i]).abs() < 1e-9, "node {i}");
    }
    assert_eq!(fine.stats(), coarse.stats());
}

#[test]
fn churn_schedules_replay_identically() {
    let topo = Topology::ring(6);
    let schedule = NetworkSchedule::churn(&topo, ChurnOptions::default(), 5);
    let build = |s: &NetworkSchedule| {
        let mut pb = Params::builder();
        pb.rho(0.01).mu(0.1).insertion_scale(0.05);
        SimBuilder::new(pb.build().unwrap())
            .schedule(s.clone())
            .seed(5)
            .build()
            .unwrap()
    };
    let mut a = build(&schedule);
    let mut b = build(&schedule);
    a.run_until_secs(30.0);
    b.run_until_secs(30.0);
    assert_eq!(a.snapshot(), b.snapshot());
}
