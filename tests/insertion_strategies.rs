//! Integration comparison of the two insertion strategies the paper
//! discusses (§5.5): the staged Listing 1/2 insertion (the contribution)
//! versus the simultaneous decaying-weight insertion of [16].

use gradient_clock_sync::analysis::GradientChecker;
use gradient_clock_sync::core::edge_state::Level;
use gradient_clock_sync::net::{EdgeKey, NetworkSchedule, NodeId, Topology};
use gradient_clock_sync::prelude::*;

fn chord_schedule(n: usize, at: f64) -> (EdgeKey, NetworkSchedule) {
    let chord = EdgeKey::new(NodeId(0), NodeId::from(n / 2));
    let schedule = NetworkSchedule::with_edge_insertion(
        &Topology::ring(n),
        &[(chord, SimTime::from_secs(at))],
        0.002,
    );
    (chord, schedule)
}

#[test]
fn decaying_weight_preserves_legality_with_adequate_halving() {
    // The decay must be slow enough that skew drains before the weight
    // tightens; with a generous halving distance the gradient property
    // holds at every sampled instant, exactly like staged insertion.
    let n = 10;
    let (chord, schedule) = chord_schedule(n, 2.0);
    let mut pb = Params::builder();
    pb.rho(0.01)
        .mu(0.1)
        .insertion_strategy(InsertionStrategy::DecayingWeight { halving: 1.0 });
    let mut sim = SimBuilder::new(pb.build().unwrap())
        .schedule(schedule)
        .drift(DriftModel::TwoBlock)
        .seed(1)
        .build()
        .unwrap();
    let g_hat = sim.params().g_tilde().unwrap();
    let slack = sim.params().discretization_slack(sim.tick_interval());
    let checker = GradientChecker::new(g_hat, 12, slack);
    for k in 1..=60 {
        sim.run_until_secs(f64::from(k));
        let report = checker.check(&sim);
        assert!(report.is_legal(), "t={k}s: {:?}", report.violations());
        assert!(sim.verify_invariants().is_empty(), "t={k}s");
    }
    // The chord eventually reaches its final weight.
    let info = sim.edge_info(chord).unwrap();
    assert!((sim.effective_kappa(chord).unwrap() - info.kappa).abs() < 1e-9);
}

#[test]
fn both_strategies_converge_to_the_same_stable_state() {
    let n = 8;
    let run = |strategy: InsertionStrategy| {
        let (chord, schedule) = chord_schedule(n, 2.0);
        let mut pb = Params::builder();
        pb.rho(0.01)
            .mu(0.1)
            .insertion_scale(0.05)
            .insertion_strategy(strategy);
        let mut sim = SimBuilder::new(pb.build().unwrap())
            .schedule(schedule)
            .drift(DriftModel::TwoBlock)
            .seed(2)
            .build()
            .unwrap();
        sim.run_until_secs(80.0);
        let info = sim.edge_info(chord).unwrap();
        (
            sim.level_between(chord.lo(), chord.hi()),
            sim.effective_kappa(chord).unwrap(),
            info.kappa,
            sim.snapshot().skew(chord.lo(), chord.hi()),
            sim.stats(),
        )
    };
    let (lvl_staged, k_staged, kf_staged, skew_staged, stats_staged) =
        run(InsertionStrategy::Staged);
    let (lvl_decay, k_decay, kf_decay, skew_decay, stats_decay) =
        run(InsertionStrategy::DecayingWeight { halving: 0.5 });

    assert_eq!(lvl_staged, Some(Level::Infinite));
    assert_eq!(lvl_decay, Some(Level::Infinite));
    assert!((k_staged - kf_staged).abs() < 1e-9);
    assert!((k_decay - kf_decay).abs() < 1e-9);
    // Both end up within the same stable bound.
    let bound = gradient_bound(
        &Params::builder().rho(0.01).mu(0.1).build().unwrap(),
        1.0,
        kf_staged,
    );
    assert!(skew_staged <= bound && skew_decay <= bound);
    // The structural difference: decaying needs no handshake traffic.
    assert!(stats_staged.handshakes_offered >= 1);
    assert_eq!(stats_decay.handshakes_offered, 0);
}

#[test]
fn aggressive_decay_violates_legality_under_installed_skew() {
    // The flip side (why the paper's staged insertion is the contribution):
    // decay the weight much faster than skew can drain across a shortcut
    // carrying Theta(n) skew, and the legality checker flags the window.
    let n = 12;
    let probe = SimBuilder::new(Params::builder().rho(0.01).mu(0.1).build().unwrap())
        .topology(Topology::line(n))
        .build()
        .unwrap();
    let kappa = probe
        .edge_info(EdgeKey::new(NodeId(0), NodeId(1)))
        .unwrap()
        .kappa;
    let per_edge = 2.0 * kappa;
    let injected = per_edge * (n - 1) as f64;

    let run = |halving: f64| {
        let chord = EdgeKey::new(NodeId(0), NodeId::from(n - 1));
        let schedule = NetworkSchedule::with_edge_insertion(
            &Topology::line(n),
            &[(chord, SimTime::from_secs(2.0))],
            0.002,
        );
        let mut pb = Params::builder();
        pb.rho(0.01)
            .mu(0.1)
            .g_tilde(1.5 * injected)
            .insertion_strategy(InsertionStrategy::DecayingWeight { halving });
        let mut sim = SimBuilder::new(pb.build().unwrap())
            .schedule(schedule)
            .drift(DriftModel::TwoBlock)
            .seed(3)
            .build()
            .unwrap();
        sim.run_until_secs(2.0);
        for i in 0..n {
            sim.inject_clock_offset(NodeId::from(i), per_edge * (n - 1 - i) as f64);
        }
        let slack = sim.params().discretization_slack(sim.tick_interval());
        let checker = GradientChecker::new(1.5 * injected, 12, slack);
        let mut violations = 0u32;
        let mut t = 2.25;
        while t <= 20.0 {
            sim.run_until_secs(t);
            if !checker.check(&sim).is_legal() {
                violations += 1;
            }
            t += 0.25;
        }
        violations
    };

    let aggressive = run(0.005); // weight collapses almost immediately
    let gentle = run(2.0);
    assert!(
        aggressive > 0,
        "collapsing the weight instantly must violate legality"
    );
    assert_eq!(gentle, 0, "a slow decay must stay legal (got violations)");
}
