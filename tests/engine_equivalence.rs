//! Bit-identity properties of the incremental engine.
//!
//! The hot-path overhaul rests on two claims:
//!
//! 1. **Dirty-set mode evaluation is invisible.** Re-deciding only
//!    dirty/horizon-expired nodes produces decisions — and therefore
//!    clocks, messages, and statistics — bit-identical to the reference
//!    pass that re-decides every node at every tick
//!    ([`Simulation::set_full_reevaluation`]).
//! 2. **Lazy advancement is invisible.** Advancing nodes only when events
//!    touch them yields `ClockSnapshot`s bit-identical to eagerly advancing
//!    every node after every event
//!    ([`Simulation::set_eager_advancement`]), at every observation
//!    instant.
//!
//! Both are exercised across registry scenarios spanning oracle and
//! message estimates, static and churning topologies, drift flips, and
//! scripted clock corruptions — times several seeds. (Debug builds
//! additionally cross-check every skipped node against the reference
//! decision on every tick, so the whole test suite hammers claim 1.)

use gradient_clock_sync::analysis::oracle::ConformanceChecker;
use gradient_clock_sync::core::{ClockSnapshot, SimStats, Simulation};
use gradient_clock_sync::scenarios::campaign::drive_sampled;
use gradient_clock_sync::scenarios::{registry, Scale, ScenarioSpec};

/// The scenario grid: registry scenarios covering the engine's distinct
/// input regimes.
fn grid() -> Vec<ScenarioSpec> {
    [
        "ring-steady",    // static ring, oracle estimates, alternating drift
        "line-worstcase", // the two-block worst case
        "torus-messages", // message-borne estimates (dead reckoning)
        "churn-storm",    // edge churn: handshakes, drops, removals
        "churn-burst",    // correlated bursts: mass simultaneous re-insertion
        "byzantine-est",  // adversarial hiding estimates + corruption script
        "drift-flip",     // scheduled rate changes + adversarial hiding
        "self-heal",      // scripted clock corruption mid-run
    ]
    .iter()
    .map(|n| registry::find(n).expect("built-in").scaled(Scale::Tiny))
    .collect()
}

/// Drives one configured simulation over the scenario's observation grid
/// (replaying scripted faults at their exact instants, via the same
/// [`drive_sampled`] loop the campaign and conformance runners use) and
/// snapshots at every sample.
fn drive(spec: &ScenarioSpec, seed: u64, configure: impl Fn(&mut Simulation)) -> Run {
    let mut sim = spec.build(seed).expect("spec builds");
    configure(&mut sim);
    let mut snapshots = Vec::new();
    drive_sampled(
        &mut sim,
        &spec.faults,
        spec.sample,
        spec.end_secs(),
        |_, sim| {
            snapshots.push(sim.snapshot());
        },
    );
    Run {
        snapshots,
        stats: sim.stats(),
    }
}

struct Run {
    snapshots: Vec<ClockSnapshot>,
    stats: SimStats,
}

/// Asserts two runs agree bit-for-bit at every observation instant.
/// `mode_evaluations` is deliberately excluded — it *must* differ between
/// the incremental and the reference engine; everything observable must
/// not.
fn assert_bit_identical(what: &str, spec: &ScenarioSpec, seed: u64, a: &Run, b: &Run) {
    assert_eq!(a.snapshots.len(), b.snapshots.len());
    for (i, (sa, sb)) in a.snapshots.iter().zip(&b.snapshots).enumerate() {
        let ctx = |field: &str| {
            format!(
                "{what}: {} seed {seed}, sample {i} (t={}): {field} diverged",
                spec.name, sa.time
            )
        };
        let bits = |v: &[f64]| -> Vec<u64> { v.iter().map(|x| x.to_bits()).collect() };
        assert_eq!(bits(&sa.logical), bits(&sb.logical), "{}", ctx("logical"));
        assert_eq!(
            bits(&sa.hardware),
            bits(&sb.hardware),
            "{}",
            ctx("hardware")
        );
        assert_eq!(
            bits(&sa.max_estimates),
            bits(&sb.max_estimates),
            "{}",
            ctx("max_estimates")
        );
        assert_eq!(sa.modes, sb.modes, "{}", ctx("modes"));
    }
    let scrub = |s: &SimStats| {
        let mut s = *s;
        s.mode_evaluations = 0;
        s
    };
    assert_eq!(
        scrub(&a.stats),
        scrub(&b.stats),
        "{what}: {} seed {seed}: engine counters diverged",
        spec.name
    );
}

#[test]
fn dirty_set_evaluation_matches_the_full_reference_pass() {
    for spec in grid() {
        for seed in 0..3u64 {
            let incremental = drive(&spec, seed, |_| {});
            let reference = drive(&spec, seed, |sim| sim.set_full_reevaluation(true));
            assert_bit_identical(
                "dirty-set vs full pass",
                &spec,
                seed,
                &incremental,
                &reference,
            );
            // The whole point: the incremental engine must actually skip.
            assert!(
                incremental.stats.mode_evaluations < reference.stats.mode_evaluations,
                "{} seed {seed}: nothing was skipped ({} vs {})",
                spec.name,
                incremental.stats.mode_evaluations,
                reference.stats.mode_evaluations,
            );
        }
    }
}

#[test]
fn lazy_advancement_matches_eager_advance_all() {
    for spec in grid() {
        for seed in 0..3u64 {
            let lazy = drive(&spec, seed, |_| {});
            let eager = drive(&spec, seed, |sim| sim.set_eager_advancement(true));
            assert_bit_identical("lazy vs eager advancement", &spec, seed, &lazy, &eager);
        }
    }
}

/// Drives one configured simulation with a [`ConformanceChecker`]
/// observing every sample, returning the finished report.
fn drive_conformance(
    spec: &ScenarioSpec,
    seed: u64,
    configure: impl Fn(&mut Simulation),
) -> gradient_clock_sync::analysis::ConformanceReport {
    let mut sim = spec.build(seed).expect("spec builds");
    configure(&mut sim);
    let mut checker = ConformanceChecker::new(&sim, spec.sample);
    drive_sampled(
        &mut sim,
        &spec.faults,
        spec.sample,
        spec.end_secs(),
        |_, sim| {
            checker.observe(sim);
        },
    );
    checker.finish()
}

#[test]
fn conformance_reports_are_bit_identical_across_engines() {
    // The conformance oracle reads clocks, levels, effective weights, and
    // the realized change log — every one of which the incremental engine
    // claims to reproduce bit-for-bit. So the *whole report* (margins,
    // utilizations, per-hop classes, fault replay counts) must come out
    // identical between the dirty-set engine and the full reference pass,
    // on the two new fault-heavy scenarios in particular.
    for name in ["churn-burst", "byzantine-est"] {
        let spec = registry::find(name).expect("built-in").scaled(Scale::Tiny);
        for seed in 0..3u64 {
            let incremental = drive_conformance(&spec, seed, |_| {});
            let reference = drive_conformance(&spec, seed, |sim| {
                sim.set_full_reevaluation(true);
                sim.set_eager_advancement(true);
            });
            assert_eq!(
                incremental, reference,
                "{name} seed {seed}: conformance report diverged between engines"
            );
            assert!(
                incremental.is_conformant(),
                "{name} seed {seed}: {:?}",
                incremental.violations()
            );
            if name == "byzantine-est" {
                assert_eq!(
                    incremental.faults_seen, 3,
                    "{name}: corruption script replayed"
                );
            } else {
                assert!(
                    incremental.insertions_seen > 0 && incremental.removals_seen > 0,
                    "{name}: bursts must appear in the realized change log"
                );
            }
        }
    }
}

#[test]
fn eager_reference_engine_agrees_with_everything_at_once() {
    // Both seams together: the maximally conservative engine (full pass +
    // eager advancement) still reproduces the optimized engine bit for bit.
    for name in ["ring-steady", "self-heal"] {
        let spec = registry::find(name).expect("built-in").scaled(Scale::Tiny);
        for seed in [0u64, 7] {
            let fast = drive(&spec, seed, |_| {});
            let slow = drive(&spec, seed, |sim| {
                sim.set_full_reevaluation(true);
                sim.set_eager_advancement(true);
            });
            assert_bit_identical("optimized vs conservative", &spec, seed, &fast, &slow);
        }
    }
}
