//! Integration tests for Theorem 5.6: the global skew bound.
//!
//! (I) the global skew grows at rate at most 2ρ;
//! (II) whenever it exceeds `D(t) + ι`, it shrinks at rate at least
//!      `µ(1−ρ) − 2ρ`.

use gradient_clock_sync::net::NodeId;
use gradient_clock_sync::prelude::*;

fn params() -> Params {
    Params::builder().rho(0.01).mu(0.1).build().unwrap()
}

fn build(topo: Topology, drift: DriftModel, seed: u64) -> Simulation {
    SimBuilder::new(params())
        .topology(topo)
        .drift(drift)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn global_skew_bounded_by_derived_estimate_on_line() {
    // The builder's derived G~ is a (conservative) bound on D(t) + iota;
    // Theorem 5.6 says the skew can never exceed that for long.
    let mut sim = build(Topology::line(8), DriftModel::TwoBlock, 1);
    let g_tilde = sim.params().g_tilde().unwrap();
    for k in 1..=30 {
        sim.run_until_secs(f64::from(k) * 2.0);
        let g = sim.snapshot().global_skew();
        assert!(
            g <= g_tilde,
            "t={}s: global skew {g} exceeds the static estimate {g_tilde}",
            k * 2
        );
    }
}

#[test]
fn global_skew_bounded_across_topologies_and_drifts() {
    let topos = [
        Topology::ring(8),
        Topology::grid(3, 3),
        Topology::star(8),
        Topology::complete(6),
    ];
    for (i, topo) in topos.into_iter().enumerate() {
        let drift = if i % 2 == 0 {
            DriftModel::TwoBlock
        } else {
            DriftModel::Alternating
        };
        let mut sim = build(topo.clone(), drift, i as u64);
        sim.run_until_secs(30.0);
        let g = sim.snapshot().global_skew();
        let g_tilde = sim.params().g_tilde().unwrap();
        assert!(
            g <= g_tilde,
            "{}: skew {g} above estimate {g_tilde}",
            topo.name()
        );
        assert!(sim.verify_invariants().is_empty(), "{}", topo.name());
    }
}

#[test]
fn skew_growth_rate_is_at_most_two_rho() {
    // Statement (I): between any two instants, G(t) grows at most 2 rho per
    // second (plus the sampling slack of one tick).
    let mut sim = build(Topology::line(10), DriftModel::TwoBlock, 3);
    let slack = sim.params().discretization_slack(sim.tick_interval());
    let mut prev = sim.snapshot().global_skew();
    let dt = 0.5;
    for k in 1..=60 {
        sim.run_until_secs(f64::from(k) * dt);
        let g = sim.snapshot().global_skew();
        let growth = g - prev;
        assert!(
            growth <= 2.0 * sim.params().rho() * dt + slack + 1e-9,
            "t={}: growth {growth} exceeds 2*rho*dt",
            f64::from(k) * dt
        );
        prev = g;
    }
}

#[test]
fn excess_skew_shrinks_at_the_guaranteed_rate() {
    // Statement (II): after injecting a large skew, it must decay at least
    // at rate mu(1-rho) - 2rho until back near steady state.
    let mut sim = build(Topology::line(6), DriftModel::TwoBlock, 4);
    sim.run_until_secs(5.0);
    let steady = sim.snapshot().global_skew();

    sim.inject_clock_offset(NodeId(0), 0.5);
    let g0 = sim.snapshot().global_skew();
    assert!(g0 >= 0.5, "injection visible");

    let rate = sim.params().mu() * (1.0 - sim.params().rho()) - 2.0 * sim.params().rho();
    assert!(rate > 0.0, "recovery rate positive by eq. (8)");

    // While far above steady state, each second must shave off >= rate,
    // up to a tolerance for flood propagation hiccups.
    let mut prev = g0;
    let mut t = 5.0;
    while prev > steady + 0.1 {
        t += 1.0;
        sim.run_until_secs(t);
        let g = sim.snapshot().global_skew();
        assert!(
            prev - g >= rate * 0.5,
            "t={t}: decay {:.6}/s below half the guaranteed rate {rate:.6}",
            prev - g
        );
        prev = g;
        assert!(t < 60.0, "did not recover in time");
    }
}

#[test]
fn global_skew_bounded_by_measured_dynamic_diameter() {
    // The sharp form of Theorem 5.6: G(t) <= D(t) + iota, with D(t) the
    // *measured* dynamic estimate diameter of Definition 3.1 (tracked from
    // the actual flood traffic), not a static proxy.
    let params = params();
    let mut sim = SimBuilder::new(params)
        .topology(Topology::line(12))
        .drift(DriftModel::TwoBlock)
        .track_diameter(true)
        .seed(2)
        .build()
        .unwrap();
    let iota = sim.params().iota();
    for k in 2..=30 {
        sim.run_until_secs(f64::from(k));
        let g = sim.snapshot().global_skew();
        let d = sim.dynamic_diameter().expect("tracking enabled");
        assert!(d.is_finite(), "diameter finite after initial flooding");
        assert!(
            g <= d + iota + 1e-9,
            "t={k}s: G = {g} exceeds D(t) + iota = {}",
            d + iota
        );
    }
}

#[test]
fn dynamic_radius_is_within_diameter() {
    let mut sim = SimBuilder::new(params())
        .topology(Topology::ring(8))
        .drift(DriftModel::Alternating)
        .track_diameter(true)
        .seed(3)
        .build()
        .unwrap();
    sim.run_until_secs(10.0);
    let d = sim.dynamic_diameter().unwrap();
    for u in 0..8u32 {
        let r = sim.dynamic_radius(NodeId(u)).unwrap();
        assert!(r <= d + 1e-12, "radius of v{u} exceeds the diameter");
        assert!(r > 0.0, "radius must be positive under drift");
    }
}

#[test]
fn max_estimates_satisfy_condition_4_3() {
    // (2) M_u <= max_v L_v, (4) M_u >= L_u at all sampled times; and (3)
    // M_u >= max_v L_v - D(t): we use the static estimate as a stand-in
    // bound for D(t).
    let mut sim = build(Topology::ring(8), DriftModel::TwoBlock, 5);
    let d_bound = sim.params().g_tilde().unwrap();
    for k in 1..=40 {
        sim.run_until_secs(f64::from(k) * 0.5);
        let snap = sim.snapshot();
        let max_l = snap.max_logical();
        for u in 0..snap.node_count() {
            let m = snap.max_estimates[u];
            let l = snap.logical[u];
            assert!(m >= l - 1e-9, "node {u}: M < L");
            assert!(m <= max_l + 1e-9, "node {u}: M exceeds the true maximum");
            assert!(
                m >= max_l - d_bound,
                "node {u}: M = {m} lags the maximum {max_l} by more than D"
            );
        }
    }
}

#[test]
fn clock_rates_stay_in_the_envelope() {
    // alpha = 1 - rho <= dL/dt <= beta = (1+rho)(1+mu), cumulatively.
    let mut sim = build(Topology::line(5), DriftModel::Alternating, 6);
    sim.run_until_secs(25.0);
    let snap = sim.snapshot();
    for (i, &l) in snap.logical.iter().enumerate() {
        let lo = sim.params().alpha() * 25.0 - 1e-9;
        let hi = sim.params().beta() * 25.0 + 1e-9;
        assert!(
            (lo..=hi).contains(&l),
            "node {i}: L = {l} outside [{lo}, {hi}]"
        );
    }
}
