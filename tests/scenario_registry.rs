//! Cross-crate integration of the scenario subsystem: the registry drives
//! real simulations through the umbrella prelude, and the `scenarios/`
//! directory at the repo root stays in sync with the built-ins.

use std::path::Path;

use gradient_clock_sync::prelude::*;
use gradient_clock_sync::scenarios::{format, Scale};

#[test]
fn registry_is_broad_and_builds_real_simulations() {
    let specs = registry::all();
    assert!(specs.len() >= 12);
    for spec in &specs {
        let tiny = spec.scaled(Scale::Tiny);
        let mut sim = tiny
            .build(1)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        sim.run_until_secs((tiny.end_secs()).min(5.0));
        assert!(
            sim.snapshot().global_skew().is_finite(),
            "{} produced a non-finite skew",
            spec.name
        );
    }
}

#[test]
fn checked_in_scenario_files_match_the_registry() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios");
    let specs = registry::all();
    for spec in &specs {
        let path = dir.join(format!("{}.scn", spec.name));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{} missing ({e}); regenerate with `cargo run --bin gcs-scenarios -- \
                 export scenarios/`",
                path.display()
            )
        });
        assert_eq!(
            text,
            format::write(spec),
            "{} is stale; regenerate with `gcs-scenarios export scenarios/`",
            path.display()
        );
    }
    // And nothing extra lingers.
    let on_disk = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "scn"))
        .count();
    assert_eq!(on_disk, specs.len(), "stray .scn files in scenarios/");
}

#[test]
fn campaign_smoke_via_prelude_types() {
    use gradient_clock_sync::scenarios::campaign;
    let spec = registry::find("flash-join").unwrap().scaled(Scale::Tiny);
    let rows = campaign::run_campaign(std::slice::from_ref(&spec), &[0, 1]).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].stats.runs, 2);
    assert!(rows[0].stats.stddev.is_finite());
    assert!(rows[0].stats.p10 <= rows[0].stats.p90);
    // The ScenarioError type flows through the prelude for failure paths.
    let mut bad = spec;
    bad.rho = 0.9;
    let err: ScenarioError = bad.validate().unwrap_err();
    assert!(matches!(err, ScenarioError::Params(_)));
}
