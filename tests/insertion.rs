//! Integration tests for edge insertion (Listing 1/2, Lemmas 5.1 and 5.5,
//! Theorem 5.25): the handshake agrees on insertion times, levels unlock
//! monotonically, the gradient property on pre-existing edges survives the
//! insertion, and the new edge eventually satisfies its stable bound.

use gradient_clock_sync::analysis::{gradient_bound, GradientChecker};
use gradient_clock_sync::core::edge_state::Level;
use gradient_clock_sync::net::{EdgeKey, NodeId};
use gradient_clock_sync::prelude::*;

fn insertion_sim(n: usize, chord: EdgeKey, at: f64, scale: f64, seed: u64) -> Simulation {
    let mut pb = Params::builder();
    pb.rho(0.01).mu(0.1).insertion_scale(scale);
    let schedule = NetworkSchedule::with_edge_insertion(
        &Topology::ring(n),
        &[(chord, SimTime::from_secs(at))],
        0.002,
    );
    SimBuilder::new(pb.build().unwrap())
        .schedule(schedule)
        .drift(DriftModel::TwoBlock)
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn levels_unlock_monotonically() {
    // Lemma 5.1: N^s ⊆ N^{s-1}; equivalently the unlocked level of an edge
    // never decreases while the edge is present.
    let chord = EdgeKey::new(NodeId(0), NodeId(5));
    let mut sim = insertion_sim(10, chord, 2.0, 0.05, 1);
    let mut last = None::<Level>;
    for k in 0..200 {
        sim.run_until_secs(f64::from(k) * 0.25);
        let level = sim.level_between(NodeId(0), NodeId(5));
        if let (Some(prev), Some(cur)) = (last, level) {
            assert!(
                cur >= prev,
                "level dropped from {prev:?} to {cur:?} at step {k}"
            );
        }
        if level.is_some() {
            last = level;
        }
    }
    assert_eq!(last, Some(Level::Infinite), "insertion completed");
}

#[test]
fn handshake_agreement_lemma_5_5() {
    // Both endpoints must agree on (T0, I) — checked continuously by the
    // engine's invariant checker; here we additionally require that the
    // insertion actually got scheduled on both sides.
    let chord = EdgeKey::new(NodeId(0), NodeId(4));
    let mut sim = insertion_sim(8, chord, 1.0, 0.05, 2);
    sim.run_until_secs(30.0);
    assert_eq!(sim.stats().insertions_scheduled, 2);
    assert!(sim.verify_invariants().is_empty());
}

#[test]
fn flapping_edge_is_cancelled_cleanly() {
    // The chord appears at t=2 but vanishes 20 ms later — inside the
    // handshake's Delta wait (~32 ms for the default edge parameters): no
    // insertion may be scheduled, and re-appearance restarts cleanly
    // (Lemma 5.5 (II)/(III)).
    let chord = EdgeKey::new(NodeId(0), NodeId(4));
    let base = Topology::ring(8);
    let mut schedule = NetworkSchedule::static_graph(&base);
    schedule.add_undirected_up(chord, SimTime::from_secs(2.0), 0.001);
    schedule.add_undirected_down(chord, SimTime::from_secs(2.02), 0.001);
    schedule.add_undirected_up(chord, SimTime::from_secs(10.0), 0.001);

    let mut pb = Params::builder();
    pb.rho(0.01).mu(0.1).insertion_scale(0.05);
    let mut sim = SimBuilder::new(pb.build().unwrap())
        .schedule(schedule)
        .seed(3)
        .build()
        .unwrap();

    sim.run_until_secs(9.0);
    // First incarnation died before the handshake could finish.
    assert_eq!(sim.stats().insertions_scheduled, 0);
    assert_eq!(sim.level_between(NodeId(0), NodeId(4)), None);

    sim.run_until_secs(60.0);
    // Second incarnation completes.
    assert_eq!(sim.stats().insertions_scheduled, 2);
    assert!(matches!(
        sim.level_between(NodeId(0), NodeId(4)),
        Some(Level::Finite(_)) | Some(Level::Infinite)
    ));
    assert!(sim.verify_invariants().is_empty());
}

#[test]
fn old_edges_stay_legal_during_insertion() {
    // The gradient property on the pre-existing ring may not be disturbed
    // while the chord is being inserted (the point of the staged schedule).
    let chord = EdgeKey::new(NodeId(0), NodeId(5));
    let mut sim = insertion_sim(10, chord, 2.0, 0.05, 4);
    let g_hat = sim.params().g_tilde().unwrap();
    let slack = sim.params().discretization_slack(sim.tick_interval());
    let checker = GradientChecker::new(g_hat, 16, slack);
    for k in 1..=40 {
        sim.run_until_secs(f64::from(k));
        let report = checker.check(&sim);
        assert!(report.is_legal(), "t={k}s: {:?}", report.violations());
    }
}

#[test]
fn new_edge_reaches_stable_gradient_bound() {
    // Theorem 5.25: after O(G~/mu) the chord obeys its stable bound.
    let chord = EdgeKey::new(NodeId(0), NodeId(5));
    let mut sim = insertion_sim(10, chord, 2.0, 0.05, 5);
    sim.run_until_secs(80.0);
    assert_eq!(
        sim.level_between(NodeId(0), NodeId(5)),
        Some(Level::Infinite)
    );
    let info = sim.edge_info(chord).unwrap();
    let g_hat = sim.params().g_tilde().unwrap();
    let bound = gradient_bound(sim.params(), g_hat, info.kappa)
        + sim.params().discretization_slack(sim.tick_interval());
    let skew = sim.snapshot().skew(NodeId(0), NodeId(5));
    assert!(
        skew <= bound,
        "stabilized chord skew {skew} above bound {bound}"
    );
}

#[test]
fn paper_scale_insertion_takes_theta_g_over_mu() {
    // With insertion_scale = 1 the chord must NOT be inserted early: check
    // the duration is in the right ballpark (>= I/beta real seconds).
    let chord = EdgeKey::new(NodeId(0), NodeId(3));
    let mut sim = insertion_sim(6, chord, 1.0, 1.0, 6);
    let g_tilde = sim.params().g_tilde().unwrap();
    let i = sim.params().insertion_duration_static(g_tilde);
    // Levels 1.. unlock only after T0 >= L(handshake end); run to just
    // before the earliest possible completion and verify incompleteness.
    let earliest_completion = i / sim.params().beta();
    sim.run_until_secs(earliest_completion * 0.5);
    let level = sim.level_between(NodeId(0), NodeId(3));
    assert!(
        !matches!(level, Some(Level::Infinite)),
        "insertion completed implausibly early (before {earliest_completion:.1}s)"
    );
}

#[test]
fn dynamic_estimates_insert_faster_when_skew_is_small() {
    // Section 7: with node-local G~_u(t), the insertion duration tracks the
    // *actual* global skew rather than the conservative static estimate.
    let chord = EdgeKey::new(NodeId(0), NodeId(4));
    let schedule = NetworkSchedule::with_edge_insertion(
        &Topology::ring(8),
        &[(chord, SimTime::from_secs(2.0))],
        0.002,
    );
    let mut static_pb = Params::builder();
    static_pb.rho(0.01).mu(0.1).g_tilde(10.0); // wildly conservative G~
    let mut dynamic_pb = Params::builder();
    dynamic_pb
        .rho(0.01)
        .mu(0.1)
        .g_tilde(10.0)
        .b_constant(4.0)
        .dynamic_estimates(true);

    let run = |params: Params| {
        let mut sim = SimBuilder::new(params)
            .schedule(schedule.clone())
            .drift(DriftModel::TwoBlock)
            .seed(7)
            .build()
            .unwrap();
        sim.run_until_secs(120.0);
        sim.level_between(NodeId(0), NodeId(4))
    };

    let static_level = run(static_pb.build().unwrap());
    let dynamic_level = run(dynamic_pb.build().unwrap());
    // The static variant (I ~ 3000 s of logical time) cannot have finished;
    // the dynamic variant (G~_u ~ actual skew, tiny) must be done.
    assert!(
        !matches!(static_level, Some(Level::Infinite)),
        "static insertion finished implausibly fast: {static_level:?}"
    );
    assert_eq!(
        dynamic_level,
        Some(Level::Infinite),
        "dynamic insertion should have completed"
    );
}
