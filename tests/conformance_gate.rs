//! Negative-path tests of the two new gates: a regression the gate
//! exists to catch must actually fail it, loudly and readably.
//!
//! * A synthetically perturbed trajectory (+40 % recovery slope at
//!   unchanged scalar stats) must fail `compare` at the tight tolerance.
//! * A snapshot that violates a paper bound (a corruption the oracle is
//!   told not to credit) must fail the conformance check, with the
//!   violation time and a readable table.
//! * The deterministic counter gate must fail on a single off-by-one.

use gradient_clock_sync::net::NodeId;
use gradient_clock_sync::prelude::*;
use gradient_clock_sync::scenarios::{bench, campaign, conformance, trend, Scale};

fn tiny(name: &str) -> ScenarioSpec {
    registry::find(name).expect("built-in").scaled(Scale::Tiny)
}

#[test]
fn perturbed_recovery_slope_fails_compare_with_a_readable_table() {
    // self-heal is the recovery scenario: its trajectory spikes at the
    // scripted corruption and drains back. Keep every scalar stat
    // identical and raise only the mean recovery slope by 40 % — the
    // regression shape PR 3's scalar gate was blind to.
    let specs = vec![tiny("self-heal")];
    let seeds = [0u64, 1, 2];
    let rows = campaign::run_campaign(&specs, &seeds).unwrap();
    let baseline = trend::TrendSummary::from_rows("all", Scale::Tiny, &seeds, &rows);
    assert!(
        baseline.rows[0].envelope.unwrap().mean_recovery_slope > 0.0,
        "self-heal must have a measurable recovery slope"
    );
    let mut current = baseline.clone();
    current.rows[0]
        .envelope
        .as_mut()
        .unwrap()
        .mean_recovery_slope *= 1.4;

    let report = trend::compare(&baseline, &current, trend::TOL_TIGHT);
    assert!(!report.passed(), "a +40% recovery slope must fail the gate");
    let finding = &report.findings[0];
    assert_eq!(finding.column, "recovery slope");
    assert!((finding.relative() - 0.4).abs() < 1e-9);
    // The table names the drifted column and flags the row.
    let table = report.table.to_string();
    assert!(table.contains("self-heal"));
    assert!(table.contains("DRIFT"));
    assert!(table.contains("recovery slope"));
    // The identical summaries still pass — the failure is the perturbation.
    assert!(trend::compare(&baseline, &baseline, trend::TOL_TIGHT).passed());
}

#[test]
fn violated_snapshot_fails_conformance_with_a_readable_table() {
    // Hand-violate a run: corrupt a clock by 3 G^ mid-run and configure
    // the oracle *not* to credit corruptions — the snapshots right after
    // the injection then genuinely violate the Theorem 5.6 envelope (and
    // the neighbouring pairs the Theorem 5.22 gradient bound).
    let spec = tiny("ring-steady");
    let mut sim = spec.build(3).unwrap();
    let g_hat = sim.params().g_tilde().unwrap();
    let mut cfg = OracleConfig::for_sim(&sim, spec.sample);
    cfg.credit_faults = false;
    let mut checker = ConformanceChecker::with_config(&sim, cfg);

    let mut t = 0.0;
    let fault_at = 4.0;
    let end = 10.0;
    let mut injected = false;
    loop {
        if !injected && t >= fault_at {
            sim.inject_clock_offset(NodeId(0), 3.0 * g_hat);
            injected = true;
        }
        sim.run_until_secs(t);
        checker.observe(&sim);
        if t >= end {
            break;
        }
        t += spec.sample;
    }
    let report = checker.finish();
    assert!(!report.is_conformant(), "the violation must be caught");
    let first = report.first_violation().expect("violation time recorded");
    assert!(
        (fault_at..fault_at + 2.0 * spec.sample).contains(&first),
        "first violation at {first}, expected right after the injection at {fault_at}"
    );
    assert!(report.global.min_margin < 0.0);
    // Readable diagnostics: per-family lines plus the table.
    let lines = report.violations();
    assert!(lines.iter().any(|l| l.contains("Thm 5.6")), "{lines:?}");
    let table = report.to_table().to_string();
    assert!(table.contains("global"));
    assert!(table.contains("gradient d=1"));

    // The same run with the §5.2 allowance credited (the realized fault
    // log replayed honestly) conforms — the bound is sharp, not slack.
    let mut sim2 = spec.build(3).unwrap();
    let mut checker2 = ConformanceChecker::new(&sim2, spec.sample);
    let mut t = 0.0;
    let mut injected = false;
    loop {
        if !injected && t >= fault_at {
            sim2.inject_clock_offset(NodeId(0), 3.0 * g_hat);
            injected = true;
        }
        sim2.run_until_secs(t);
        checker2.observe(&sim2);
        if t >= end {
            break;
        }
        t += spec.sample;
    }
    let credited = checker2.finish();
    assert!(credited.is_conformant(), "{:?}", credited.violations());
    assert_eq!(credited.faults_seen, 1);
}

#[test]
fn conformance_sweep_catches_an_understated_envelope() {
    // End-to-end through the runner: every registry run conforms with the
    // honest oracle (the `conformance` CLI exits zero on this), and the
    // violations() helper surfaces nothing.
    let specs = vec![tiny("self-heal"), tiny("byzantine-est")];
    let rows = conformance::run_conformance(&specs, &[0]).unwrap();
    assert!(conformance::violations(&rows).is_empty());
    // The sweep table renders one row per run with a verdict column.
    let table = conformance::conformance_table(&rows).to_string();
    assert!(table.contains("self-heal") && table.contains("byzantine-est"));
    assert!(table.contains("ok"));
}

#[test]
fn counter_gate_fails_on_a_single_event() {
    let spec = tiny("ring-steady");
    let entries = bench::run_suite(std::slice::from_ref(&spec), &[0], &[1], 1).unwrap();
    let artifact = bench::read_bench(&bench::bench_json(Scale::Tiny, &[0], &entries)).unwrap();
    let mut drifted = artifact.clone();
    drifted.entries[0].mode_evaluations += 1;
    let report = bench::compare_counters(&artifact, &drifted, false);
    assert!(!report.passed());
    assert_eq!(report.findings[0].counter, "mode_evaluations");
    assert!(report.table.to_string().contains("MISMATCH"));
    assert!(bench::compare_counters(&artifact, &artifact, false).passed());
}
