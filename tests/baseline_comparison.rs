//! Integration tests for the baseline policies: they run on the same
//! substrate, keep the global skew bounded (they share the max-estimate
//! machinery), and the policy wiring is faithful.

use gradient_clock_sync::net::NodeId;
use gradient_clock_sync::prelude::*;

fn params() -> Params {
    Params::builder().rho(0.01).mu(0.1).build().unwrap()
}

fn run_policy(policy: Option<Box<dyn ModePolicy>>, seed: u64) -> (Simulation, f64) {
    let mut b = SimBuilder::new(params())
        .topology(Topology::line(8))
        .drift(DriftModel::TwoBlock)
        .seed(seed);
    if let Some(p) = policy {
        b = b.policy(p);
    }
    let mut sim = b.build().unwrap();
    let mut worst_local: f64 = 0.0;
    for k in 1..=30 {
        sim.run_until_secs(f64::from(k));
        worst_local = worst_local.max(local_skew(&sim));
    }
    (sim, worst_local)
}

#[test]
fn all_policies_keep_global_skew_bounded() {
    for (i, policy) in [
        None,
        Some(Box::new(MaxOnlyPolicy) as Box<dyn ModePolicy>),
        Some(Box::new(SingleLevelPolicy::new(0.05)) as Box<dyn ModePolicy>),
    ]
    .into_iter()
    .enumerate()
    {
        let (sim, _) = run_policy(policy, i as u64);
        let g = sim.snapshot().global_skew();
        let g_tilde = sim.params().g_tilde().unwrap();
        assert!(
            g <= g_tilde,
            "policy {} exceeded the global bound: {g} > {g_tilde}",
            sim.policy_name()
        );
    }
}

#[test]
fn policy_names_are_wired_through() {
    let (aopt, _) = run_policy(None, 0);
    assert_eq!(aopt.policy_name(), "aopt");
    let (maxo, _) = run_policy(Some(Box::new(MaxOnlyPolicy)), 0);
    assert_eq!(maxo.policy_name(), "max-only");
    let (single, _) = run_policy(Some(Box::new(SingleLevelPolicy::new(0.1))), 0);
    assert_eq!(single.policy_name(), "single-level");
}

#[test]
fn aopt_is_no_worse_than_baselines_after_disruption() {
    // Inject a skew at one end and compare the worst local skew on the
    // *interior* edges during recovery: A_OPT redistributes the skew
    // gradually (bounded per edge), max-only concentrates catch-up via the
    // global max estimate. A_OPT must respect its gradient bound; the
    // baselines are only required to recover.
    let disrupt = |policy: Option<Box<dyn ModePolicy>>| -> (f64, f64) {
        let mut b = SimBuilder::new(params())
            .topology(Topology::line(8))
            .drift(DriftModel::TwoBlock)
            .seed(9);
        if let Some(p) = policy {
            b = b.policy(p);
        }
        let mut sim = b.build().unwrap();
        sim.run_until_secs(5.0);
        sim.inject_clock_offset(NodeId(7), 0.25);
        let mut worst_interior: f64 = 0.0;
        for k in 0..100 {
            sim.run_until_secs(5.0 + f64::from(k) * 0.25);
            // Interior edge far from the injection point.
            let s = sim.snapshot().skew(NodeId(2), NodeId(3));
            worst_interior = worst_interior.max(s);
        }
        (worst_interior, sim.snapshot().global_skew())
    };

    let (aopt_interior, aopt_final) = disrupt(None);
    let (max_interior, max_final) = disrupt(Some(Box::new(MaxOnlyPolicy)));

    // Both recover globally.
    assert!(aopt_final < 0.05, "A_OPT did not recover: {aopt_final}");
    assert!(max_final < 0.05, "max-only did not recover: {max_final}");
    // A_OPT's interior edges carry bounded skew during redistribution.
    let sim = SimBuilder::new(params())
        .topology(Topology::line(8))
        .seed(9)
        .build()
        .unwrap();
    let info = sim
        .edge_info(gradient_clock_sync::net::EdgeKey::new(NodeId(2), NodeId(3)))
        .unwrap();
    let g_hat = sim.params().g_tilde().unwrap().max(0.25);
    let bound = gradient_bound(sim.params(), g_hat, info.kappa);
    assert!(
        aopt_interior <= bound + 1e-3,
        "A_OPT interior skew {aopt_interior} above gradient bound {bound} \
         (max-only saw {max_interior})"
    );
}

#[test]
fn single_level_threshold_controls_local_skew_budget() {
    // A larger threshold B lets more skew accumulate on an edge before the
    // policy reacts; under adversarial drift the measured local skew must
    // not exceed ~1.5 B + slack for the *small*-B run.
    let run = |b: f64, seed: u64| -> f64 {
        let mut sim = SimBuilder::new(params())
            .topology(Topology::line(8))
            .drift(DriftModel::TwoBlock)
            .policy(Box::new(SingleLevelPolicy::new(b)))
            .seed(seed)
            .build()
            .unwrap();
        let mut worst: f64 = 0.0;
        for k in 1..=30 {
            sim.run_until_secs(f64::from(k));
            worst = worst.max(local_skew(&sim));
        }
        worst
    };
    let tight = run(0.02, 1);
    // The tight threshold keeps each edge within ~1.5 B + eps + slack.
    assert!(
        tight <= 1.5 * 0.02 + 0.01,
        "single-level local skew {tight} above its budget"
    );
}
