//! Cross-validation of the analysis layer against independent
//! brute-force implementations: the Dijkstra-based all-pairs distances
//! against Floyd–Warshall, and the potential computation against explicit
//! simple-path enumeration.

use proptest::prelude::*;

use gradient_clock_sync::analysis::paths::WeightedGraph;
use gradient_clock_sync::analysis::potentials::potentials_from;
use gradient_clock_sync::net::{EdgeKey, NodeId};

/// A random connected weighted graph on `n` nodes: a random spanning chain
/// plus extra random edges.
fn arb_graph(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (3..=max_n).prop_flat_map(|n| {
        let chain = (0..n - 1)
            .map(|i| (Just(i), Just(i + 1), 0.1f64..5.0))
            .collect::<Vec<_>>();
        let extras = proptest::collection::vec(
            (0..n, 0..n, 0.1f64..5.0).prop_filter("no self-loops", |(a, b, _)| a != b),
            0..2 * n,
        );
        (chain, extras).prop_map(move |(chain, extras)| {
            let mut edges: Vec<(usize, usize, f64)> = Vec::new();
            let mut seen = std::collections::BTreeSet::new();
            for (a, b, w) in chain.into_iter().chain(extras) {
                let key = (a.min(b), a.max(b));
                if seen.insert(key) {
                    edges.push((key.0, key.1, w));
                }
            }
            (n, edges)
        })
    })
}

fn build(n: usize, edges: &[(usize, usize, f64)]) -> WeightedGraph {
    let mut g = WeightedGraph::new(n);
    for &(a, b, w) in edges {
        g.add_edge(EdgeKey::new(NodeId::from(a), NodeId::from(b)), w);
    }
    g
}

/// Reference implementation: Floyd–Warshall.
fn floyd_warshall(n: usize, edges: &[(usize, usize, f64)]) -> Vec<f64> {
    let mut d = vec![f64::INFINITY; n * n];
    for v in 0..n {
        d[v * n + v] = 0.0;
    }
    for &(a, b, w) in edges {
        d[a * n + b] = d[a * n + b].min(w);
        d[b * n + a] = d[b * n + a].min(w);
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i * n + k] + d[k * n + j];
                if via < d[i * n + j] {
                    d[i * n + j] = via;
                }
            }
        }
    }
    d
}

/// Reference implementation: enumerate all simple paths from `start` and
/// return the max of `score(endpoint, path_weight)`.
fn brute_force_paths(
    n: usize,
    edges: &[(usize, usize, f64)],
    start: usize,
    score: &dyn Fn(usize, f64) -> f64,
) -> f64 {
    let mut adj = vec![Vec::new(); n];
    for &(a, b, w) in edges {
        adj[a].push((b, w));
        adj[b].push((a, w));
    }
    let mut best = score(start, 0.0); // trivial path
    let mut visited = vec![false; n];
    visited[start] = true;
    fn dfs(
        u: usize,
        weight: f64,
        adj: &[Vec<(usize, f64)>],
        visited: &mut Vec<bool>,
        score: &dyn Fn(usize, f64) -> f64,
        best: &mut f64,
    ) {
        for &(v, w) in &adj[u] {
            if !visited[v] {
                visited[v] = true;
                let total = weight + w;
                *best = best.max(score(v, total));
                dfs(v, total, adj, visited, score, best);
                visited[v] = false;
            }
        }
    }
    dfs(start, 0.0, &adj, &mut visited, score, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn dijkstra_matches_floyd_warshall((n, edges) in arb_graph(10)) {
        let g = build(n, &edges);
        let ours = g.all_pairs();
        let reference = floyd_warshall(n, &edges);
        for i in 0..n {
            for j in 0..n {
                let a = ours.get(NodeId::from(i), NodeId::from(j));
                let b = reference[i * n + j];
                prop_assert!((a - b).abs() < 1e-9, "({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn potentials_match_brute_force(
        (n, edges) in arb_graph(7),
        clocks in proptest::collection::vec(-10.0f64..10.0, 7),
        s in 1u32..5,
    ) {
        let clocks = &clocks[..n.min(clocks.len())];
        prop_assume!(clocks.len() == n);
        let g = build(n, &edges);
        let dist = g.all_pairs();
        let pots = potentials_from(clocks, &dist, s);
        for u in 0..n {
            // Definitions 5.11 / 5.12 computed by explicit simple-path
            // enumeration. The shortest-path reduction is only valid as a
            // *maximum* over paths (longer paths only lower the score), so
            // brute force must agree exactly.
            let xi_ref = brute_force_paths(n, &edges, u, &|v, w| {
                clocks[u] - clocks[v] - f64::from(s) * w
            });
            let psi_ref = brute_force_paths(n, &edges, u, &|v, w| {
                clocks[v] - clocks[u] - (f64::from(s) + 0.5) * w
            });
            prop_assert!((pots.xi[u] - xi_ref.max(0.0)).abs() < 1e-9,
                "xi[{u}]: {} vs {}", pots.xi[u], xi_ref);
            prop_assert!((pots.psi[u] - psi_ref.max(0.0)).abs() < 1e-9,
                "psi[{u}]: {} vs {}", pots.psi[u], psi_ref);
        }
    }
}
