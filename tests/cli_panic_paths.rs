//! Negative-path CLI regression tests for `gcs-scenarios` failure
//! handling.
//!
//! The `trace` and `bench --telemetry` verbs used to reach `.expect()`
//! calls on user-reachable failure paths, killing the process with a
//! panic backtrace instead of a diagnostic. Every failure driven here
//! must exit with the documented code (1 = generic error) and print a
//! single readable `error:` line to stderr — never `panicked at`.

use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gcs-scenarios"))
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Asserts the documented generic-failure contract: exit code 1, a
/// readable `error:` diagnostic, and no panic machinery in sight.
fn assert_clean_failure(out: &Output, needle: &str) {
    let err = stderr(out);
    assert_eq!(
        out.status.code(),
        Some(1),
        "generic failures exit with code 1: {err}"
    );
    assert!(err.contains("error:"), "diagnostic goes to stderr: {err}");
    assert!(
        !err.contains("panicked at"),
        "failure must not be a panic: {err}"
    );
    assert!(
        err.contains(needle),
        "diagnostic must explain itself: {err}"
    );
}

#[test]
fn trace_without_a_target_fails_readably() {
    let out = bin().arg("trace").output().unwrap();
    assert_clean_failure(&out, "trace needs a scenario");
}

#[test]
fn trace_rejects_the_all_selection_readably() {
    let out = bin().args(["trace", "all"]).output().unwrap();
    assert_clean_failure(&out, "exactly one scenario");
}

#[test]
fn trace_names_an_unknown_scenario_readably() {
    let out = bin().args(["trace", "no-such-scenario"]).output().unwrap();
    assert_clean_failure(&out, "no-such-scenario");
}

#[test]
fn trace_reports_an_unwritable_output_path_readably() {
    let out = bin()
        .args([
            "trace",
            "ring-steady",
            "--scale",
            "tiny",
            "--out",
            "/dev/null/trace.jsonl",
        ])
        .output()
        .unwrap();
    assert_clean_failure(&out, "cannot write");
}

#[test]
fn bench_rejects_an_unknown_option_readably() {
    let out = bin()
        .args(["bench", "ring-steady", "--no-such-flag"])
        .output()
        .unwrap();
    assert_clean_failure(&out, "--no-such-flag");
}

#[test]
fn unknown_command_prints_usage_and_fails() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert_clean_failure(&out, "frobnicate");
    assert!(stderr(&out).contains("USAGE"), "usage rides along");
}
