//! The `gcs-scenarios` CLI: list, validate, run, export, and show
//! declarative scenarios.
//!
//! ```sh
//! cargo run --release --bin gcs-scenarios -- list
//! cargo run --release --bin gcs-scenarios -- validate scenarios/
//! cargo run --release --bin gcs-scenarios -- run churn-storm --seeds 4
//! cargo run --release --bin gcs-scenarios -- run all --seeds 2 --scale tiny
//! cargo run --release --bin gcs-scenarios -- export scenarios/
//! ```

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitCode, ExitStatus, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gcs_net::{EdgeKey, EdgeParams, EdgeParamsMap, NodeId};
use gcs_protocol::runtime::derive_run_config;
use gcs_protocol::{EstimateMode, Params};
use gcs_scenarios::json::Json;
use gcs_scenarios::{
    campaign, format, registry, telemetry, trend, trendseries, ConformanceOptions, OracleRide,
    Scale, ScenarioSpec,
};

const USAGE: &str = "\
gcs-scenarios — declarative dynamic-network scenarios

USAGE:
    gcs-scenarios list
        List the built-in scenario registry.
    gcs-scenarios show <name>
        Print a built-in scenario in canonical .scn form.
    gcs-scenarios validate <dir>
        Parse, validate, round-trip-check, and test-build every .scn
        file in <dir>; exits nonzero on the first problem.
    gcs-scenarios run <name|file.scn|all> [--seeds N] [--scale S] [--out DIR]
        Run a campaign (scenario x seed fan-out) and write the
        results/campaign_*.json artifact. `all` sweeps the campaign set
        (every built-in except the bench-class engine-scale scenarios,
        which run by name or via `bench`). The per-scenario summary
        includes the engine's deterministic counters (events, ticks,
        mode evaluations, deliveries) summed across seeds.
        --seeds N   seeds 0..N          (default 4)
        --scale S   tiny|default|full   (default default)
        --out DIR   artifact directory  (default results)
        --progress  print one line per completed scenario x seed, in
                    canonical (scenario-major) order
        --telemetry FILE  also drive every scenario x seed instrumented
                    (sequential engine) and write the gcs-telemetry/v1
                    artifact to FILE
    gcs-scenarios bench [selection] [--seeds N] [--scale S] [--out FILE]
        Engine-throughput benchmark: drive scenarios end to end
        (sequentially, no observation sampling) and write the
        gcs-engine-bench/v1 artifact with wall-clock and events/sec per
        scenario x seed. `all` (the default) sweeps the whole registry,
        bench-class scenarios included.
        --seeds N     seeds 0..N          (default 1)
        --repeat R    keep the fastest of R runs per entry (default 1)
        --scale S     tiny|default|full   (default default)
        --threads LST comma list of worker counts, one row each; 1 = the
                      sequential reference, >1 = the sharded engine
                      (default 1)
        --out FILE    artifact path       (default results/BENCH_engine.json)
        --trend FILE  also append one gcs-trend/v1 point per entry to the
                      longitudinal TREND_*.jsonl series (see trend-gate)
        --telemetry FILE  re-drive every timed entry with the telemetry
                      sink attached, assert the deterministic counters
                      are IDENTICAL to the timed pass (zero
                      instrumentation drift), and write the
                      gcs-telemetry/v1 artifact to FILE
    gcs-scenarios trace <name|file.scn> [--seed N] [--threads T] [--scale S]
                        [--out FILE]
        Run one scenario instrumented and emit the deterministic
        gcs-trace/v1 JSONL run log (sealed with a running FNV-1a content
        hash). The bytes are engine-invariant: the same (scenario, seed)
        produces the identical trace from the sequential engine and the
        sharded engine at every shard count.
        --seed N     run seed            (default 0)
        --threads T  1 = sequential, >1 = sharded with T shards (default 1)
        --scale S    tiny|default|full   (default tiny)
        --out FILE   write the trace here instead of stdout
    gcs-scenarios node-smoke [--procs P] [--per-proc K] [--secs S]
                             [--refresh R]
        Loopback cluster smoke test for the gcs-node socket daemon: spawn
        P daemon processes on 127.0.0.1 (K virtual nodes each, wired into
        a full mesh via --peers), let them exchange wire floods for S
        wall-clock seconds, then assert that every node heard every other
        node, that the observed logical-clock skew fits the Theorem 5.22
        gradient envelope of the cluster's derived parameters (plus a
        small measurement slack for pipe latency), that daemons whose
        stdin closes exit 0 printing `shutdown clean`, and that a
        SIGTERM'd daemon stops promptly. Needs the gcs-node binary next
        to this one (cargo builds both).
        --procs P     daemon processes        (default 3)
        --per-proc K  virtual nodes per proc  (default 2)
        --secs S      run duration, seconds   (default 4)
        --refresh R   flood refresh period    (default 0.2)
    gcs-scenarios trace-diff <a.jsonl> <b.jsonl>
        Verify both traces' content hashes, then compare them
        byte-for-byte. On divergence, prints one machine-readable JSON
        record to stdout — {\"rec\":\"divergence\",\"line\":N,\"a\":...,
        \"b\":...} with the 1-based line and both records (null when one
        trace ended) — and exits with code 3. The replay/equivalence
        gate.
    gcs-scenarios replay <trace.jsonl> [--threads T]
        Re-materialize a run from a sealed gcs-trace/v1 artifact ALONE:
        verify the seal (a mutated artifact is rejected), parse the
        embedded .scn spec record, rebuild from the recorded seed, drive
        the identical observation grid, and compare the fresh trace
        byte-for-byte against the original. Bit-identity is the
        contract; on divergence prints the same machine-readable record
        as trace-diff and exits with code 3.
        --threads T  replaying engine: 1 = sequential, >1 = sharded with
                     T shards (default 1; the outcome is invariant)
    gcs-scenarios chaos-search <name|file.scn> [--seed S] [--budget N]
                  [--seeds K] [--scale SC] [--threads T] [--log FILE]
                  [--resume FILE] [--export FILE] [--rename NAME]
                  [--trend FILE] [--violation-out FILE]
        Adversarial fault-schedule search: a seeded greedy-mutation loop
        over fault scripts (clock offsets, est-bias corruption,
        partition/churn-burst timing) inside the .scn validation
        envelope, scoring every candidate with the exact conformance
        oracle and hill-climbing on worst-case margin utilization. The
        gcs-chaos/v1 search log is byte-deterministic for a fixed
        (base, --seed, --budget) and embeds every frontier candidate's
        .scn. A candidate that EXCEEDS 100% utilization stops the
        search, writes a sealed replayable trace of the violating run,
        and exits with code 4.
        --seed S     search RNG seed (default 0)
        --budget N   candidate evaluations (default 32)
        --seeds K    score each candidate over run seeds 0..K (default 1)
        --scale SC   tiny|default|full (default default)
        --threads T  engine threads per evaluation (default 1)
        --log FILE   write the gcs-chaos/v1 search log here
        --resume FILE  start from the frontier of a previous search log
                     instead of the base scenario
        --export FILE  write the best-found schedule as canonical .scn
        --rename NAME  rename the exported schedule (required when the
                     export will join the registry next to its base)
        --trend FILE append one gcs-trend/v1 point (kind chaos, metric
                     best_util) to the longitudinal series
        --violation-out FILE  where the violating run's trace artifact
                     goes (default results/CHAOS_violation.jsonl)
    gcs-scenarios conformance [selection] [--seeds N] [--scale S]
        Drive a scenario selection (default: the whole registry,
        bench-class scenarios included) through the paper-bound
        conformance oracles: the Theorem 5.6 global-skew
        envelope, the Theorem 5.22 gradient bound per hop class, and the
        weak-edge legality bound, with self-stabilization and partition
        allowances replayed from each run's realized fault/insertion log.
        The oracle streams over sampled snapshots during the run — no
        trajectory is retained, so memory stays bounded at engine scale.
        Exits non-zero on any bound violation, and on an unknown scenario
        or set name. The theorem-level CI gate.
        --seeds N   seeds 0..N          (default 2)
        --scale S   tiny|default|full   (default tiny)
        --oracle-sample P  sampled-pairs oracle: stratified per-snapshot
                    source draws at rate P in (0,1] instead of the exact
                    all-pairs sweep. A violating pair escapes one snapshot
                    with probability <= (1-P)^2; sampled verdicts are a
                    conservative projection of exact ones (never a false
                    alarm). Deterministic for a (scenario, seed) at every
                    shard count.
        --oracle-seed N  base seed for the sampled source draws (default
                    0; mixed with each run seed)
        --threads T 1 = sequential reference engine, >1 = the sharded
                    engine with T shards per run (default 1)
        --trend FILE  also append one gcs-trend/v1 point per run (bound
                    utilizations, sample counts) to the longitudinal
                    TREND_*.jsonl series (see trend-gate)
        --progress  print one line per completed scenario x seed, in
                    canonical (scenario-major) order
        --telemetry FILE  also drive every scenario x seed instrumented
                    with the oracle riding along (same exact/sampled mode)
                    and write the gcs-telemetry/v1 artifact (including the
                    bound-margin utilization time series) to FILE
    gcs-scenarios trend-append <bench.json> [--out FILE]
        Distill a gcs-engine-bench/v1 artifact into gcs-trend/v1 points
        (one per scenario x seed x threads entry, stamped now) and append
        them to FILE (default results/TREND_engine.jsonl). Seeds the
        nightly trend trajectory from a checked-in BENCH_*.json point.
    gcs-scenarios trend-gate <trend.jsonl> [--window N] [--tol PCT]
                             [--explain]
        Gate the newest point of every (kind, scale, scenario, seed,
        threads) series in an append-only TREND_*.jsonl file against the
        median of its trailing window. Orientation-aware: events_per_sec
        regresses downward, oracle \"*_worst\" utilizations regress
        upward; wall-clock and raw counts are informational. Series with
        fewer than 2 prior points report `building` and never fail.
        Exits non-zero on any regression beyond tolerance.
        --window N  trailing points the median spans (default 5)
        --tol PCT   override the per-scenario tolerance table (tight for
                    deterministic scenarios, loose for seed-realized
                    random families) with one percentage for everything
        --explain   print, per finding, which tolerance fired and the
                    historical window values it was judged against
    gcs-scenarios bench-compare [--subset] <baseline.json> <current.json>
        Gate the deterministic engine counters (events, ticks,
        mode_evaluations, messages_delivered) of a fresh
        gcs-engine-bench/v1 artifact EXACTLY against a checked-in one,
        matched by (scenario, seed, threads). Wall-clock is never gated.
        Exits non-zero on any counter mismatch or entry-set change.
        --subset  only gate baseline rows the current artifact also ran
                  (for partial CI reruns); fails if nothing overlaps.
    gcs-scenarios export <dir>
        Write every built-in scenario to <dir>/<name>.scn.
    gcs-scenarios baseline <campaign.json> [--out FILE]
        Distill a gcs-campaign/v1 artifact into a compact gcs-baseline/v2
        summary (per-scenario mean/p90 skews, stabilization time, and
        trajectory envelopes: peak time + growth/recovery slopes), embed
        the default per-scenario tolerance table (tight for deterministic
        topologies, loose for seed-realized random families), and write
        it to FILE (default: stdout). Check the summary in to pin the
        current behaviour; hand-tune tolerances in the file if needed.
    gcs-scenarios compare <baseline> <campaign.json>... [--tol PCT]
        Diff a fresh campaign against a baseline (gcs-baseline/v2, legacy
        v1, or a raw gcs-campaign/v1 artifact) and exit non-zero on any
        per-scenario drift beyond the scenario's tolerance — its override
        from the baseline's tolerance table when present, else PCT
        percent (default 20). With several campaign files (e.g. an
        unexpanded results/campaign_*.json glob) the newest is compared.
        The CI regression gate.

SELECTIONS
    Where a command takes a [selection], it accepts a .scn file path or a
    comma list of built-in scenario names and sets: `all` (whole
    registry), `campaign` (statistics tier), `bench` (engine-scale tier),
    `fault-heavy` (every scenario with faults or dynamic topology).
    A name that matches nothing is a hard error, never an empty sweep.

EXIT CODES
    0  success
    1  generic error (bad arguments, I/O, gate failure)
    3  trace divergence (trace-diff, replay)
    4  chaos-search found a schedule exceeding a paper bound
";

/// A command failure with a documented process exit code: 1 = generic
/// error, 3 = trace divergence (`trace-diff`, `replay`), 4 = a
/// chaos-search candidate broke a paper bound.
struct Failure {
    code: u8,
    msg: String,
}

impl Failure {
    /// Exit code for a trace divergence.
    const DIVERGED: u8 = 3;
    /// Exit code for a found conformance violation.
    const VIOLATION: u8 = 4;

    fn at(code: u8, msg: impl Into<String>) -> Self {
        Failure {
            code,
            msg: msg.into(),
        }
    }
}

impl From<String> for Failure {
    fn from(msg: String) -> Self {
        Failure { code: 1, msg }
    }
}

impl From<&str> for Failure {
    fn from(msg: &str) -> Self {
        Failure {
            code: 1,
            msg: msg.to_string(),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result: Result<(), Failure> = match args.first().map(String::as_str) {
        Some("list") => cmd_list().map_err(Failure::from),
        Some("show") => cmd_show(&args[1..]).map_err(Failure::from),
        Some("validate") => cmd_validate(&args[1..]).map_err(Failure::from),
        Some("run") => cmd_run(&args[1..]).map_err(Failure::from),
        Some("bench") => cmd_bench(&args[1..]).map_err(Failure::from),
        Some("bench-compare") => cmd_bench_compare(&args[1..]).map_err(Failure::from),
        Some("trace") => cmd_trace(&args[1..]).map_err(Failure::from),
        Some("node-smoke") => cmd_node_smoke(&args[1..]).map_err(Failure::from),
        Some("trace-diff") => cmd_trace_diff(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("chaos-search") => cmd_chaos_search(&args[1..]),
        Some("conformance") => cmd_conformance(&args[1..]).map_err(Failure::from),
        Some("trend-append") => cmd_trend_append(&args[1..]).map_err(Failure::from),
        Some("trend-gate") => cmd_trend_gate(&args[1..]).map_err(Failure::from),
        Some("export") => cmd_export(&args[1..]).map_err(Failure::from),
        Some("baseline") => cmd_baseline(&args[1..]).map_err(Failure::from),
        Some("compare") => cmd_compare(&args[1..]).map_err(Failure::from),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(Failure::from(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(f) => {
            eprintln!("error: {}", f.msg);
            ExitCode::from(f.code)
        }
    }
}

fn cmd_list() -> Result<(), String> {
    let specs = registry::all();
    println!("{} built-in scenarios:\n", specs.len());
    println!(
        "{:<18} {:>5}  {:<22} {:<10} {:<17} description",
        "name", "nodes", "topology", "dynamics", "metric"
    );
    for s in &specs {
        println!(
            "{:<18} {:>5}  {:<22} {:<10} {:<17} {}",
            s.name,
            s.topology.node_count(),
            format!("{} ", s.topology.family()),
            s.dynamics.kind(),
            s.metric.token(),
            s.description
        );
    }
    Ok(())
}

fn cmd_show(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("show needs a scenario name")?;
    let spec = registry::find(name)
        .ok_or_else(|| format!("no built-in scenario {name:?} (try `gcs-scenarios list`)"))?;
    print!("{}", format::write(&spec));
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let dir = args.first().ok_or("validate needs a directory")?;
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "scn"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .scn files in {dir}"));
    }
    let mut names = std::collections::BTreeSet::new();
    let mut failures = 0usize;
    for path in &files {
        match validate_file(path) {
            Ok(spec) => {
                if !names.insert(spec.name.clone()) {
                    eprintln!(
                        "FAIL {}: duplicate scenario name {:?}",
                        path.display(),
                        spec.name
                    );
                    failures += 1;
                } else {
                    println!("ok   {} ({})", path.display(), spec.name);
                }
            }
            Err(msg) => {
                eprintln!("FAIL {}: {msg}", path.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        return Err(format!("{failures} of {} file(s) failed", files.len()));
    }
    println!("all {} scenario file(s) valid", files.len());
    Ok(())
}

fn validate_file(path: &Path) -> Result<ScenarioSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let spec = format::parse(&text).map_err(|e| e.to_string())?;
    spec.validate().map_err(|e| e.to_string())?;
    // The repo keeps scenario files in canonical form so diffs stay
    // meaningful; `gcs-scenarios export` regenerates them.
    let canonical = format::write(&spec);
    if canonical != text {
        return Err(
            "file is not in canonical form (regenerate with `gcs-scenarios export`)".to_string(),
        );
    }
    // A spec that parses but cannot build is rot; seed 0 stands in for all.
    spec.build(0).map_err(|e| format!("build(0): {e}"))?;
    Ok(spec)
}

/// Parses the value of a positive-integer flag (`--seeds N`, `--repeat R`).
fn positive_flag(args: &[String], i: usize, flag: &str) -> Result<u64, String> {
    args.get(i + 1)
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("{flag} needs a positive integer"))
}

/// Parses the value of a `--scale` flag.
fn scale_flag(args: &[String], i: usize) -> Result<Scale, String> {
    args.get(i + 1)
        .and_then(|v| Scale::parse(v))
        .ok_or_else(|| "--scale needs tiny|default|full".to_string())
}

/// Parses the value of a `--out` flag.
fn out_flag(args: &[String], i: usize, what: &str) -> Result<PathBuf, String> {
    Ok(PathBuf::from(
        args.get(i + 1)
            .ok_or_else(|| format!("--out needs a {what}"))?,
    ))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let target = args
        .first()
        .ok_or("run needs a scenario name, .scn file, or `all`")?;
    let mut seeds_n = 4u64;
    let mut scale = Scale::Default;
    let mut out_dir = PathBuf::from("results");
    let mut progress = false;
    let mut telemetry_out: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                seeds_n = positive_flag(args, i, "--seeds")?;
                i += 2;
            }
            "--scale" => {
                scale = scale_flag(args, i)?;
                i += 2;
            }
            "--out" => {
                out_dir = out_flag(args, i, "directory")?;
                i += 2;
            }
            "--progress" => {
                progress = true;
                i += 1;
            }
            "--telemetry" => {
                telemetry_out = Some(
                    args.get(i + 1)
                        .map(PathBuf::from)
                        .ok_or("--telemetry needs a file")?,
                );
                i += 2;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }

    // `run all` sweeps the campaign set: the bench-class engine-scale
    // scenarios would dwarf the statistics runs and are not pinned by the
    // baseline (they run by name or via `bench`).
    let (title, specs) = if target == "all" {
        ("all".to_string(), registry::campaign())
    } else {
        resolve_specs(target)?
    };
    let specs: Vec<ScenarioSpec> = specs.iter().map(|s| s.scaled(scale)).collect();
    let seeds: Vec<u64> = (0..seeds_n).collect();
    println!(
        "campaign {title:?}: {} scenario(s) x {} seed(s), scale {}",
        specs.len(),
        seeds.len(),
        scale.name()
    );

    let started = std::time::Instant::now();
    let rows = if progress {
        campaign::run_campaign_progress(&specs, &seeds, |spec, seed, result| match result {
            Ok(o) => println!(
                "done {:<18} seed {:>3}: {} {:.6} ({} events)",
                spec.name,
                seed,
                spec.metric.token(),
                o.primary,
                o.events
            ),
            Err(e) => println!("FAIL {:<18} seed {:>3}: {e}", spec.name, seed),
        })
    } else {
        campaign::run_campaign(&specs, &seeds)
    }
    .map_err(|e| e.to_string())?;
    println!(
        "\n{:<18} {:>5} {:<17} {:>10} {:>10} {:>10} {:>10} {:>10} {:>6} {:>11} {:>8} {:>11} {:>11}",
        "scenario",
        "nodes",
        "metric",
        "mean",
        "stddev",
        "p10",
        "p90",
        "max",
        "viol",
        "events",
        "ticks",
        "evals",
        "delivered"
    );
    for r in &rows {
        let sum = |f: fn(&campaign::ScenarioOutcome) -> u64| r.outcomes.iter().map(f).sum::<u64>();
        println!(
            "{:<18} {:>5} {:<17} {:>10.6} {:>10.6} {:>10.6} {:>10.6} {:>10.6} {:>6} {:>11} {:>8} {:>11} {:>11}",
            r.name,
            r.nodes,
            r.metric.token(),
            r.stats.mean,
            r.stats.stddev,
            r.stats.p10,
            r.stats.p90,
            r.stats.max,
            sum(|o| o.invariant_violations),
            sum(|o| o.events),
            sum(|o| o.ticks),
            sum(|o| o.mode_evaluations),
            sum(|o| o.messages_delivered)
        );
    }
    let path = campaign::write_campaign(&out_dir, &title, scale, &seeds, &rows)
        .map_err(|e| format!("cannot write artifact: {e}"))?;
    println!(
        "\n{} run(s) in {:.1}s; wrote {}",
        rows.len() * seeds.len(),
        started.elapsed().as_secs_f64(),
        path.display()
    );
    if let Some(tpath) = telemetry_out {
        write_instrumented(&tpath, &specs, &seeds, scale, None)?;
    }
    Ok(())
}

/// Drives every scenario × seed instrumented on the sequential engine and
/// writes the `gcs-telemetry/v1` artifact (shared by `run --telemetry`
/// and `conformance --telemetry`; the latter passes its
/// [`ConformanceOptions`] so the oracle rides along — in the same
/// exact/sampled mode as the gate itself — and the artifact carries the
/// bound-margin series).
fn write_instrumented(
    path: &Path,
    specs: &[ScenarioSpec],
    seeds: &[u64],
    scale: Scale,
    oracle: Option<&ConformanceOptions>,
) -> Result<(), String> {
    let mut runs = Vec::with_capacity(specs.len() * seeds.len());
    for spec in specs {
        for &seed in seeds {
            let ride = match oracle {
                None => OracleRide::Off,
                Some(opts) => match opts.sampling_for(seed) {
                    Some(sampling) => OracleRide::Sampled(sampling),
                    None => OracleRide::Exact,
                },
            };
            runs.push(
                telemetry::run_instrumented_oracle(spec, seed, 1, false, ride)
                    .map_err(|e| e.to_string())?,
            );
        }
    }
    telemetry::write_telemetry(path, scale, &runs)
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!(
        "wrote {} ({} instrumented run(s))",
        path.display(),
        runs.len()
    );
    Ok(())
}

/// Runs the engine-throughput benchmark and writes `BENCH_engine.json`.
fn cmd_bench(args: &[String]) -> Result<(), String> {
    let mut target = "all".to_string();
    let mut seeds_n = 1u64;
    let mut repeat = 1u32;
    let mut scale = Scale::Default;
    let mut threads: Vec<usize> = vec![1];
    let mut out = PathBuf::from("results/BENCH_engine.json");
    let mut telemetry_out: Option<PathBuf> = None;
    let mut trend_out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trend" => {
                trend_out = Some(
                    args.get(i + 1)
                        .map(PathBuf::from)
                        .ok_or("--trend needs a file")?,
                );
                i += 2;
            }
            "--threads" => {
                let raw = args
                    .get(i + 1)
                    .ok_or_else(|| "--threads needs a comma list, e.g. 1,2,4".to_string())?;
                threads = raw
                    .split(',')
                    .map(|p| match p.trim().parse::<usize>() {
                        Ok(t) if t > 0 => Ok(t),
                        _ => Err(format!("--threads: {p:?} is not a positive integer")),
                    })
                    .collect::<Result<_, _>>()?;
                i += 2;
            }
            "--repeat" => {
                repeat = u32::try_from(positive_flag(args, i, "--repeat")?)
                    .map_err(|_| "--repeat is out of range".to_string())?;
                i += 2;
            }
            "--seeds" => {
                seeds_n = positive_flag(args, i, "--seeds")?;
                i += 2;
            }
            "--scale" => {
                scale = scale_flag(args, i)?;
                i += 2;
            }
            "--out" => {
                out = out_flag(args, i, "file")?;
                i += 2;
            }
            "--telemetry" => {
                telemetry_out = Some(
                    args.get(i + 1)
                        .map(PathBuf::from)
                        .ok_or("--telemetry needs a file")?,
                );
                i += 2;
            }
            other if other.starts_with("--") => return Err(format!("unknown option {other:?}")),
            other => {
                target = other.to_string();
                i += 1;
            }
        }
    }
    let (title, specs) = resolve_specs(&target)?;
    let specs: Vec<ScenarioSpec> = specs.iter().map(|s| s.scaled(scale)).collect();
    let seeds: Vec<u64> = (0..seeds_n).collect();
    println!(
        "engine bench {title:?}: {} scenario(s) x {} seed(s) x threads {:?}, scale {}",
        specs.len(),
        seeds.len(),
        threads,
        scale.name()
    );
    let entries = gcs_scenarios::bench::run_suite(&specs, &seeds, &threads, repeat)
        .map_err(|e| e.to_string())?;
    println!(
        "\n{:<18} {:>6} {:>5} {:>4} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "scenario", "nodes", "seed", "thr", "wall s", "events", "events/sec", "ticks", "evals"
    );
    for e in &entries {
        println!(
            "{:<18} {:>6} {:>5} {:>4} {:>10.3} {:>12} {:>12.0} {:>10} {:>10}",
            e.scenario,
            e.nodes,
            e.seed,
            e.threads,
            e.wall_secs,
            e.events,
            e.events_per_sec,
            e.ticks,
            e.mode_evaluations
        );
    }
    gcs_scenarios::bench::write_bench(&out, scale, &seeds, &entries)
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!("\nwrote {}", out.display());
    if let Some(tpath) = trend_out {
        let when = now_millis();
        let points: Vec<trendseries::TrendPoint> = entries
            .iter()
            .map(|e| trendseries::point_from_bench(&when, scale.name(), e))
            .collect();
        trendseries::append_points(&tpath, &points)
            .map_err(|e| format!("cannot append to {}: {e}", tpath.display()))?;
        println!(
            "appended {} trend point(s) to {}",
            points.len(),
            tpath.display()
        );
    }
    if let Some(tpath) = telemetry_out {
        // Re-drive every timed entry with the sink attached. The
        // instrumented counters must be IDENTICAL to the timed pass:
        // telemetry observes the run, it must never change it.
        let mut runs = Vec::with_capacity(entries.len());
        for e in &entries {
            let spec = specs.iter().find(|s| s.name == e.scenario).ok_or_else(|| {
                format!(
                    "bench entry {:?} (seed {}, threads {}) does not match any resolved \
                     scenario — the timed sweep and the telemetry re-drive must run the \
                     same selection",
                    e.scenario, e.seed, e.threads
                )
            })?;
            let inst = telemetry::bench_instrumented(spec, e.seed, e.threads)
                .map_err(|x| x.to_string())?;
            if (
                inst.stats.events,
                inst.stats.ticks,
                inst.stats.mode_evaluations,
                inst.stats.messages_delivered,
            ) != (e.events, e.ticks, e.mode_evaluations, e.messages_delivered)
            {
                return Err(format!(
                    "instrumentation drift: {} seed {} threads {}: the instrumented run's \
                     deterministic counters diverged from the timed run",
                    e.scenario, e.seed, e.threads
                ));
            }
            runs.push(inst);
        }
        telemetry::write_telemetry(&tpath, scale, &runs)
            .map_err(|e| format!("cannot write {}: {e}", tpath.display()))?;
        println!(
            "wrote {} ({} instrumented run(s), zero counter drift vs the timed suite)",
            tpath.display(),
            runs.len()
        );
    }
    Ok(())
}

/// Gates the deterministic engine counters of two bench artifacts.
fn cmd_bench_compare(args: &[String]) -> Result<(), String> {
    let mut subset = false;
    let mut paths: Vec<&String> = Vec::new();
    for a in args {
        if a == "--subset" {
            subset = true;
        } else if a.starts_with("--") {
            return Err(format!("unknown option {a:?}"));
        } else {
            paths.push(a);
        }
    }
    let [baseline_path, current_path] = paths[..] else {
        return Err(
            "bench-compare needs exactly [--subset] <baseline.json> <current.json>".to_string(),
        );
    };
    let read = |path: &str| -> Result<gcs_scenarios::BenchArtifact, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        gcs_scenarios::bench::read_bench(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = read(baseline_path)?;
    let current = read(current_path)?;
    let report = gcs_scenarios::bench::compare_counters(&baseline, &current, subset);
    println!("{}", report.table);
    if report.passed() {
        println!(
            "ok: {} entr(ies) counter-identical to {baseline_path}{}",
            current.entries.len(),
            if subset { " (subset gate)" } else { "" }
        );
        Ok(())
    } else {
        for f in &report.findings {
            if f.baseline == u64::MAX {
                eprintln!(
                    "MISMATCH {} seed {} threads {}: {}",
                    f.scenario, f.seed, f.threads, f.counter
                );
            } else {
                eprintln!(
                    "MISMATCH {} seed {} threads {}: {} {} -> {}",
                    f.scenario, f.seed, f.threads, f.counter, f.baseline, f.current
                );
            }
        }
        Err(format!(
            "{} counter mismatch(es) — the engine's deterministic behaviour changed; \
             refresh the checked-in BENCH artifact if this is intentional",
            report.findings.len()
        ))
    }
}

/// Emits the deterministic `gcs-trace/v1` run log for one scenario.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    let target = args
        .first()
        .ok_or("trace needs a scenario name or .scn file")?;
    let mut seed = 0u64;
    let mut threads = 1usize;
    let mut scale = Scale::Tiny;
    let mut out: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a non-negative integer")?;
                i += 2;
            }
            "--threads" => {
                threads = usize::try_from(positive_flag(args, i, "--threads")?)
                    .map_err(|_| "--threads is out of range".to_string())?;
                i += 2;
            }
            "--scale" => {
                scale = scale_flag(args, i)?;
                i += 2;
            }
            "--out" => {
                out = Some(out_flag(args, i, "file")?);
                i += 2;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if target == "all" {
        return Err("trace runs exactly one scenario (a name or a .scn file)".to_string());
    }
    let (_, specs) = resolve_specs(target)?;
    let spec = specs[0].scaled(scale);
    let run = telemetry::run_instrumented(&spec, seed, threads, true, false)
        .map_err(|e| e.to_string())?;
    let trace = run.telemetry.trace.as_ref().ok_or_else(|| {
        format!(
            "instrumented run of {:?} (seed {seed}) produced no trace even though \
             tracing was requested — the telemetry sink dropped its run log",
            spec.name
        )
    })?;
    match out {
        Some(path) => {
            telemetry::write_trace(&path, trace)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!(
                "wrote {} ({} record(s), {}, engine {})",
                path.display(),
                trace.records,
                trace.hash_hex(),
                run.engine
            );
        }
        None => {
            // Trace to stdout, summary to stderr, so the JSONL pipes clean.
            print!("{}", trace.text);
            eprintln!(
                "{} record(s), {}, engine {}",
                trace.records,
                trace.hash_hex(),
                run.engine
            );
        }
    }
    Ok(())
}

/// Extrapolation slack for the node-smoke skew check, in seconds: status
/// lines are timestamped when the harness *reads* them, so pipe and
/// scheduler latency between a daemon's print and our receipt shifts each
/// node's reading by up to this much under load.
const NODE_SMOKE_SLACK: f64 = 0.025;

/// One parsed daemon `status` line, stamped with the harness wall-clock
/// instant it arrived.
struct NodeStatus {
    wall: f64,
    logical: f64,
    peers_heard: usize,
}

fn parse_status_line(wall: f64, line: &str) -> Option<(u64, NodeStatus)> {
    let mut id = None;
    let mut logical = None;
    let mut peers_heard = None;
    for field in line.strip_prefix("status ")?.split_whitespace() {
        let (key, value) = field.split_once('=')?;
        match key {
            "id" => id = value.parse().ok(),
            "logical" => logical = value.parse().ok(),
            "peers_heard" => peers_heard = value.parse().ok(),
            _ => {}
        }
    }
    Some((
        id?,
        NodeStatus {
            wall,
            logical: logical?,
            peers_heard: peers_heard?,
        },
    ))
}

/// One spawned `gcs-node` process: the child, its bound address, the
/// stdout collector, and every line it has printed (harness-stamped).
struct Daemon {
    child: Child,
    addr: String,
    lines: Arc<Mutex<Vec<(f64, String)>>>,
    reader: Option<std::thread::JoinHandle<()>>,
}

fn spawn_daemon(
    bin: &Path,
    start: Instant,
    first: u64,
    count: u64,
    total: u64,
    refresh: f64,
    peers: &[String],
) -> Result<Daemon, String> {
    let mut cmd = Command::new(bin);
    cmd.arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--first")
        .arg(first.to_string())
        .arg("--count")
        .arg(count.to_string())
        .arg("--total")
        .arg(total.to_string())
        .arg("--refresh")
        .arg(refresh.to_string())
        .arg("--status-every")
        .arg("0.1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if !peers.is_empty() {
        cmd.arg("--peers").arg(peers.join(","));
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", bin.display()))?;
    let stdout = child
        .stdout
        .take()
        .ok_or("daemon stdout was not captured")?;
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("cannot read the daemon's announce line: {e}"))?;
    let addr = line
        .trim()
        .strip_prefix("listening ")
        .ok_or_else(|| {
            format!(
                "daemon hosting IDs [{first}, {}) did not announce a listening \
                 address (got {:?})",
                first + count,
                line.trim()
            )
        })?
        .to_string();
    let lines = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&lines);
    let handle = std::thread::spawn(move || {
        let mut buf = String::new();
        loop {
            buf.clear();
            match reader.read_line(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    let wall = start.elapsed().as_secs_f64();
                    if let Ok(mut v) = sink.lock() {
                        v.push((wall, buf.trim().to_string()));
                    }
                }
            }
        }
    });
    Ok(Daemon {
        child,
        addr,
        lines,
        reader: Some(handle),
    })
}

/// Polls `try_wait` until the child exits or the deadline passes.
fn wait_until(child: &mut Child, deadline: Instant) -> Result<Option<ExitStatus>, String> {
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return Ok(Some(status)),
            Ok(None) if Instant::now() >= deadline => return Ok(None),
            Ok(None) => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => return Err(format!("cannot wait for a daemon: {e}")),
        }
    }
}

fn cmd_node_smoke(args: &[String]) -> Result<(), String> {
    let mut procs = 3u64;
    let mut per_proc = 2u64;
    let mut secs = 4.0f64;
    let mut refresh = 0.2f64;
    let mut i = 0;
    while i < args.len() {
        let float = |args: &[String], i: usize, flag: &str| -> Result<f64, String> {
            let v: f64 = args
                .get(i + 1)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("{flag} needs a number"))?;
            if v.is_finite() && v > 0.0 {
                Ok(v)
            } else {
                Err(format!("{flag} must be a positive finite number"))
            }
        };
        match args[i].as_str() {
            "--procs" => procs = positive_flag(args, i, "--procs")?,
            "--per-proc" => per_proc = positive_flag(args, i, "--per-proc")?,
            "--secs" => secs = float(args, i, "--secs")?,
            "--refresh" => refresh = float(args, i, "--refresh")?,
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 2;
    }
    if procs < 2 {
        return Err("node-smoke needs at least 2 daemon processes".to_string());
    }
    let total = procs * per_proc;

    let bin = std::env::current_exe()
        .map_err(|e| format!("cannot locate this executable: {e}"))?
        .parent()
        .ok_or("this executable has no parent directory")?
        .join("gcs-node");
    if !bin.exists() {
        return Err(format!(
            "gcs-node binary not found at {} — build it first (`cargo build --bin gcs-node`)",
            bin.display()
        ));
    }

    // The Theorem 5.22 envelope for the cluster the daemons will derive:
    // same base parameters, same complete-graph universe, same
    // derivation (`derive_run_config`), so the oracle bound and the
    // daemons' runtime constants cannot drift apart. Every pair in a
    // complete graph is one hop, so the pairwise bound is evaluated at
    // the single-edge path weight.
    let node = |id: u64| NodeId(u32::try_from(id).unwrap_or(u32::MAX));
    let base = Params::builder()
        .rho(1e-3)
        .mu(0.1)
        .refresh_period(refresh)
        .build()
        .map_err(|e| format!("invalid parameters: {e}"))?;
    let edge = EdgeParams::try_new(1e-3, 0.05, 0.0, 0.05)
        .map_err(|e| format!("invalid edge parameters: {e}"))?;
    let edge_params = EdgeParamsMap::uniform(edge);
    let mut universe = Vec::new();
    for a in 0..total {
        for b in (a + 1)..total {
            universe.push(EdgeKey::new(node(a), node(b)));
        }
    }
    let cfg = derive_run_config(
        &base,
        EstimateMode::Messages,
        &edge_params,
        &universe,
        usize::try_from(total).map_err(|_| "--procs x --per-proc is out of range".to_string())?,
    );
    let g_hat = cfg
        .params
        .g_tilde()
        .ok_or("the derived run configuration is missing G-tilde")?;
    let kappa = cfg
        .edge_info
        .values()
        .map(|e| e.kappa)
        .fold(0.0f64, f64::max);
    let envelope = gcs_analysis::gradient_bound(&cfg.params, g_hat, kappa);

    // Spawn the cluster: each daemon dials every earlier one, which wires
    // the complete process graph (connections are used in both
    // directions). If this harness dies early, the daemons' stdin pipes
    // close and they shut themselves down — no orphans.
    let start = Instant::now();
    let mut daemons: Vec<Daemon> = Vec::new();
    let mut addrs: Vec<String> = Vec::new();
    for p in 0..procs {
        let d = spawn_daemon(&bin, start, p * per_proc, per_proc, total, refresh, &addrs)?;
        addrs.push(d.addr.clone());
        daemons.push(d);
    }
    println!(
        "node-smoke: {procs} daemon(s) x {per_proc} node(s) = {total} nodes on {}",
        addrs.join(" ")
    );
    std::thread::sleep(Duration::from_secs_f64(secs));

    // Graceful path: close stdin on all daemons but the last — EOF is
    // the documented shutdown request, and their SHUTDOWN broadcast must
    // not take the SIGTERM target down before we signal it.
    let last = daemons.len() - 1;
    let term_pid = daemons[last].child.id();
    let term = Command::new("kill")
        .args(["-TERM", &term_pid.to_string()])
        .status()
        .map_err(|e| format!("cannot send SIGTERM: {e}"))?;
    if !term.success() {
        return Err(format!("kill -TERM {term_pid} failed: {term}"));
    }
    let hard_stop = wait_until(
        &mut daemons[last].child,
        Instant::now() + Duration::from_secs(2),
    )?
    .ok_or("the SIGTERM'd daemon did not stop within 2s")?;
    if hard_stop.success() {
        return Err("the SIGTERM'd daemon reported success instead of dying by signal".to_string());
    }
    for d in &mut daemons[..last] {
        drop(d.child.stdin.take());
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    for (p, d) in daemons[..last].iter_mut().enumerate() {
        let status = wait_until(&mut d.child, deadline)?
            .ok_or_else(|| format!("daemon {p} did not exit within 5s of stdin EOF"))?;
        if status.code() != Some(0) {
            return Err(format!("daemon {p} exited with {status} instead of code 0"));
        }
    }
    for d in &mut daemons {
        if let Some(handle) = d.reader.take() {
            let _ = handle.join();
        }
    }

    // Analysis: the newest status per node, plus each graceful daemon's
    // shutdown marker.
    let mut latest: std::collections::BTreeMap<u64, NodeStatus> = std::collections::BTreeMap::new();
    for (p, d) in daemons.iter().enumerate() {
        let lines = d
            .lines
            .lock()
            .map_err(|_| "a status collector thread panicked".to_string())?;
        let clean = lines.iter().any(|(_, l)| l == "shutdown clean");
        if p != last && !clean {
            return Err(format!(
                "daemon {p} exited without printing `shutdown clean`"
            ));
        }
        for (wall, line) in lines.iter() {
            if let Some((id, st)) = parse_status_line(*wall, line) {
                latest.insert(id, st);
            }
        }
    }
    for id in 0..total {
        let st = latest
            .get(&id)
            .ok_or_else(|| format!("node {id} never reported a status line"))?;
        let expected = usize::try_from(total - 1).unwrap_or(usize::MAX);
        if st.peers_heard != expected {
            return Err(format!(
                "node {id} heard {} of {expected} peers — the mesh never completed",
                st.peers_heard
            ));
        }
    }

    // Skew: extrapolate every node's newest logical reading to the
    // newest sample instant (hardware rates are within rho of 1, so the
    // extrapolation error over a <=0.2s status gap is sub-microsecond)
    // and compare the spread against the Theorem 5.22 pairwise bound.
    let t_ref = latest
        .values()
        .map(|s| s.wall)
        .fold(f64::NEG_INFINITY, f64::max);
    let adjusted: Vec<f64> = latest
        .values()
        .map(|s| s.logical + (t_ref - s.wall))
        .collect();
    let skew = adjusted.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b))
        - adjusted.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    let allowed = envelope + NODE_SMOKE_SLACK;
    if skew > allowed {
        return Err(format!(
            "observed logical skew {skew:.6}s exceeds the Theorem 5.22 envelope \
             {envelope:.6}s (+{NODE_SMOKE_SLACK}s measurement slack)"
        ));
    }
    println!(
        "node-smoke: skew {skew:.6}s within the Thm 5.22 envelope {envelope:.6}s \
         (+{NODE_SMOKE_SLACK}s slack); {last} graceful exit(s) clean, SIGTERM stopped pid \
         {term_pid} promptly"
    );
    Ok(())
}

/// Renders a first-divergence record as the stable machine-readable JSON
/// line `trace-diff` and `replay` print to stdout: 1-based line number
/// plus both records verbatim (`null` when one trace ended early).
fn divergence_json(d: &gcs_telemetry::TraceDiff) -> String {
    let side = |s: &Option<String>| s.clone().map_or(Json::Null, Json::Str);
    Json::Obj(vec![
        ("rec", Json::Str("divergence".to_string())),
        ("line", Json::Int(d.line as u64)),
        ("a", side(&d.a)),
        ("b", side(&d.b)),
    ])
    .to_string()
}

/// Verifies and byte-compares two sealed traces.
fn cmd_trace_diff(args: &[String]) -> Result<(), Failure> {
    let [a_path, b_path] = args else {
        return Err("trace-diff needs exactly <a.jsonl> <b.jsonl>"
            .to_string()
            .into());
    };
    let read = |p: &String| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
    let a = read(a_path)?;
    let b = read(b_path)?;
    // Verify both seals first: a diff of tampered traces proves nothing.
    let (records, hash) = gcs_telemetry::verify_trace(&a).map_err(|e| format!("{a_path}: {e}"))?;
    gcs_telemetry::verify_trace(&b).map_err(|e| format!("{b_path}: {e}"))?;
    match gcs_telemetry::trace_diff(&a, &b) {
        None => {
            println!("identical: {records} record(s), {hash}");
            Ok(())
        }
        Some(d) => {
            // Machine-readable record on stdout, human summary on stderr.
            println!("{}", divergence_json(&d));
            Err(Failure::at(
                Failure::DIVERGED,
                format!("traces diverge at line {}", d.line),
            ))
        }
    }
}

/// Re-materializes a run from a sealed trace artifact and asserts
/// bit-identity.
fn cmd_replay(args: &[String]) -> Result<(), Failure> {
    let path = args
        .first()
        .ok_or_else(|| "replay needs a gcs-trace/v1 artifact".to_string())?;
    let mut threads = 1usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                threads = usize::try_from(positive_flag(args, i, "--threads")?)
                    .map_err(|_| "--threads is out of range".to_string())?;
                i += 2;
            }
            other => return Err(format!("unknown option {other:?}").into()),
        }
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let outcome = gcs_scenarios::replay_trace(&text, threads).map_err(|e| e.to_string())?;
    let a = &outcome.artifact;
    match &outcome.divergence {
        None => {
            println!(
                "replay identical: {} seed {} ({} node(s)), {} record(s), {}, {} thread(s)",
                a.scenario, a.seed, a.nodes, a.records, a.hash, outcome.threads
            );
            Ok(())
        }
        Some(d) => {
            println!("{}", divergence_json(d));
            Err(Failure::at(
                Failure::DIVERGED,
                format!(
                    "replay of {} seed {} diverges at line {} (original {}, replayed {})",
                    a.scenario, a.seed, d.line, a.hash, outcome.replayed_hash
                ),
            ))
        }
    }
}

/// Seeded adversarial fault-schedule search over one base scenario.
fn cmd_chaos_search(args: &[String]) -> Result<(), Failure> {
    let target = args
        .first()
        .ok_or_else(|| "chaos-search needs a scenario name or .scn file".to_string())?;
    let mut opts = gcs_scenarios::ChaosOptions::default();
    let mut seeds_n = 1u64;
    let mut scale = Scale::Default;
    let mut log_out: Option<PathBuf> = None;
    let mut resume: Option<PathBuf> = None;
    let mut export: Option<PathBuf> = None;
    let mut rename: Option<String> = None;
    let mut trend_out: Option<PathBuf> = None;
    let mut violation_out = PathBuf::from("results/CHAOS_violation.jsonl");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                opts.seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a non-negative integer")?;
                i += 2;
            }
            "--budget" => {
                opts.budget = u32::try_from(positive_flag(args, i, "--budget")?)
                    .map_err(|_| "--budget is out of range".to_string())?;
                i += 2;
            }
            "--seeds" => {
                seeds_n = positive_flag(args, i, "--seeds")?;
                i += 2;
            }
            "--scale" => {
                scale = scale_flag(args, i)?;
                i += 2;
            }
            "--threads" => {
                opts.threads = usize::try_from(positive_flag(args, i, "--threads")?)
                    .map_err(|_| "--threads is out of range".to_string())?;
                i += 2;
            }
            "--log" => {
                log_out = Some(out_flag(args, i, "file")?);
                i += 2;
            }
            "--resume" => {
                resume = Some(PathBuf::from(
                    args.get(i + 1).ok_or("--resume needs a file")?,
                ));
                i += 2;
            }
            "--export" => {
                export = Some(PathBuf::from(
                    args.get(i + 1).ok_or("--export needs a file")?,
                ));
                i += 2;
            }
            "--rename" => {
                rename = Some(args.get(i + 1).ok_or("--rename needs a name")?.clone());
                i += 2;
            }
            "--trend" => {
                trend_out = Some(PathBuf::from(
                    args.get(i + 1).ok_or("--trend needs a file")?,
                ));
                i += 2;
            }
            "--violation-out" => {
                violation_out =
                    PathBuf::from(args.get(i + 1).ok_or("--violation-out needs a file")?);
                i += 2;
            }
            other => return Err(format!("unknown option {other:?}").into()),
        }
    }
    opts.run_seeds = (0..seeds_n).collect();
    if target == "all" {
        return Err(
            "chaos-search attacks exactly one scenario (a name or a .scn file)"
                .to_string()
                .into(),
        );
    }
    let (_, specs) = resolve_specs(target)?;
    let base = match &resume {
        Some(log_path) => {
            let text = std::fs::read_to_string(log_path)
                .map_err(|e| format!("cannot read {}: {e}", log_path.display()))?;
            let frontier = gcs_scenarios::frontier_from_log(&text).map_err(|e| e.to_string())?;
            println!(
                "resuming from the frontier of {} ({})",
                log_path.display(),
                frontier.name
            );
            frontier
        }
        None => specs[0].scaled(scale),
    };
    println!(
        "chaos-search {:?}: seed {}, budget {}, {} run seed(s), scale {}, objective = worst \
         conformance-margin utilization",
        base.name,
        opts.seed,
        opts.budget,
        opts.run_seeds.len(),
        scale.name()
    );
    let started = std::time::Instant::now();
    let result = gcs_scenarios::chaos_search(&base, &opts).map_err(|e| e.to_string())?;
    println!(
        "evaluated {} candidate(s) ({} envelope-violating draw(s) skipped) in {:.1}s",
        result.evaluated,
        result.skipped,
        started.elapsed().as_secs_f64()
    );
    println!(
        "best: iter {} ({}), {} utilization {:.1}% at run seed {}",
        result.best.iter,
        result.best.op,
        result.best.family,
        100.0 * result.best.utilization,
        result.best.run_seed
    );
    if let Some(path) = &log_out {
        write_text(path, &result.log)?;
        println!("wrote search log to {}", path.display());
    }
    if let Some(path) = &export {
        let mut spec = result.best.spec.clone();
        if let Some(name) = &rename {
            spec.name.clone_from(name);
        }
        spec.validate().map_err(|e| e.to_string())?;
        write_text(path, &gcs_scenarios::format::write(&spec))?;
        println!(
            "exported best schedule as {} ({})",
            path.display(),
            spec.name
        );
    }
    if let Some(path) = &trend_out {
        let point = trendseries::TrendPoint {
            when: now_millis(),
            kind: "chaos".to_string(),
            scale: scale.name().to_string(),
            scenario: result.base.clone(),
            seed: opts.seed,
            threads: opts.threads.max(1) as u64,
            metrics: vec![
                ("best_util".to_string(), result.best.utilization),
                ("evaluated".to_string(), f64::from(result.evaluated)),
            ],
        };
        trendseries::append_points(path, &[point])
            .map_err(|e| format!("cannot append to {}: {e}", path.display()))?;
        println!("appended 1 trend point to {}", path.display());
    }
    match result.violation {
        None => {
            println!(
                "ok: best-found schedule stays within the paper bounds \
                 (frontier proves the base maximal within this budget when iter = 0)"
            );
            Ok(())
        }
        Some(v) => {
            write_text(&violation_out, &v.trace)?;
            for line in &v.violations {
                eprintln!("VIOLATION {}: {line}", v.candidate.spec.name);
            }
            Err(Failure::at(
                Failure::VIOLATION,
                format!(
                    "candidate {} exceeded a paper bound ({} utilization {:.1}%); replayable \
                     trace written to {} (verify with `gcs-scenarios replay`)",
                    v.candidate.iter,
                    v.candidate.family,
                    100.0 * v.candidate.utilization,
                    violation_out.display()
                ),
            ))
        }
    }
}

/// Writes text to a path, creating parent directories as needed.
fn write_text(path: &Path, text: &str) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Runs the conformance oracles over a scenario selection.
fn cmd_conformance(args: &[String]) -> Result<(), String> {
    let mut target = "all".to_string();
    let mut seeds_n = 2u64;
    let mut scale = Scale::Tiny;
    let mut progress = false;
    let mut opts = ConformanceOptions::default();
    let mut telemetry_out: Option<PathBuf> = None;
    let mut trend_out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                seeds_n = positive_flag(args, i, "--seeds")?;
                i += 2;
            }
            "--scale" => {
                scale = scale_flag(args, i)?;
                i += 2;
            }
            "--oracle-sample" => {
                let p: f64 = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|p: &f64| *p > 0.0 && *p <= 1.0)
                    .ok_or("--oracle-sample needs a rate in (0, 1]")?;
                opts.oracle_sample = Some(p);
                i += 2;
            }
            "--oracle-seed" => {
                opts.oracle_seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--oracle-seed needs a non-negative integer")?;
                i += 2;
            }
            "--threads" => {
                opts.threads = usize::try_from(positive_flag(args, i, "--threads")?)
                    .map_err(|_| "--threads is out of range".to_string())?;
                i += 2;
            }
            "--progress" => {
                progress = true;
                i += 1;
            }
            "--telemetry" => {
                telemetry_out = Some(
                    args.get(i + 1)
                        .map(PathBuf::from)
                        .ok_or("--telemetry needs a file")?,
                );
                i += 2;
            }
            "--trend" => {
                trend_out = Some(
                    args.get(i + 1)
                        .map(PathBuf::from)
                        .ok_or("--trend needs a file")?,
                );
                i += 2;
            }
            other if other.starts_with("--") => return Err(format!("unknown option {other:?}")),
            other => {
                target = other.to_string();
                i += 1;
            }
        }
    }
    let (title, specs) = resolve_specs(&target)?;
    let specs: Vec<ScenarioSpec> = specs.iter().map(|s| s.scaled(scale)).collect();
    let seeds: Vec<u64> = (0..seeds_n).collect();
    println!(
        "conformance {title:?}: {} scenario(s) x {} seed(s), scale {}, {} engine — checking \
         every sampled snapshot against the Theorem 5.6 / 5.22 bounds",
        specs.len(),
        seeds.len(),
        scale.name(),
        if opts.threads <= 1 {
            "sequential".to_string()
        } else {
            format!("{}-shard", opts.threads)
        }
    );
    if let Some(p) = opts.oracle_sample {
        // The escape bound is per snapshot and per pair: at rate p a
        // violating pair dodges one snapshot's stratified source draw with
        // probability at most (1-p)^2 — and sampled checks are a strict
        // subset of the exact sweep, so a sampled alarm is never false.
        println!(
            "sampled oracle: source rate {p}, per-snapshot pair escape probability <= {:.4}",
            (1.0 - p) * (1.0 - p)
        );
    }
    let started = std::time::Instant::now();
    let rows = if progress {
        gcs_scenarios::conformance::run_conformance_progress_with(&specs, &seeds, &opts, {
            |spec: &ScenarioSpec, seed, result: &Result<_, _>| match result {
                Ok(r) => println!(
                    "done {:<18} seed {:>3}: {}",
                    spec.name,
                    seed,
                    if r.is_conformant() { "ok" } else { "VIOLATION" }
                ),
                Err(e) => println!("FAIL {:<18} seed {:>3}: {e}", spec.name, seed),
            }
        })
    } else {
        gcs_scenarios::conformance::run_conformance_with(&specs, &seeds, &opts)
    }
    .map_err(|e| e.to_string())?;
    println!("\n{}", gcs_scenarios::conformance::conformance_table(&rows));
    let violations = gcs_scenarios::conformance::violations(&rows);
    println!(
        "{} run(s) in {:.1}s",
        rows.len(),
        started.elapsed().as_secs_f64()
    );
    if let Some(tpath) = trend_out {
        let when = now_millis();
        let points: Vec<trendseries::TrendPoint> = rows
            .iter()
            .map(|r| {
                trendseries::point_from_conformance(&when, scale.name(), opts.threads as u64, r)
            })
            .collect();
        trendseries::append_points(&tpath, &points)
            .map_err(|e| format!("cannot append to {}: {e}", tpath.display()))?;
        println!(
            "appended {} trend point(s) to {}",
            points.len(),
            tpath.display()
        );
    }
    if let Some(tpath) = telemetry_out {
        write_instrumented(&tpath, &specs, &seeds, scale, Some(&opts))?;
    }
    if violations.is_empty() {
        println!("ok: every run conforms to the paper bounds");
        Ok(())
    } else {
        for (name, seed, lines) in &violations {
            for line in lines {
                eprintln!("VIOLATION {name} seed {seed}: {line}");
            }
        }
        // The full per-run breakdown helps localize the failure.
        for row in rows.iter().filter(|r| !r.report.is_conformant()) {
            eprintln!(
                "\n{} seed {}:\n{}",
                row.name,
                row.seed,
                row.report.to_table()
            );
        }
        Err(format!(
            "{} run(s) violated a paper bound",
            violations.len()
        ))
    }
}

/// Resolves a `run`/`bench`/`conformance` target into a title and spec
/// list: a `.scn` file on disk, or a [`registry::select`] selection — a
/// comma list of built-in names and sets (`all`, `campaign`, `bench`,
/// `fault-heavy`). A selection that matches nothing is a hard error, so a
/// typo'd scenario name can never turn a CI gate into an empty (vacuously
/// green) sweep.
fn resolve_specs(target: &str) -> Result<(String, Vec<ScenarioSpec>), String> {
    let path = Path::new(target);
    if target.ends_with(".scn") || path.exists() {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {target}: {e}"))?;
        let spec = format::parse(&text).map_err(|e| format!("{target}: {e}"))?;
        spec.validate().map_err(|e| format!("{target}: {e}"))?;
        return Ok((spec.name.clone(), vec![spec]));
    }
    let specs = registry::select(target)?;
    Ok((target.to_string(), specs))
}

/// Unix-millisecond stamp for appended trend points. The gate orders by
/// file position, not by parsing this — it is for humans reading the file.
fn now_millis() -> String {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or_else(|_| "0".to_string(), |d| d.as_millis().to_string())
}

/// Seeds (or extends) a trend series from a `gcs-engine-bench/v1` artifact.
fn cmd_trend_append(args: &[String]) -> Result<(), String> {
    let input = args
        .first()
        .ok_or("trend-append needs a gcs-engine-bench/v1 artifact")?;
    let mut out = PathBuf::from("results/TREND_engine.jsonl");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out = out_flag(args, i, "file")?;
                i += 2;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let artifact = gcs_scenarios::bench::read_bench(&text).map_err(|e| format!("{input}: {e}"))?;
    let when = now_millis();
    let points: Vec<trendseries::TrendPoint> = artifact
        .entries
        .iter()
        .map(|e| trendseries::point_from_bench(&when, &artifact.scale, e))
        .collect();
    trendseries::append_points(&out, &points)
        .map_err(|e| format!("cannot append to {}: {e}", out.display()))?;
    println!(
        "appended {} trend point(s) from {input} to {}",
        points.len(),
        out.display()
    );
    Ok(())
}

/// Gates the newest point of every trend series against its own history.
fn cmd_trend_gate(args: &[String]) -> Result<(), String> {
    let input = args
        .first()
        .ok_or("trend-gate needs a TREND_*.jsonl file")?;
    let mut window = trendseries::DEFAULT_WINDOW;
    let mut tol_override: Option<f64> = None;
    let mut explain = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--window" => {
                window = usize::try_from(positive_flag(args, i, "--window")?)
                    .map_err(|_| "--window is out of range".to_string())?;
                i += 2;
            }
            "--tol" => {
                let pct: f64 = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .ok_or("--tol needs a non-negative percentage")?;
                tol_override = Some(pct / 100.0);
                i += 2;
            }
            "--explain" => {
                explain = true;
                i += 1;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let points = trendseries::read_series(&text).map_err(|e| format!("{input}: {e}"))?;
    if points.is_empty() {
        return Err(format!("{input} holds no trend points"));
    }
    let report = trendseries::trend_gate(&points, window, tol_override);
    println!("{}", report.table);
    if report.passed() {
        println!(
            "ok: no trend regression across {} point(s) in {input}",
            points.len()
        );
        Ok(())
    } else {
        for f in &report.findings {
            eprintln!(
                "REGRESSION {} {} seed {} threads {}: {} {:.6} vs window median {:.6} \
                 ({:+.1}%, tolerance ±{:.0}%)",
                f.kind,
                f.scenario,
                f.seed,
                f.threads,
                f.metric,
                f.current,
                f.median,
                f.relative() * 100.0,
                f.tolerance * 100.0
            );
            if explain {
                eprintln!("  {}", f.explain());
            }
        }
        Err(format!(
            "{} trend regression(s) beyond tolerance{}",
            report.findings.len(),
            if explain {
                ""
            } else {
                " (re-run with --explain for the window each finding was judged against)"
            }
        ))
    }
}

fn cmd_baseline(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("baseline needs a campaign artifact")?;
    let mut out: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out = Some(PathBuf::from(args.get(i + 1).ok_or("--out needs a file")?));
                i += 2;
            }
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    let text = std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let mut summary = trend::read_summary(&text).map_err(|e| format!("{input}: {e}"))?;
    if summary.tolerances.is_empty() {
        // Pin the default per-scenario tolerance table alongside the
        // stats: tight for deterministic scenarios, loose for
        // seed-realized random families. Hand-tune the file if needed.
        summary.tolerances = trend::default_tolerances(&summary);
    }
    let baseline = trend::baseline_json(&summary);
    match out {
        None => print!("{baseline}"),
        Some(path) => {
            std::fs::write(&path, baseline)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!(
                "wrote {} ({} scenario(s), {} seed(s))",
                path.display(),
                summary.rows.len(),
                summary.seeds.len()
            );
        }
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let baseline_path = args.first().ok_or("compare needs a baseline file")?;
    // Everything positional after the baseline is a campaign artifact —
    // `results/campaign_*.json` may glob to several accumulated runs;
    // the newest one (by modification time) is the campaign under test.
    let mut campaign_paths: Vec<&String> = Vec::new();
    let mut tol_pct = 20.0f64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--tol" => {
                tol_pct = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .ok_or("--tol needs a non-negative percentage")?;
                i += 2;
            }
            other if other.starts_with("--") => return Err(format!("unknown option {other:?}")),
            _ => {
                campaign_paths.push(&args[i]);
                i += 1;
            }
        }
    }
    let current_path = campaign_paths
        .iter()
        .max_by_key(|p| {
            std::fs::metadata(p.as_str())
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH)
        })
        .ok_or("compare needs a campaign artifact")?;
    if campaign_paths.len() > 1 {
        println!(
            "{} campaign artifact(s) given; comparing the newest: {current_path}",
            campaign_paths.len()
        );
    }
    let read = |path: &str| -> Result<trend::TrendSummary, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        trend::read_summary(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = read(baseline_path)?;
    let current = read(current_path)?;
    let report = trend::compare(&baseline, &current, tol_pct / 100.0);
    println!("{}", report.table);
    if report.passed() {
        println!(
            "ok: {} scenario(s) within ±{tol_pct}% of {baseline_path}",
            baseline.rows.len()
        );
        Ok(())
    } else {
        for f in &report.findings {
            if f.baseline.is_nan() {
                eprintln!("DRIFT {}: {}", f.scenario, f.column);
            } else {
                eprintln!(
                    "DRIFT {}: {} {} -> {} ({:+.1}%)",
                    f.scenario,
                    f.column,
                    f.baseline,
                    f.current,
                    f.relative() * 100.0
                );
            }
        }
        Err(format!(
            "{} drift finding(s) beyond ±{tol_pct}% (refresh the baseline with \
             `gcs-scenarios baseline` if this change is intentional)",
            report.findings.len()
        ))
    }
}

fn cmd_export(args: &[String]) -> Result<(), String> {
    let dir = args.first().ok_or("export needs a directory")?;
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let specs = registry::all();
    for spec in &specs {
        let path = Path::new(dir).join(format!("{}.scn", spec.name));
        std::fs::write(&path, format::write(spec))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    println!("exported {} scenario(s) to {dir}", specs.len());
    Ok(())
}
