//! `gcs-node` — the sans-IO protocol core behind a real transport.
//!
//! One OS process hosts a contiguous block of virtual nodes
//! ([`gcs_protocol::NodeCore`]) and exchanges length-prefixed
//! [`gcs_protocol::wire`] frames with peer processes over TCP or Unix
//! domain sockets. The daemon owns exactly what the sans-IO core
//! abstracts away — a wall clock and sockets — and nothing else: every
//! protocol decision (flood scheduling, §3.1 delivery, bound merges,
//! mode triggers) happens inside `NodeCore`, in the same code the
//! deterministic simulation engines execute.
//!
//! ```sh
//! gcs-node --listen 127.0.0.1:0 --first 0 --count 2 --total 6
//! gcs-node --uds /tmp/gcs-b.sock --first 2 --count 2 --total 6 \
//!          --peers 127.0.0.1:47001
//! ```
//!
//! Protocol on stdout (one line each, parseable by the loopback harness):
//!
//! * `listening <addr>` — printed once the socket is bound.
//! * `status id=<id> t=<secs> logical=<L> max_est=<M> mode=<fast|slow>
//!   peers_heard=<n>` — per hosted node, every `--status-every` seconds.
//! * `shutdown clean` — printed on the graceful exit path.
//!
//! Shutdown: the daemon exits cleanly (code 0) when its stdin reaches
//! EOF or when any peer sends a SHUTDOWN frame; it broadcasts SHUTDOWN
//! to its peers on the way out. SIGTERM terminates it immediately via
//! the default disposition (the harness treats that as the hard-stop
//! path and asserts promptness, not gracefulness).
//!
//! Exit codes: 0 = clean shutdown, 1 = configuration or socket error.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gcs_net::{EdgeKey, EdgeParams, EdgeParamsMap, NodeId};
use gcs_protocol::runtime::{derive_run_config, Send as CoreSend};
use gcs_protocol::wire::{Frame, FrameReader};
use gcs_protocol::{EstimateMode, Mode, NodeCore, Params};
use gcs_sim::SimTime;

const USAGE: &str = "\
gcs-node — socket daemon hosting virtual gradient-clock-sync nodes

USAGE:
    gcs-node (--listen ADDR | --uds PATH) --first N --count K --total M
             [--peers ADDR[,ADDR...]] [--rho R] [--mu U] [--refresh S]
             [--epsilon E] [--tau S] [--delay-max S]
             [--status-every S] [--time-scale X] [--no-drift]

    --listen ADDR     bind a TCP listener (port 0 picks a free port)
    --uds PATH        bind a Unix domain socket listener instead
    --first N         first hosted virtual node ID        (default 0)
    --count K         number of hosted virtual nodes      (default 1)
    --total M         cluster-wide node count             (default first+count)
    --peers LIST      comma list of peer daemons to dial; TCP addresses,
                      or unix:PATH for Unix domain sockets
    --rho R           hardware drift bound                (default 1e-3)
    --mu U            fast-mode rate boost                (default 0.1)
    --refresh S       flood refresh period, seconds       (default 0.2)
    --epsilon E       estimate uncertainty                (default 1e-3)
    --tau S           edge detection delay                (default 0.05)
    --delay-max S     message delay upper bound           (default 0.05)
    --status-every S  status print period, seconds        (default 0.25)
    --time-scale X    run-clock seconds per wall second   (default 1)
    --no-drift        host every node at hardware rate 1.0 instead of
                      deterministically spread over [1-rho, 1+rho]

The cluster topology is the complete graph over IDs 0..M: every hosted
node treats every other ID as a fully inserted neighbour.
";

struct Options {
    listen: Option<String>,
    uds: Option<String>,
    first: u64,
    count: u64,
    total: u64,
    peers: Vec<String>,
    rho: f64,
    mu: f64,
    refresh: f64,
    epsilon: f64,
    tau: f64,
    delay_max: f64,
    status_every: f64,
    time_scale: f64,
    drift: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        listen: None,
        uds: None,
        first: 0,
        count: 1,
        total: 0,
        peers: Vec::new(),
        rho: 1e-3,
        mu: 0.1,
        refresh: 0.2,
        epsilon: 1e-3,
        tau: 0.05,
        delay_max: 0.05,
        status_every: 0.25,
        time_scale: 1.0,
        drift: true,
    };
    let value = |args: &[String], i: usize, flag: &str| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let num = |args: &[String], i: usize, flag: &str| -> Result<f64, String> {
        let v: f64 = value(args, i, flag)?
            .parse()
            .map_err(|_| format!("{flag} needs a number"))?;
        if v.is_finite() && v > 0.0 {
            Ok(v)
        } else {
            Err(format!("{flag} must be a positive finite number"))
        }
    };
    let int = |args: &[String], i: usize, flag: &str| -> Result<u64, String> {
        value(args, i, flag)?
            .parse()
            .map_err(|_| format!("{flag} needs a non-negative integer"))
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => o.listen = Some(value(args, i, "--listen")?),
            "--uds" => o.uds = Some(value(args, i, "--uds")?),
            "--first" => o.first = int(args, i, "--first")?,
            "--count" => o.count = int(args, i, "--count")?,
            "--total" => o.total = int(args, i, "--total")?,
            "--peers" => o
                .peers
                .extend(value(args, i, "--peers")?.split(',').map(str::to_string)),
            "--rho" => o.rho = num(args, i, "--rho")?,
            "--mu" => o.mu = num(args, i, "--mu")?,
            "--refresh" => o.refresh = num(args, i, "--refresh")?,
            "--epsilon" => o.epsilon = num(args, i, "--epsilon")?,
            "--tau" => o.tau = num(args, i, "--tau")?,
            "--delay-max" => o.delay_max = num(args, i, "--delay-max")?,
            "--status-every" => o.status_every = num(args, i, "--status-every")?,
            "--time-scale" => o.time_scale = num(args, i, "--time-scale")?,
            "--no-drift" => {
                o.drift = false;
                i += 1;
                continue;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option {other:?}\n\n{USAGE}")),
        }
        i += 2;
    }
    if o.count == 0 {
        return Err("--count must be at least 1".to_string());
    }
    if o.total == 0 {
        o.total = o.first + o.count;
    }
    if o.first + o.count > o.total {
        return Err(format!(
            "hosted IDs [{}, {}) exceed --total {}",
            o.first,
            o.first + o.count,
            o.total
        ));
    }
    if o.listen.is_some() == o.uds.is_some() {
        return Err("exactly one of --listen or --uds is required".to_string());
    }
    Ok(o)
}

/// A TCP or Unix-domain byte stream, non-blocking.
enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn set_nonblocking(&self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_nonblocking(true),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_nonblocking(true),
        }
    }
}

/// The daemon's listening socket.
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, String),
}

impl Listener {
    fn accept(&self) -> Option<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().ok().map(|(s, _)| Stream::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.accept().ok().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

/// One peer connection: stream, frame reassembly, pending output, and
/// the node-ID range its HELLO announced (for routing).
struct Conn {
    stream: Stream,
    reader: FrameReader,
    outbuf: Vec<u8>,
    range: Option<(u64, u64)>,
    dead: bool,
}

impl Conn {
    fn new(stream: Stream) -> Conn {
        Conn {
            stream,
            reader: FrameReader::new(),
            outbuf: Vec::new(),
            range: None,
            dead: false,
        }
    }

    fn owns(&self, id: u64) -> bool {
        matches!(self.range, Some((first, count)) if (first..first + count).contains(&id))
    }

    fn queue(&mut self, frame: &Frame) {
        frame.encode(&mut self.outbuf);
    }

    /// Writes as much pending output as the socket accepts.
    fn flush(&mut self) {
        while !self.outbuf.is_empty() {
            match self.stream.write(&self.outbuf) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.outbuf.drain(..n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Reads whatever the socket has and returns the decoded frames.
    /// Marks the connection dead on EOF or a corrupt stream.
    fn pump(&mut self, scratch: &mut [u8]) -> Vec<Frame> {
        let mut frames = Vec::new();
        loop {
            match self.stream.read(scratch) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.reader.extend(&scratch[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        loop {
            match self.reader.next_frame() {
                Ok(Some(f)) => frames.push(f),
                Ok(None) => break,
                Err(e) => {
                    eprintln!("gcs-node: dropping corrupt peer stream: {e}");
                    self.dead = true;
                    break;
                }
            }
        }
        frames
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn node_id(id: u64) -> NodeId {
    NodeId(u32::try_from(id).unwrap_or(u32::MAX))
}

fn run(args: &[String]) -> Result<(), String> {
    let o = parse_options(args)?;

    // Shared run constants: the exact derivation the simulation builder
    // uses, over the complete-graph edge universe. `delay_min` is zero —
    // loopback transit can be arbitrarily fast, so the cores take no
    // min-transit credit.
    let base = Params::builder()
        .rho(o.rho)
        .mu(o.mu)
        .refresh_period(o.refresh)
        .build()
        .map_err(|e| format!("invalid parameters: {e}"))?;
    let edge = EdgeParams::try_new(o.epsilon, o.tau, 0.0, o.delay_max)
        .map_err(|e| format!("invalid edge parameters: {e}"))?;
    let edge_params = EdgeParamsMap::uniform(edge);
    let mut universe = Vec::new();
    for a in 0..o.total {
        for b in (a + 1)..o.total {
            universe.push(EdgeKey::new(node_id(a), node_id(b)));
        }
    }
    let cfg = derive_run_config(
        &base,
        EstimateMode::Messages,
        &edge_params,
        &universe,
        usize::try_from(o.total).map_err(|_| "--total is out of range".to_string())?,
    );

    // Hosted cores: hardware rates deterministically spread over
    // [1-rho, 1+rho] by ID (the drift adversary of the model, realized),
    // flood schedules staggered so the cluster does not send in lockstep.
    let mut cores: Vec<NodeCore> = (o.first..o.first + o.count)
        .map(|id| {
            let rate = if o.drift && o.total > 1 {
                let spread = (id as f64 / (o.total - 1) as f64) * 2.0 - 1.0;
                1.0 + o.rho * spread
            } else {
                1.0
            };
            let stagger = cfg.refresh * (id + 1) as f64 / (o.total + 1) as f64;
            let mut core = NodeCore::new(
                node_id(id),
                cfg.params.clone(),
                cfg.refresh,
                rate,
                SimTime::from_secs(stagger),
            );
            for peer in 0..o.total {
                if peer != id {
                    let key = EdgeKey::new(node_id(id), node_id(peer));
                    core.add_neighbor(node_id(peer), cfg.edge_info[&key]);
                }
            }
            core
        })
        .collect();

    // Transport: bind, announce, dial.
    let listener = match (&o.listen, &o.uds) {
        (Some(addr), None) => {
            let l = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
            l.set_nonblocking(true)
                .map_err(|e| format!("cannot configure {addr}: {e}"))?;
            let bound = l
                .local_addr()
                .map_err(|e| format!("cannot read bound address: {e}"))?;
            println!("listening {bound}");
            Listener::Tcp(l)
        }
        #[cfg(unix)]
        (None, Some(path)) => {
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path).map_err(|e| format!("cannot bind {path}: {e}"))?;
            l.set_nonblocking(true)
                .map_err(|e| format!("cannot configure {path}: {e}"))?;
            println!("listening unix:{path}");
            Listener::Unix(l, path.clone())
        }
        _ => return Err("exactly one of --listen or --uds is required".to_string()),
    };
    let hello = Frame::Hello {
        first: o.first,
        count: o.count,
    };
    let mut conns: Vec<Conn> = Vec::new();
    for peer in &o.peers {
        let stream = dial(peer)?;
        let mut conn = Conn::new(stream);
        conn.queue(&hello);
        conn.flush();
        conns.push(conn);
    }

    // Stdin watcher: EOF is the graceful-shutdown request (the harness
    // closes our stdin; no signal handler needed).
    let stdin_closed = Arc::new(AtomicBool::new(false));
    {
        let flag = Arc::clone(&stdin_closed);
        std::thread::spawn(move || {
            let mut sink = [0u8; 256];
            let mut stdin = std::io::stdin();
            while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
            flag.store(true, Ordering::Release);
        });
    }

    // The event loop: real time in, frames out.
    let start = Instant::now();
    let now = |start: &Instant| SimTime::from_secs(start.elapsed().as_secs_f64() * o.time_scale);
    let mut scratch = vec![0u8; 4096];
    let mut sends: Vec<CoreSend> = Vec::new();
    let mut next_status = 0.0f64;
    let mut shutdown_seen = false;
    while !(stdin_closed.load(Ordering::Acquire) || shutdown_seen) {
        while let Some(stream) = listener.accept() {
            if let Err(e) = stream.set_nonblocking() {
                eprintln!("gcs-node: dropping inbound connection: {e}");
                continue;
            }
            let mut conn = Conn::new(stream);
            conn.queue(&hello);
            conn.flush();
            conns.push(conn);
        }

        let t = now(&start);
        for conn in &mut conns {
            for frame in conn.pump(&mut scratch) {
                match frame {
                    Frame::Hello { first, count } => conn.range = Some((first, count)),
                    Frame::Flood {
                        src,
                        dst,
                        sent_at,
                        msg,
                    } => {
                        if let Some(core) = core_for(&mut cores, o.first, u64::from(dst.0)) {
                            // §3.1 delivery rule, enforced by the core.
                            let _ = core.on_message(t, src, sent_at, msg);
                        }
                    }
                    Frame::Shutdown => shutdown_seen = true,
                }
            }
        }

        // Drive the cores: floods due now, then a mode decision sweep.
        let t = now(&start);
        sends.clear();
        for core in &mut cores {
            core.poll_sends(t, &mut sends);
        }
        for &s in sends.iter() {
            let dst = u64::from(s.dst.0);
            if let Some(core) = core_for(&mut cores, o.first, dst) {
                // Local neighbour: loopback delivery, no wire.
                let _ = core.on_message(t, s.src, s.sent_at, s.msg);
            } else if let Some(conn) = conns.iter_mut().find(|c| !c.dead && c.owns(dst)) {
                conn.queue(&Frame::Flood {
                    src: s.src,
                    dst: s.dst,
                    sent_at: s.sent_at,
                    msg: s.msg,
                });
            }
        }
        for core in &mut cores {
            let _ = core.evaluate(t);
        }

        for c in &mut conns {
            if !c.dead {
                c.flush();
            }
        }
        conns.retain(|c| !c.dead);

        if t.as_secs() >= next_status {
            next_status = t.as_secs() + o.status_every;
            let mut out = std::io::stdout().lock();
            for core in &cores {
                let st = core.state();
                let heard = st
                    .slots
                    .iter()
                    .filter(|e| e.slot.estimate.is_some())
                    .count();
                let mode = match st.mode() {
                    Mode::Fast => "fast",
                    Mode::Slow => "slow",
                };
                let _ = writeln!(
                    out,
                    "status id={} t={:.6} logical={:.6} max_est={:.6} mode={mode} peers_heard={heard}",
                    st.id().0,
                    t.as_secs(),
                    st.logical(),
                    st.max_estimate(),
                );
            }
            let _ = out.flush();
        }

        std::thread::sleep(Duration::from_millis(2));
    }

    // Graceful exit: wave goodbye, give the frames a moment to drain.
    for c in &mut conns {
        if !c.dead {
            c.queue(&Frame::Shutdown);
        }
    }
    let deadline = Instant::now() + Duration::from_millis(200);
    while Instant::now() < deadline && conns.iter().any(|c| !c.dead && !c.outbuf.is_empty()) {
        for c in &mut conns {
            if !c.dead {
                c.flush();
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    #[cfg(unix)]
    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
    println!("shutdown clean");
    Ok(())
}

/// The hosted core for global ID `dst`, if it is local.
fn core_for(cores: &mut [NodeCore], first: u64, dst: u64) -> Option<&mut NodeCore> {
    dst.checked_sub(first)
        .and_then(|k| usize::try_from(k).ok())
        .and_then(|k| cores.get_mut(k))
}

fn dial(peer: &str) -> Result<Stream, String> {
    if let Some(path) = peer.strip_prefix("unix:") {
        #[cfg(unix)]
        {
            let s = UnixStream::connect(path).map_err(|e| format!("cannot dial {peer}: {e}"))?;
            s.set_nonblocking(true)
                .map_err(|e| format!("cannot configure {peer}: {e}"))?;
            return Ok(Stream::Unix(s));
        }
        #[cfg(not(unix))]
        return Err(format!("unix sockets unsupported on this platform: {peer}"));
    }
    let s = TcpStream::connect(peer).map_err(|e| format!("cannot dial {peer}: {e}"))?;
    s.set_nonblocking(true)
        .map_err(|e| format!("cannot configure {peer}: {e}"))?;
    Ok(Stream::Tcp(s))
}
