//! # gradient-clock-sync
//!
//! A full, simulation-backed reproduction of **"Optimal Gradient Clock
//! Synchronization in Dynamic Networks"** (Kuhn, Lenzen, Locher, Oshman;
//! PODC 2010, arXiv:1005.2894).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`sim`] — discrete-event kernel, drifting hardware clocks
//! * [`net`] — dynamic estimate graphs, topologies, churn schedules, transport
//! * [`core`] — the `A_OPT` algorithm, its parameters, and the simulation driver
//! * [`baselines`] — comparison policies (max-flood, single-level blocking)
//! * [`analysis`] — skew metrics, gradient-legality checking, the
//!   paper-bound conformance oracles, reporting
//! * [`scenarios`] — declarative scenarios: the `.scn` format, the named
//!   registry, the campaign runner, and the conformance/trend/bench gates
//!   (see also the `gcs-scenarios` CLI)
//! * [`telemetry`] — the observability seam: the [`TelemetrySink`]
//!   trait both engines report into, deterministic `gcs-trace/v1` run
//!   logs sealed with a running FNV-1a content hash, and the
//!   counter/histogram metrics behind the `gcs-telemetry/v1` artifact
//!
//! [`TelemetrySink`]: gcs_telemetry::TelemetrySink
//!
//! # Quickstart
//!
//! ```
//! use gradient_clock_sync::prelude::*;
//!
//! let params = Params::builder().rho(0.01).mu(0.1).build().unwrap();
//! let mut sim = SimBuilder::new(params)
//!     .topology(Topology::ring(8))
//!     .drift(DriftModel::Alternating)
//!     .seed(42)
//!     .build()
//!     .unwrap();
//! sim.run_until_secs(30.0);
//!
//! let snap = sim.snapshot();
//! assert!(snap.global_skew() < 1.0);
//! ```

#![forbid(unsafe_code)]

pub use gcs_analysis as analysis;
pub use gcs_baselines as baselines;
pub use gcs_core as core;
pub use gcs_net as net;
pub use gcs_scenarios as scenarios;
pub use gcs_sim as sim;
pub use gcs_telemetry as telemetry;

/// One-stop imports for the most common types.
pub mod prelude {
    pub use gcs_analysis::{
        gradient_bound, kappa_diameter, local_skew, skew_profile, weighted_skew_profile,
        ConformanceChecker, ConformanceReport, GradientChecker, LegalityReport, OracleConfig,
        Table,
    };
    pub use gcs_baselines::{MaxOnlyPolicy, SingleLevelPolicy};
    pub use gcs_core::{
        AoptPolicy, ClockSnapshot, DiameterTracker, ErrorModel, EstimateMode, EventLog,
        InsertionStrategy, LogEntry, Mode, ModePolicy, Params, ParamsBuilder, ParamsError,
        SimBuilder, SimStats, Simulation, Trace,
    };
    pub use gcs_net::{ChurnOptions, EdgeParams, EdgeParamsMap, NetworkSchedule, Topology};
    pub use gcs_scenarios::{
        registry, DriftSpec, DynamicsSpec, EstimateSpec, FaultSpec, Metric, ScenarioError,
        ScenarioSpec, TopologySpec,
    };
    pub use gcs_sim::{DriftModel, DriftSchedule, SimDuration, SimTime};
}
