//! Minimal vendored shim of the `criterion` 0.5 API surface used by this
//! workspace.
//!
//! The build environment is hermetic (no registry access), so the bench
//! harness vendors the handful of criterion types it uses: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — a short warm-up followed by a fixed
//! number of timed batches, reporting the per-iteration mean and the min/max
//! batch means.  There is no statistical analysis, outlier detection, or
//! HTML reporting; the shim exists so `cargo bench` compiles, runs, and
//! prints comparable wall-clock numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies a parameterized benchmark, e.g. `line_5s/32`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    /// Mean per-iteration times of each measured batch, in seconds.
    batch_means: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring `sample_size`
    /// batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until ~50ms or 3 iterations, whichever comes first.
        let warmup_deadline = Instant::now() + Duration::from_millis(50);
        let mut warmup_iters = 0u64;
        let mut warmup_time = Duration::ZERO;
        while warmup_iters < 3 || (Instant::now() < warmup_deadline && warmup_iters < 1_000_000) {
            let t0 = Instant::now();
            black_box(routine());
            warmup_time += t0.elapsed();
            warmup_iters += 1;
            if warmup_time > Duration::from_millis(200) {
                break;
            }
        }
        let per_iter = warmup_time.as_secs_f64() / warmup_iters as f64;
        // Aim for ~20ms per batch, at least 1 iteration.
        let batch_iters = ((0.02 / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000);
        self.batch_means.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch_iters {
                black_box(routine());
            }
            self.batch_means
                .push(t0.elapsed().as_secs_f64() / batch_iters as f64);
        }
    }
}

fn format_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        sample_size,
        batch_means: Vec::new(),
    };
    f(&mut b);
    if b.batch_means.is_empty() {
        println!("{id:<44} (no measurement)");
        return;
    }
    let mean = b.batch_means.iter().sum::<f64>() / b.batch_means.len() as f64;
    let lo = b.batch_means.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = b
        .batch_means
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{id:<44} time: [{} {} {}]",
        format_secs(lo),
        format_secs(mean),
        format_secs(hi)
    );
}

/// Default number of measured batches per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// The top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Sets the number of measured batches for subsequent benchmarks.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured batches for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input);
        });
        self
    }

    /// Finishes the group (a no-op in this shim, kept for API parity).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a custom
            // harness is expected to tolerate them.  `--list` must print
            // nothing and exit for tooling that enumerates tests.
            if std::env::args().any(|a| a == "--list") {
                return;
            }
            $( $group(); )+
        }
    };
}
