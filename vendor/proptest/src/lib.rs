//! Minimal vendored shim of the `proptest` 1.x API surface used by this
//! workspace.
//!
//! The build environment is hermetic (no registry access), so the workspace
//! vendors exactly the pieces its property tests consume: the [`proptest!`]
//! macro, range/tuple/`vec`/`option`/`bool` strategies, [`prop_oneof!`],
//! [`Strategy::prop_map`], `prop_assert*`/`prop_assume!`, and
//! [`test_runner::Config`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.**  A failing case reports its case index and the
//!   per-test deterministic seed; re-running reproduces it exactly.
//! * **Deterministic seeding.**  Each test derives its RNG seed from the
//!   test's name (overridable with the `PROPTEST_SEED` environment
//!   variable), so CI failures are reproducible by construction.
//! * **Uniform sampling.**  No edge-value biasing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bool;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{Config, TestCaseError, TestRunner};

/// The catch-all import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new_for_test(config, stringify!($name));
                runner.run_shim(|rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), rng);)+
                    let mut case = move
                        || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    case()
                });
            }
        )*
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Rejects (skips) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Builds a strategy choosing uniformly among the given sub-strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
