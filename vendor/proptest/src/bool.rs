//! `bool` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;

/// The fair-coin strategy for `bool`.
pub static ANY: AnyBool = AnyBool;

/// Unit type standing in for upstream's `proptest::bool::Any`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen::<f64>() < 0.5
    }
}
