//! The case-running engine behind the [`proptest!`](crate::proptest) macro.

use rand::rngs::StdRng;
use rand::SeedableRng as _;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Runner configuration; mirrors the `proptest::test_runner::Config` fields
/// this workspace sets.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of rejected (assumed-away) cases tolerated.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should not be counted.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Creates a rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Runs the configured number of cases with a deterministic RNG.
#[derive(Debug)]
pub struct TestRunner {
    config: Config,
    name: &'static str,
    seed: u64,
}

/// FNV-1a, used to derive a per-test seed from its name.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl TestRunner {
    /// Creates a runner for the named test.
    ///
    /// The RNG seed is `hash(name)` unless the `PROPTEST_SEED` environment
    /// variable overrides it, so failures reproduce across runs and
    /// machines.
    #[must_use]
    pub fn new_for_test(config: Config, name: &'static str) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| hash_name(name));
        TestRunner { config, name, seed }
    }

    /// Runs `case` until `config.cases` successes are recorded.
    ///
    /// # Panics
    ///
    /// Panics if a case fails, or if rejects exceed the configured budget.
    pub fn run_shim<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rejects = 0u32;
        let mut passed = 0u32;
        let mut attempt = 0u64;
        while passed < self.config.cases {
            // One fresh, addressable stream per attempt: a failure report
            // names the attempt and the root seed, which fully determine the
            // inputs.
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(attempt));
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    assert!(
                        rejects <= self.config.max_global_rejects,
                        "proptest '{}': too many prop_assume! rejections ({})",
                        self.name,
                        rejects
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{}' failed at attempt {} (seed {}):\n{}",
                        self.name, attempt, self.seed, msg
                    );
                }
            }
            attempt += 1;
        }
    }
}
