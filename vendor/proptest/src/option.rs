//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;

/// Strategy for `Option<S::Value>`; `None` with probability 1/4, matching
/// upstream's default weighting closely enough for coverage purposes.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// Generates `Some` values from `inner` (and `None` some of the time).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        if rng.gen::<f64>() < 0.25 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}
