//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng as _;

/// A recipe for generating values of [`Strategy::Value`].
///
/// Unlike upstream proptest there is no value-tree/shrinking layer; a
/// strategy is simply a sampler.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Discards generated values failing `f`, resampling until one passes.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// Object-safe core of [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn dyn_sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_sample(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<Value = V>>,
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.inner.dyn_sample(rng)
    }
}

/// Chooses uniformly among sub-strategies (the engine behind
/// [`prop_oneof!`](crate::prop_oneof)).
#[derive(Debug)]
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A `Vec` of strategies samples each element once, mirroring upstream.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.sample(rng)).collect()
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 10000 samples in a row",
            self.whence
        );
    }
}

/// The canonical strategy for a type, mirroring `proptest::arbitrary`.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Generates any value of `T` via its [`Arbitrary`] implementation.
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range strategy behind `any::<int>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyNumber<T>(std::marker::PhantomData<fn() -> T>);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyNumber<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyNumber<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyNumber(std::marker::PhantomData)
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyNumber<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.gen::<f64>() < 0.5
    }
}

impl Arbitrary for bool {
    type Strategy = AnyNumber<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyNumber(std::marker::PhantomData)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}
