//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;

/// The length specification accepted by [`vec`]: either an exact size or a
/// half-open range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange(std::ops::Range<usize>);

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange(n..n + 1)
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange(r)
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange(*r.start()..r.end() + 1)
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose elements come from `element` and whose length is
/// drawn from `size` (an exact `usize` or a range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.0.clone());
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
