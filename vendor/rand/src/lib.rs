//! Minimal vendored shim of the `rand` 0.8 API surface used by this
//! workspace.
//!
//! The build environment is hermetic (no registry access), so instead of the
//! upstream crate this workspace vendors exactly the pieces it consumes:
//! [`Rng`], [`SeedableRng`], [`rngs::StdRng`], and
//! [`distributions::Standard`].  The generator behind `StdRng` here is
//! xoshiro256++ seeded through SplitMix64 — high-quality and fully
//! deterministic, though its output stream intentionally makes no attempt to
//! match upstream `StdRng` (ChaCha12).  Nothing in this workspace depends on
//! the exact stream, only on determinism for a fixed seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// A low-level source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators; only `seed_from_u64` is needed by this workspace.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value via the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        let x: f64 = Standard.sample(self);
        x < p
    }

    /// Converts this generator into an iterator of samples from `distr`.
    fn sample_iter<T, D>(self, distr: D) -> DistIter<D, Self, T>
    where
        D: Distribution<T>,
        Self: Sized,
    {
        DistIter {
            distr,
            rng: self,
            _marker: core::marker::PhantomData,
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Iterator returned by [`Rng::sample_iter`].
#[derive(Debug)]
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: core::marker::PhantomData<fn() -> T>,
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: Distribution<T>,
    R: RngCore,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

/// Ranges that can produce a uniform sample of `T`.
///
/// As in upstream rand, the only impls are the blanket ones over
/// [`SampleUniform`] element types — a single generic impl per range shape
/// keeps type inference working for unsuffixed literals like
/// `gen_range(-1.0..=1.0)`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Element types [`SampleRange`] knows how to sample uniformly.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Maps a random word to a float in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        lo + unit_f64(rng) * (hi - lo)
    }

    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        // The closed/open distinction is immaterial at f64 resolution; a
        // plain affine map keeps the endpoints reachable in principle.
        lo + (rng.next_u64() as f64 / u64::MAX as f64) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        lo + (unit_f64(rng) as f32) * (hi - lo)
    }

    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        lo + ((rng.next_u64() as f64 / u64::MAX as f64) as f32) * (hi - lo)
    }
}

/// Uniform `u64` in `[0, n)` by widening multiply (Lemire); unbiased enough
/// for simulation use and, crucially, deterministic.
fn below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let width = (hi as i128 - lo as i128) as u64;
                (lo as i128 + below(rng, width) as i128) as $t
            }

            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + below(rng, width + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(-5.0f64..5.0);
            assert!((-5.0..5.0).contains(&x));
            let y = rng.gen_range(0u32..7);
            assert!(y < 7);
            let z = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn sample_iter_yields_standard_samples() {
        let xs: Vec<u64> = StdRng::seed_from_u64(1)
            .sample_iter(Standard)
            .take(4)
            .collect();
        let ys: Vec<u64> = StdRng::seed_from_u64(1)
            .sample_iter(Standard)
            .take(4)
            .collect();
        assert_eq!(xs, ys);
    }
}
