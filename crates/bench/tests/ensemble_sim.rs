//! Simulation-backed ensemble checks (the pure aggregation tests live with
//! the moved module in `gcs-analysis`).

use gcs_bench::ensemble;
use gcs_core::SimBuilder;
use gcs_net::Topology;
use gcs_sim::DriftModel;

#[test]
fn skew_spread_across_seeds_is_modest() {
    // The global skew of a stabilized line should not be wildly
    // seed-dependent: the bound is deterministic, the noise is not.
    let stats = ensemble::run(&[1, 2, 3, 4, 5], |seed| {
        let params = gcs_bench::experiments::base_params().build().unwrap();
        let mut sim = SimBuilder::new(params)
            .topology(Topology::line(8))
            .drift(DriftModel::RandomConstant)
            .seed(seed)
            .build()
            .unwrap();
        sim.run_until_secs(15.0);
        sim.snapshot().global_skew()
    });
    assert!(stats.mean > 0.0);
    assert!(stats.max <= 0.12, "a seed exceeded the n=8 estimate");
    // The new percentile fields bracket the median and stay within range.
    assert!(stats.min <= stats.p10 && stats.p10 <= stats.median);
    assert!(stats.median <= stats.p90 && stats.p90 <= stats.max);
    assert!(stats.stddev >= 0.0);
}
