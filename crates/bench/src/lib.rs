//! Experiment harness: one experiment per theorem of the paper.
//!
//! The paper is a theory paper — its "evaluation" is a set of theorems, so
//! each experiment here regenerates the *shape* a theorem predicts (growth
//! rate, who wins, where a crossover falls) from simulation:
//!
//! | Experiment | Paper result |
//! |---|---|
//! | [`experiments::e1_global_skew`] | Thm 5.6 — global skew `O(D)`, growth ≤ 2ρ, recovery ≥ µ(1−ρ)−2ρ |
//! | [`experiments::e2_gradient_skew`] | Thm 5.22 / Cor 5.26 — stable gradient skew `O(κ_p log_σ(Ĝ/κ_p))` |
//! | [`experiments::e3_policy_comparison`] | §2/§5.5 — `A_OPT` vs the `O(√(ρD))` and `O(D)` baselines |
//! | [`experiments::e4_stabilization_time`] | Thm 5.25 — new edges stabilize in `O(Ĝ/µ)` |
//! | [`experiments::e5_lower_bound`] | Thm 8.1 — stabilization needs `Ω(D)` for *any* algorithm |
//! | [`experiments::e6_self_stabilization`] | §5.2 — recovery at rate `µ(1−ρ)−2ρ` |
//! | [`experiments::e7_dynamic_estimates`] | §7 — insertion with node-local `G̃_u(t)` |
//! | [`experiments::e8_churn`] | §3.1 model generality — invariants & bounds under churn/mobility |
//! | [`experiments::e9_heterogeneous`] | §5.5 — bounds in terms of path weight `κ_p`, not hop count |
//! | [`experiments::e10_partition`] | §1/§3.1 — why connectivity is required: skew across an open cut |
//! | [`ablations`] | A1 µ/σ sweep, A2 insertion duration, A3 κ slack (eq. 9), A4 refresh period |
//!
//! Every experiment returns [`Table`]s; `cargo bench -p gcs-bench` prints
//! the quick suite, `cargo run --release -p gcs-bench --bin experiments --
//! full` the full-size one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod experiments;

// The multi-seed aggregation and the scoped-thread fan-out moved down to
// `gcs-analysis` so the scenario campaign runner (`gcs-scenarios`) can share
// them without a dependency cycle; the historical `gcs_bench::` paths keep
// working via these re-exports.
pub use gcs_analysis::ensemble;
pub use gcs_analysis::parallel_map;

use gcs_analysis::Table;

/// Experiment sizing: `Quick` keeps `cargo bench` snappy; `Full` is the
/// EXPERIMENTS.md configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sweeps (bench target default).
    Quick,
    /// Full sweeps used for the recorded results.
    Full,
}

impl Scale {
    /// Network sizes for size sweeps.
    #[must_use]
    pub fn sizes(self) -> &'static [usize] {
        match self {
            Scale::Quick => &[8, 16, 24],
            Scale::Full => &[8, 16, 32, 48, 64],
        }
    }

    /// Line length for the gradient-profile experiment.
    #[must_use]
    pub fn profile_n(self) -> usize {
        match self {
            Scale::Quick => 32,
            Scale::Full => 64,
        }
    }

    /// Steady-state observation window in simulated seconds.
    #[must_use]
    pub fn observe_secs(self) -> f64 {
        match self {
            Scale::Quick => 20.0,
            Scale::Full => 60.0,
        }
    }

    /// Warm-up before observation.
    #[must_use]
    pub fn warmup_secs(self) -> f64 {
        match self {
            Scale::Quick => 10.0,
            Scale::Full => 30.0,
        }
    }
}

/// Runs every experiment and ablation, in order.
#[must_use]
pub fn all_experiments(scale: Scale) -> Vec<Table> {
    vec![
        experiments::e1_global_skew(scale),
        experiments::e2_gradient_skew(scale),
        experiments::e3_policy_comparison(scale),
        experiments::e4_stabilization_time(scale),
        experiments::e5_lower_bound(scale),
        experiments::e6_self_stabilization(scale),
        experiments::e7_dynamic_estimates(scale),
        experiments::e8_churn(scale),
        experiments::e9_heterogeneous(scale),
        experiments::e10_partition(scale),
        ablations::a1_mu_sweep(scale),
        ablations::a2_insertion_scale(scale),
        ablations::a3_kappa_slack(scale),
        ablations::a4_refresh_period(scale),
        ablations::a5_insertion_strategy(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_is_smaller_than_full() {
        assert!(Scale::Quick.sizes().len() < Scale::Full.sizes().len());
        assert!(Scale::Quick.observe_secs() < Scale::Full.observe_secs());
    }
}
