//! Ablations of the design choices DESIGN.md calls out: the parameters the
//! paper constrains (µ/σ, the insertion duration `I`, the κ slack of
//! eq. 9) and the estimate refresh period.
//!
//! Like the experiments, every ablation takes its adversary — topology,
//! edge schedule, drift, estimates, fault script — from
//! [`gcs_scenarios::presets`]; the sweeps only vary algorithm parameters,
//! through the [`ScenarioSpec::builder_with`] seam.
//!
//! [`ScenarioSpec::builder_with`]: gcs_scenarios::ScenarioSpec::builder_with

use gcs_analysis::report::fmt_val;
use gcs_analysis::{gradient_bound, local_skew, GradientChecker, Table};
use gcs_core::edge_state::Level;
use gcs_core::InsertionStrategy;
use gcs_net::{EdgeKey, NodeId};
use gcs_scenarios::{campaign, presets, DriftSpec, EstimateSpec, TopologySpec};

use crate::experiments::base_params;
use crate::{parallel_map, Scale};

/// A1: sweep `µ` (and hence the gradient base `σ = (1−ρ)µ/2ρ`).
/// Expected: a larger σ tightens the provisionable local-skew bound
/// (fewer levels needed to cover `Ĝ`) and speeds recovery; the measured
/// skew tracks the bound's ordering.
#[must_use]
pub fn a1_mu_sweep(scale: Scale) -> Table {
    const RHO: f64 = 0.002;
    let mus: &[f64] = &[0.02, 0.05, 0.1];
    let rows = parallel_map(mus.to_vec(), |mu| {
        let mut spec = presets::base("mu-sweep", TopologySpec::Line { n: 12 });
        spec.estimates = EstimateSpec::OracleHide;
        spec.rho = RHO;
        spec.mu = mu;
        spec.warmup = scale.warmup_secs();
        spec.duration = scale.observe_secs();
        let mut sim = spec.build(1).expect("mu-sweep spec builds");
        let sigma = sim.params().sigma();
        let recovery = mu * (1.0 - RHO) - 2.0 * RHO;
        sim.run_until_secs(scale.warmup_secs());
        let mut worst: f64 = 0.0;
        let horizon = scale.warmup_secs() + scale.observe_secs();
        let mut t_now = scale.warmup_secs();
        while t_now <= horizon {
            sim.run_until_secs(t_now);
            worst = worst.max(local_skew(&sim));
            t_now += 0.5;
        }
        let g_tilde = sim.params().g_tilde().unwrap();
        let kappa = sim
            .edge_info(EdgeKey::new(NodeId(0), NodeId(1)))
            .unwrap()
            .kappa;
        let bound = gradient_bound(sim.params(), g_tilde, kappa);
        (mu, sigma, recovery, worst, bound, kappa)
    });

    let mut t = Table::new(
        "A1  mu / sigma sweep (line(12), rho = 0.2%)",
        &[
            "mu",
            "sigma",
            "recovery rate",
            "measured local skew",
            "local bound",
            "levels needed",
        ],
    );
    t.caption(
        "Expected: sigma grows with mu, so fewer levels cover G~ (the 'levels needed' column \
         = bound/kappa = s(p)+1 falls) and the guaranteed recovery rate mu(1-rho)-2rho rises. \
         Note kappa itself grows with mu (eq. 9), so compare the normalized column, not the \
         raw bound.",
    );
    for (mu, sigma, recovery, worst, bound, kappa) in rows {
        t.row([
            fmt_val(mu),
            fmt_val(sigma),
            fmt_val(recovery),
            fmt_val(worst),
            fmt_val(bound),
            format!("{:.0}", bound / kappa),
        ]);
    }
    t
}

/// A2: sweep the insertion duration scale. The scenario installs a legal
/// `Θ(n)` gradient and then inserts a shortcut across it. Expected: with a
/// too-short `I`, deep levels unlock while the shortcut still carries far
/// more skew than `s·κ` — the legality checker flags the window; with the
/// full duration the insertion is clean. This is *why* eq. (10) is as
/// large as it is.
#[must_use]
pub fn a2_insertion_scale(scale: Scale) -> Table {
    let scales: &[f64] = &[0.002, 0.02, 0.2];
    let n = 12usize;
    let rows = parallel_map(scales.to_vec(), |ins_scale| {
        // The gradient is installed at t = 1, one second before the
        // shortcut appears at t = 2 (the preset's fault script).
        let mut spec = presets::shortcut_gradient(n, ins_scale, 2.0, 1.0);
        let injected = presets::gradient_install_skew(n);
        spec.warmup = 0.0;
        spec.duration = 2.0 + scale.observe_secs() + 40.0;
        let mut sim = spec.build(2).expect("shortcut preset builds");
        campaign::apply_faults(&mut sim, &spec.faults);
        let g_hat = sim.params().g_tilde().unwrap();
        let slack = sim.params().discretization_slack(sim.tick_interval());
        let checker = GradientChecker::new(g_hat, 12, slack);
        let mut violating_instants = 0u32;
        let horizon = 2.0 + scale.observe_secs() + 20.0;
        let mut t_now = 2.0;
        while t_now <= horizon {
            sim.run_until_secs(t_now);
            if !checker.check(&sim).is_legal() {
                violating_instants += 1;
            }
            t_now += 0.25;
        }
        (ins_scale, injected, violating_instants)
    });

    let mut t = Table::new(
        "A2  insertion duration ablation — legality violations vs I scale",
        &[
            "I scale",
            "installed skew",
            "violating instants (0.25 s samples)",
        ],
    );
    t.caption(
        "Shortcut inserted across a legal Theta(n) gradient. Expected: scaling I down floods \
         deep levels too early and the legality checker flags the window; the paper-sized I \
         keeps every sampled instant legal.",
    );
    for (s, injected, v) in rows {
        t.row([fmt_val(s), fmt_val(injected), v.to_string()]);
    }
    t
}

/// A3: sweep the κ scale `c` in `κ = c(ε + µτ)` below and above the proven
/// threshold `c > 4` (eq. 9). Expected: `c < 4` voids the Lemma 5.3
/// disjointness margin — under adversarial estimates the engine's
/// invariant checker reports fast∧slow conflicts — while `c > 4` stays
/// clean; larger `c` costs proportionally more local skew budget.
#[must_use]
pub fn a3_kappa_slack(scale: Scale) -> Table {
    let cs: &[f64] = &[2.0, 3.0, 4.5, 8.0];
    let rows = parallel_map(cs.to_vec(), |c| {
        let mut spec = presets::base("kappa-slack", TopologySpec::Line { n: 10 });
        spec.drift = DriftSpec::Alternating;
        spec.estimates = EstimateSpec::OracleBias;
        spec.warmup = 0.0;
        spec.duration = scale.warmup_secs() + scale.observe_secs();
        let mut pb = base_params();
        pb.kappa_scale(c);
        if c <= 4.0 {
            pb.allow_unproven();
        }
        let mut sim = spec
            .builder_with(pb.build().unwrap(), 3)
            .expect("kappa-slack spec builds")
            .build()
            .unwrap();
        let mut conflicts = 0u32;
        let mut worst: f64 = 0.0;
        let horizon = scale.warmup_secs() + scale.observe_secs();
        let mut t_now = 0.5;
        while t_now <= horizon {
            sim.run_until_secs(t_now);
            conflicts += sim
                .verify_invariants()
                .iter()
                .filter(|v| v.contains("Lemma 5.3"))
                .count() as u32;
            worst = worst.max(local_skew(&sim));
            t_now += 0.5;
        }
        let info = sim.edge_info(EdgeKey::new(NodeId(0), NodeId(1))).unwrap();
        // The Lemma 5.3 disjointness margin: kappa/2 - 2 eps - 2 mu tau
        // must be positive for the proof to go through.
        let margin = info.kappa / 2.0 - 2.0 * info.epsilon - 2.0 * 0.1 * info.params.tau;
        (c, info.kappa, margin, conflicts, worst)
    });

    let mut t = Table::new(
        "A3  kappa slack ablation — eq. (9) requires kappa > 4(eps + mu tau)",
        &[
            "kappa scale c",
            "kappa",
            "Lemma 5.3 margin",
            "trigger conflicts",
            "measured local skew",
        ],
    );
    t.caption(
        "The margin column is kappa/2 - 2eps - 2mu*tau: negative means fast/slow \
         disjointness is unprovable (the guarantee is void even if benign runs do not \
         happen to conflict); c > 4 restores a positive margin. Local skew budget grows \
         ~linearly in c.",
    );
    for (c, kappa, margin, conflicts, worst) in rows {
        t.row([
            fmt_val(c),
            fmt_val(kappa),
            fmt_val(margin),
            conflicts.to_string(),
            fmt_val(worst),
        ]);
    }
    t
}

/// A4: sweep the flood/estimate refresh period `P` in message mode.
/// Expected: the derived uncertainty `ε(P)` — and with it `κ` and the
/// measured local skew — grows roughly linearly in `P`.
#[must_use]
pub fn a4_refresh_period(scale: Scale) -> Table {
    let periods: &[f64] = &[0.01, 0.05, 0.2];
    let rows = parallel_map(periods.to_vec(), |p| {
        let mut spec = presets::base("refresh-period", TopologySpec::Line { n: 10 });
        spec.estimates = EstimateSpec::Messages;
        spec.warmup = scale.warmup_secs();
        spec.duration = scale.observe_secs();
        let mut pb = base_params();
        pb.refresh_period(p);
        let mut sim = spec
            .builder_with(pb.build().unwrap(), 4)
            .expect("refresh-period spec builds")
            .build()
            .unwrap();
        sim.run_until_secs(scale.warmup_secs());
        let mut worst: f64 = 0.0;
        let horizon = scale.warmup_secs() + scale.observe_secs();
        let mut t_now = scale.warmup_secs();
        while t_now <= horizon {
            sim.run_until_secs(t_now);
            worst = worst.max(local_skew(&sim));
            t_now += 0.5;
        }
        let info = sim.edge_info(EdgeKey::new(NodeId(0), NodeId(1))).unwrap();
        let g_tilde = sim.params().g_tilde().unwrap();
        let bound = gradient_bound(sim.params(), g_tilde, info.kappa);
        (p, info.epsilon, info.kappa, worst, bound)
    });

    let mut t = Table::new(
        "A4  estimate refresh period (message mode, line(10))",
        &[
            "refresh P",
            "derived eps",
            "kappa",
            "measured local skew",
            "local bound",
        ],
    );
    t.caption(
        "Expected: eps (hence kappa and the bound) grows ~linearly with P; measured skew \
         follows the same ordering.",
    );
    for (p, eps, kappa, worst, bound) in rows {
        t.row([
            fmt_val(p),
            fmt_val(eps),
            fmt_val(kappa),
            fmt_val(worst),
            fmt_val(bound),
        ]);
    }
    t
}

/// A5: staged insertion (the paper's contribution) vs the simultaneous
/// decaying-weight insertion of \[16\] that §5.5 compares against. The
/// scenario installs a legal `Θ(n)` gradient and adds a shortcut across
/// it. Expected: the gentle decay and the staged schedule both stay legal
/// (decay trading handshake-freedom for a slower, `G̃`-scaled decay
/// budget); an aggressive decay violates legality — the quantitative form
/// of §5.5's trade-off discussion.
#[must_use]
pub fn a5_insertion_strategy(scale: Scale) -> Table {
    let n = 12usize;
    let injected = presets::gradient_install_skew(n);

    let variants: Vec<(&'static str, InsertionStrategy, f64)> = vec![
        ("staged (Listing 1/2)", InsertionStrategy::Staged, 0.02),
        (
            "decay, gentle (h=2)",
            InsertionStrategy::DecayingWeight { halving: 2.0 },
            1.0,
        ),
        (
            "decay, aggressive (h=0.005)",
            InsertionStrategy::DecayingWeight { halving: 0.005 },
            1.0,
        ),
    ];

    let rows = parallel_map(variants, |(name, strategy, ins_scale)| {
        let chord = EdgeKey::new(NodeId(0), NodeId::from(n - 1));
        let mut spec = presets::shortcut_gradient(n, ins_scale, 2.0, 2.0);
        spec.warmup = 0.0;
        spec.duration = 2.0 + scale.observe_secs() + 60.0;
        let mut pb = base_params();
        pb.g_tilde(1.5 * injected)
            .insertion_scale(ins_scale)
            .insertion_strategy(strategy);
        let mut sim = spec
            .builder_with(pb.build().unwrap(), 5)
            .expect("shortcut preset builds")
            .build()
            .unwrap();
        campaign::apply_faults(&mut sim, &spec.faults);
        let slack = sim.params().discretization_slack(sim.tick_interval());
        let checker = GradientChecker::new(1.5 * injected, 12, slack);
        let mut violations = 0u32;
        let mut completed_at: Option<f64> = None;
        let horizon = 2.0 + scale.observe_secs() + 40.0;
        let mut t = 2.25;
        while t <= horizon {
            sim.run_until_secs(t);
            if !checker.check(&sim).is_legal() {
                violations += 1;
            }
            if completed_at.is_none()
                && sim.level_between(NodeId(0), NodeId::from(n - 1)) == Some(Level::Infinite)
            {
                let info = sim.edge_info(chord).unwrap();
                if (sim.effective_kappa(chord).unwrap() - info.kappa).abs() < 1e-9 {
                    completed_at = Some(t - 2.0);
                }
            }
            t += 0.25;
        }
        let handshakes = sim.stats().handshakes_offered;
        (name, completed_at, violations, handshakes)
    });

    let mut t = Table::new(
        "A5  insertion strategies — staged (paper) vs decaying weight (Sec. 5.5 / [16])",
        &[
            "strategy",
            "insertion complete",
            "legality violations",
            "handshake msgs",
        ],
    );
    t.caption(
        "Shortcut across an installed legal Theta(n) gradient. Expected: staged and gently \
         decaying insertions stay legal (zero violations); the decaying strategy needs no \
         handshake; collapsing the weight aggressively violates legality — the Sec. 5.5 \
         trade-off, quantified.",
    );
    for (name, done, violations, handshakes) in rows {
        t.row([
            name.to_string(),
            done.map_or("> horizon".into(), |d| format!("{d:.2}s")),
            violations.to_string(),
            handshakes.to_string(),
        ]);
    }
    t
}
