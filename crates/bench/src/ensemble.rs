//! Monte-Carlo ensembles: run the same scenario across many seeds and
//! aggregate a scalar metric. Single-seed tables are perfectly
//! reproducible, but shape claims are stronger when the spread across
//! seeds is known; this module provides the machinery (used by tests and
//! available for full-scale studies).

use gcs_analysis::stats;

use crate::parallel_map;

/// Aggregated statistics of one metric across seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnsembleStats {
    /// Number of runs.
    pub runs: usize,
    /// Mean of the metric.
    pub mean: f64,
    /// Minimum observed.
    pub min: f64,
    /// Maximum observed.
    pub max: f64,
    /// Median.
    pub median: f64,
}

impl EnsembleStats {
    /// Relative spread `(max − min) / mean` (0 for degenerate data).
    #[must_use]
    pub fn relative_spread(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            (self.max - self.min) / self.mean
        }
    }
}

/// Runs `metric` for every seed in `seeds` (in parallel) and aggregates.
///
/// # Panics
///
/// Panics if `seeds` is empty or a run returns NaN.
pub fn run<F>(seeds: &[u64], metric: F) -> EnsembleStats
where
    F: Fn(u64) -> f64 + Sync,
{
    assert!(!seeds.is_empty(), "an ensemble needs at least one seed");
    let values = parallel_map(seeds.to_vec(), |s| {
        let v = metric(s);
        assert!(!v.is_nan(), "metric returned NaN for seed {s}");
        v
    });
    EnsembleStats {
        runs: values.len(),
        mean: stats::mean(&values),
        min: values.iter().copied().fold(f64::INFINITY, f64::min),
        max: stats::max(&values),
        median: stats::quantile(&values, 0.5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_core::SimBuilder;
    use gcs_net::Topology;
    use gcs_sim::DriftModel;

    #[test]
    fn aggregates_simple_metrics() {
        let s = run(&[1, 2, 3, 4], |seed| seed as f64);
        assert_eq!(s.runs, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.median, 2.5);
        assert!((s.relative_spread() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn skew_spread_across_seeds_is_modest() {
        // The global skew of a stabilized line should not be wildly
        // seed-dependent: the bound is deterministic, the noise is not.
        let stats = run(&[1, 2, 3, 4, 5], |seed| {
            let params = crate::experiments::base_params().build().unwrap();
            let mut sim = SimBuilder::new(params)
                .topology(Topology::line(8))
                .drift(DriftModel::RandomConstant)
                .seed(seed)
                .build()
                .unwrap();
            sim.run_until_secs(15.0);
            sim.snapshot().global_skew()
        });
        assert!(stats.mean > 0.0);
        assert!(stats.max <= 0.12, "a seed exceeded the n=8 estimate");
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_ensemble_rejected() {
        let _ = run(&[], |_| 0.0);
    }
}
