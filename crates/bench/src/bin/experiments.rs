//! Full-size experiment runner:
//!
//! ```sh
//! cargo run --release -p gcs-bench --bin experiments -- [quick|full] [filter]
//! ```
//!
//! `filter` is a substring matched against table titles (`e4`, `A3`, …).
//! Tables are printed to stdout and written as CSV files under
//! `results/`.

use std::fs;
use std::path::Path;

use gcs_bench::{all_experiments, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let filter = args
        .iter()
        .find(|a| *a != "quick" && *a != "full")
        .cloned()
        .unwrap_or_default();

    let out_dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(out_dir) {
        eprintln!("warning: cannot create {}: {e}", out_dir.display());
    }

    println!("gradient-clock-sync experiments (scale: {scale:?}, filter: {filter:?})\n");
    let started = std::time::Instant::now();
    for table in all_experiments(scale) {
        if !filter.is_empty()
            && !table
                .title()
                .to_lowercase()
                .contains(&filter.to_lowercase())
        {
            continue;
        }
        println!("{table}");
        let slug: String = table
            .title()
            .chars()
            .take_while(|c| !c.is_whitespace())
            .flat_map(char::to_lowercase)
            .collect();
        let path = out_dir.join(format!("{slug}.csv"));
        if let Err(e) = fs::write(&path, table.to_csv()) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    }
    println!("total: {:.1}s", started.elapsed().as_secs_f64());
}
