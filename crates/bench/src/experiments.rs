//! The nine theorem experiments (see crate docs and DESIGN.md §3).
//!
//! Every experiment sources its workload — topology, edge schedule,
//! drift, estimate layer, fault injections — from the scenario subsystem
//! ([`gcs_scenarios::presets`] / the registry), resized per sweep point;
//! the harness itself only chooses observation windows, seeds, baseline
//! policies, and parameter sweeps. The campaign runner therefore measures
//! the *same* workloads the experiments report on.

use gcs_analysis::report::fmt_val;
use gcs_analysis::{gradient_bound, kappa_diameter, local_skew, GradientChecker, Table};
use gcs_baselines::{MaxOnlyPolicy, SingleLevelPolicy};
use gcs_core::edge_state::Level;
use gcs_core::{ModePolicy, Params, ParamsBuilder, Simulation};
use gcs_net::{EdgeKey, EdgeParams, EdgeParamsMap, NodeId};
use gcs_scenarios::{campaign, presets, EstimateSpec, TopologySpec};

use crate::{parallel_map, Scale};

/// Baseline parameters every experiment starts from: `ρ = 1%`, `µ = 10%`,
/// hence `σ ≈ 4.95` (the scenario presets' defaults).
#[must_use]
pub fn base_params() -> ParamsBuilder {
    let mut pb = Params::builder();
    pb.rho(0.01).mu(0.1);
    pb
}

/// Samples `f` every `step` seconds over `[from, to]`, returning the max.
fn observe_max(
    sim: &mut Simulation,
    from: f64,
    to: f64,
    step: f64,
    mut f: impl FnMut(&Simulation) -> f64,
) -> f64 {
    let mut worst = f64::NEG_INFINITY;
    let mut t = from;
    while t <= to + 1e-9 {
        sim.run_until_secs(t);
        worst = worst.max(f(sim));
        t += step;
    }
    worst
}

/// Polls until `pred` holds (sampled every `step`), returning the time, or
/// `None` if `deadline` passes first.
fn time_until(
    sim: &mut Simulation,
    from: f64,
    deadline: f64,
    step: f64,
    mut pred: impl FnMut(&Simulation) -> bool,
) -> Option<f64> {
    let mut t = from;
    while t <= deadline + 1e-9 {
        sim.run_until_secs(t);
        if pred(sim) {
            return Some(t);
        }
        t += step;
    }
    None
}

// ---------------------------------------------------------------------
// E1 — Theorem 5.6: global skew O(D); growth and recovery rates.
// ---------------------------------------------------------------------

/// E1: max global skew vs network extent on a line under worst-case
/// (two-block) drift. Expected shape: linear in the κ-diameter, far below
/// the conservative static estimate `G̃`.
///
/// The workload is [`presets::line_worstcase`] at every sweep size (the
/// registry's `line-worstcase` is its canonical instance).
#[must_use]
pub fn e1_global_skew(scale: Scale) -> Table {
    let rows = parallel_map(scale.sizes().to_vec(), |n| {
        let mut spec = presets::line_worstcase(n);
        spec.warmup = scale.warmup_secs();
        spec.duration = scale.observe_secs();
        let mut sim = spec
            .builder(n as u64)
            .expect("line-worstcase preset builds")
            .track_diameter(true)
            .build()
            .unwrap();
        sim.run_until_secs(scale.warmup_secs());
        let max_g = observe_max(
            &mut sim,
            scale.warmup_secs(),
            scale.warmup_secs() + scale.observe_secs(),
            0.5,
            |s| s.snapshot().global_skew(),
        );
        let kdiam = kappa_diameter(&sim, 1).unwrap_or(f64::NAN);
        let dyn_diam = sim.dynamic_diameter().unwrap_or(f64::NAN);
        let iota = sim.params().iota();
        let g_tilde = sim.params().g_tilde().unwrap();
        (n, kdiam, dyn_diam, iota, max_g, g_tilde)
    });

    let mut t = Table::new(
        "E1  Theorem 5.6 — global skew vs diameter (line, two-block drift)",
        &[
            "n",
            "kappa-diam",
            "measured D(t)",
            "max G(t)",
            "G/D(t)",
            "G <= D+iota",
            "static G~",
        ],
    );
    t.caption(
        "D(t) is the *measured* dynamic estimate diameter (Def. 3.1, eta-relation tracked \
         from actual flood traffic). Expected: G linear in the diameter, and the sharp \
         Theorem 5.6 bound G <= D(t) + iota holds at the observation end.",
    );
    for (n, kdiam, dyn_diam, iota, max_g, g_tilde) in rows {
        t.row([
            n.to_string(),
            fmt_val(kdiam),
            fmt_val(dyn_diam),
            fmt_val(max_g),
            fmt_val(max_g / dyn_diam),
            (max_g <= dyn_diam + iota).to_string(),
            fmt_val(g_tilde),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E2 — Theorem 5.22 / Corollary 5.26: gradient skew O(d log(D/d)).
// ---------------------------------------------------------------------

/// E2: max skew between node pairs vs their path weight `κ_p`, on a long
/// line and on a torus (where the diameter scales as `√n`). Expected
/// shape: the measured skew stays below `(s(p)+1)·κ_p ~
/// κ_p·log_σ(Ĝ/κ_p)`, and skew *per unit weight* shrinks as the distance
/// grows (the hallmark of the gradient property), on both topologies.
#[must_use]
pub fn e2_gradient_skew(scale: Scale) -> Table {
    let n = scale.profile_n();
    let side = (n as f64).sqrt().round() as usize;
    let specs = vec![
        presets::line_worstcase(n),
        presets::base("torus-profile", TopologySpec::Torus { w: side, h: side }),
    ];

    let results = parallel_map(specs, |mut spec| {
        let name = format!("{}({})", spec.topology.family(), spec.topology.node_count());
        spec.warmup = scale.warmup_secs();
        spec.duration = scale.observe_secs();
        let mut sim = spec.build(2).expect("profile spec builds");
        sim.run_until_secs(scale.warmup_secs());

        // Track the max skew per hop distance over the observation window.
        let mut per_hop: Vec<f64> = Vec::new();
        let mut max_g = 0.0f64;
        let mut t_now = scale.warmup_secs();
        let horizon = scale.warmup_secs() + scale.observe_secs();
        while t_now <= horizon {
            sim.run_until_secs(t_now);
            let profile = gcs_analysis::skew_profile(&sim);
            if per_hop.len() < profile.len() {
                per_hop.resize(profile.len(), 0.0);
            }
            for (d, s) in profile.iter().enumerate() {
                per_hop[d] = per_hop[d].max(*s);
            }
            max_g = max_g.max(sim.snapshot().global_skew());
            t_now += 1.0;
        }

        let kappa = sim
            .edge_info(sim.graph().undirected_edges().next().unwrap())
            .unwrap()
            .kappa;
        let g_hat = max_g.max(kappa);
        let params = sim.params().clone();
        (name, kappa, g_hat, per_hop, params)
    });

    let mut t = Table::new(
        format!(
            "E2  Theorem 5.22 — gradient skew vs distance (line({n}) and torus, two-block drift)"
        ),
        &[
            "topology",
            "hops d",
            "kappa_p",
            "max skew",
            "bound (s(p)+1)k_p",
            "usage",
            "skew/d",
        ],
    );
    t.caption(
        "Expected: skew <= bound everywhere; skew/d falls as d grows (d log(D/d) shape) on \
         both 1-D and 2-D topologies. G^ anchored at the measured max global skew.",
    );
    for (name, kappa, g_hat, per_hop, params) in results {
        let mut d = 1usize;
        while d <= per_hop.len() {
            let kappa_p = d as f64 * kappa;
            let bound = gradient_bound(&params, g_hat, kappa_p);
            let measured = per_hop[d - 1];
            t.row([
                name.clone(),
                d.to_string(),
                fmt_val(kappa_p),
                fmt_val(measured),
                fmt_val(bound),
                format!("{:.1}%", 100.0 * measured / bound),
                fmt_val(measured / d as f64),
            ]);
            d *= 2;
        }
    }
    t
}

// ---------------------------------------------------------------------
// E3 — policy comparison: A_OPT vs sqrt-blocking vs max-only.
// ---------------------------------------------------------------------

/// E3: worst local skew and, more importantly, the *provisionable
/// guarantee* for the three policies. Expected: the guarantee columns grow
/// like `log D` / `√D` / `D`; measured skews respect each policy's budget.
///
/// The adversary is [`presets::drift_flip`] (flip-flop drift + hiding
/// estimates, the registry's `drift-flip` family) at every sweep size;
/// only the mode policy differs between the three contenders.
#[must_use]
pub fn e3_policy_comparison(scale: Scale) -> Table {
    #[derive(Clone, Copy)]
    enum Which {
        Aopt,
        Single,
        MaxOnly,
    }
    let jobs: Vec<(usize, Which)> = scale
        .sizes()
        .iter()
        .flat_map(|&n| {
            [Which::Aopt, Which::Single, Which::MaxOnly]
                .into_iter()
                .map(move |w| (n, w))
        })
        .collect();

    let results = parallel_map(jobs, |(n, which)| {
        let mut spec = presets::drift_flip(n, 5.0);
        spec.warmup = scale.warmup_secs();
        spec.duration = scale.observe_secs();
        // Shared facts needed for thresholds/bounds, from a static probe
        // of the same line at the same parameters.
        let probe = presets::base("e3-probe", TopologySpec::Line { n })
            .build(0)
            .expect("probe spec builds");
        let g_tilde = probe.params().g_tilde().unwrap();
        let kappa = probe
            .edge_info(EdgeKey::new(NodeId(0), NodeId(1)))
            .unwrap()
            .kappa;
        let (name, policy, guarantee): (&str, Option<Box<dyn ModePolicy>>, f64) = match which {
            Which::Aopt => ("aopt", None, gradient_bound(probe.params(), g_tilde, kappa)),
            Which::Single => {
                let b = SingleLevelPolicy::sqrt_threshold(0.01, 0.1, g_tilde, kappa);
                (
                    "single-level",
                    Some(Box::new(SingleLevelPolicy::new(b))),
                    1.5 * b + kappa,
                )
            }
            Which::MaxOnly => ("max-only", Some(Box::new(MaxOnlyPolicy)), g_tilde),
        };
        let mut builder = spec.builder(3).expect("drift-flip preset builds");
        if let Some(p) = policy {
            builder = builder.policy(p);
        }
        let mut sim = builder.build().unwrap();
        sim.run_until_secs(scale.warmup_secs());
        let worst = observe_max(
            &mut sim,
            scale.warmup_secs(),
            scale.warmup_secs() + scale.observe_secs(),
            0.5,
            local_skew,
        );
        (n, name, worst, guarantee)
    });

    let mut t = Table::new(
        "E3  local skew: A_OPT (log D) vs single-level (sqrt D) vs max-only (D)",
        &[
            "n",
            "policy",
            "measured local skew",
            "provisionable guarantee",
            "usage",
        ],
    );
    t.caption(
        "Line, flip-flop drift, adversarial (hiding) estimates. The guarantee column is what \
         each algorithm can promise: Theta(k log_sigma(G/k)) vs Theta(sqrt(rho G/mu)) vs Theta(G); \
         the ranking and growth shapes are the paper's headline comparison (Section 2, 5.5).",
    );
    for (n, name, worst, guarantee) in results {
        t.row([
            n.to_string(),
            name.to_string(),
            fmt_val(worst),
            fmt_val(guarantee),
            format!("{:.1}%", 100.0 * worst / guarantee),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E4 — Theorem 5.25: stabilization time of a new edge, O(G~/mu).
// ---------------------------------------------------------------------

/// E4: time from a chord's appearance until it is inserted on all levels,
/// vs network size. Expected shape: linear in `G̃ ∝ n` and close to
/// `I(G̃)/β` (the logical insertion duration converted to real time).
///
/// The scenario (ring + antipodal chord at `t = 2 s`) comes from the
/// scenario subsystem — [`presets::ring_chord`], the registry's
/// `ring-chord` family — so the harness and the campaign runner measure
/// the same workload.
#[must_use]
pub fn e4_stabilization_time(scale: Scale) -> Table {
    const INSERTION_SCALE: f64 = 0.05;
    let rows = parallel_map(scale.sizes().to_vec(), |n| {
        let mut sim = presets::ring_chord(n, INSERTION_SCALE)
            .build(n as u64)
            .expect("ring-chord preset builds");
        let g_tilde = sim.params().g_tilde().unwrap();
        let predicted = sim.params().insertion_duration_static(g_tilde) / sim.params().beta();
        let deadline = 2.0 + 4.0 * predicted + 20.0;
        let done = time_until(&mut sim, 2.0, deadline, 0.25, |s| {
            s.level_between(NodeId(0), NodeId::from(n / 2)) == Some(Level::Infinite)
        });
        (n, g_tilde, predicted, done.map(|t| t - 2.0))
    });

    let mut t = Table::new(
        "E4  Theorem 5.25 — stabilization time of a new edge (ring + antipodal chord)",
        &[
            "n",
            "G~",
            "predicted I(G~)/beta",
            "measured",
            "measured/predicted",
        ],
    );
    t.caption(format!(
        "Insertion scale {INSERTION_SCALE} (same for every n, so the *shape* is unaffected). \
         Expected: measured time linear in n, ratio ~1 (plus handshake and alignment slack)."
    ));
    for (n, g_tilde, predicted, measured) in rows {
        let m = measured.unwrap_or(f64::NAN);
        t.row([
            n.to_string(),
            fmt_val(g_tilde),
            fmt_val(predicted),
            fmt_val(m),
            fmt_val(m / predicted),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E5 — Theorem 8.1: stabilization needs Omega(D) for any algorithm.
// ---------------------------------------------------------------------

/// E5: the lower-bound construction. A gradient-legal skew of `Θ(n)`
/// (2κ per edge, below every trigger threshold) is installed on a line —
/// the state the adversary of Theorem 8.1 can always reach — and then an
/// edge between the endpoints appears. Expected: the time until the new
/// edge's skew falls below its stable gradient bound grows linearly with
/// `n`, and is at least the information-theoretic floor
/// `(G − bound)/(β − α)` (clock rates alone limit how fast skew closes).
///
/// Both the shortcut schedule and the gradient install are data: the
/// workload is [`presets::shortcut_gradient`] (registry family
/// `line-shortcut`), its scripted clock-offset faults replayed via
/// [`campaign::apply_faults`].
#[must_use]
pub fn e5_lower_bound(scale: Scale) -> Table {
    let rows = parallel_map(scale.sizes().to_vec(), |n| {
        let mut spec = presets::shortcut_gradient(n, 0.05, 2.0, 2.0);
        let params = spec.params().expect("shortcut preset params");
        let injected = presets::gradient_install_skew(n);
        // Generous horizon: the settle poll below never outruns it.
        spec.duration = 20.0 * injected / (params.beta() - params.alpha()) + 120.0;
        let kappa = presets::default_edge_kappa();
        let mut sim = spec.build(n as u64).expect("shortcut preset builds");
        // Replay the scripted gradient install at the very instant the
        // shortcut appears (events at t = 2 have fired): node i leads
        // node i+1 by 2 kappa.
        campaign::apply_faults(&mut sim, &spec.faults);
        let g_at_insert = sim.snapshot().skew(NodeId(0), NodeId::from(n - 1));

        let g_hat = sim.params().g_tilde().unwrap();
        let bound = gradient_bound(sim.params(), g_hat, kappa);
        let floor = (g_at_insert - bound) / (sim.params().beta() - sim.params().alpha());
        let settled = time_until(&mut sim, 2.0, 2.0 + 20.0 * floor + 60.0, 0.1, |s| {
            s.snapshot().skew(NodeId(0), NodeId::from(n - 1)) <= bound
        });
        (n, g_at_insert, bound, floor, settled.map(|t| t - 2.0))
    });

    let mut t = Table::new(
        "E5  Theorem 8.1 — Omega(D) stabilization lower bound (line + endpoint edge)",
        &[
            "n",
            "installed skew G",
            "stable bound",
            "rate floor (G-b)/(beta-alpha)",
            "measured",
            "measured/floor",
        ],
    );
    t.caption(
        "A legal Theta(n) gradient exists (Thm 8.1's adversary); once the shortcut appears, \
         bounded clock rates alone force >= floor seconds before its skew is within bound. \
         Expected: measured grows linearly with n and stays above the floor (ratio >= 1).",
    );
    for (n, g_at_insert, bound, floor, measured) in rows {
        let m = measured.unwrap_or(f64::NAN);
        t.row([
            n.to_string(),
            fmt_val(g_at_insert),
            fmt_val(bound),
            fmt_val(floor),
            fmt_val(m),
            fmt_val(m / floor),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E6 — self-stabilization: recovery rate mu(1-rho) - 2rho.
// ---------------------------------------------------------------------

/// E6: recovery time after corrupting one clock by `X`, for a sweep of
/// `X`. Expected: linear in `X` with slope `≈ 1/(µ(1−ρ)−2ρ)`.
///
/// The corruption is the [`presets::self_heal`] fault script (registry
/// family `self-heal`), resized to `X` per sweep point.
#[must_use]
pub fn e6_self_stabilization(scale: Scale) -> Table {
    let magnitudes: &[f64] = match scale {
        Scale::Quick => &[0.1, 0.2, 0.4],
        Scale::Full => &[0.1, 0.2, 0.4, 0.8, 1.6],
    };
    let rows = parallel_map(magnitudes.to_vec(), |x| {
        let mut spec = presets::self_heal(12, 5.0, x);
        let params = spec.params().expect("self-heal preset params");
        let rate = params.mu() * (1.0 - params.rho()) - 2.0 * params.rho();
        spec.warmup = 0.0;
        spec.duration = 5.0 + 4.0 * x / rate + 40.0;
        let mut sim = spec.build(6).expect("self-heal preset builds");
        // Learn the steady-state fluctuation band first, so the settle
        // threshold sits above the noise floor.
        let steady = sim
            .record_trace(5.0, 0.1)
            .global_skew_series()
            .iter()
            .map(|&(_, g)| g)
            .fold(0.0f64, f64::max);
        campaign::apply_faults(&mut sim, &spec.faults);
        // Record the decay and fit its linear rate (Theorem 5.6 II).
        let trace = sim.record_trace(5.0 + 4.0 * x / rate + 30.0, 0.1);
        let series = trace.global_skew_series();
        let measured_rate = gcs_analysis::convergence::linear_decay_rate(&series, steady + 0.2 * x);
        let recovered =
            gcs_analysis::convergence::settle_time(&series, steady + 0.05 * x).map(|t| t - 5.0);
        (x, rate, measured_rate, recovered)
    });

    let mut t = Table::new(
        "E6  self-stabilization — recovery time vs injected skew (line(12))",
        &[
            "injected X",
            "guaranteed rate",
            "measured decay rate",
            "predicted X/rate",
            "measured",
            "measured/predicted",
        ],
    );
    t.caption(
        "Theorem 5.6 (II): excess skew decays at rate >= mu(1-rho)-2rho. Expected: the fitted \
         decay rate meets or exceeds the guarantee, recovery time linear in X (ratio <= ~1).",
    );
    for (x, rate, measured_rate, measured) in rows {
        let m = measured.unwrap_or(f64::NAN);
        t.row([
            fmt_val(x),
            fmt_val(rate),
            fmt_val(measured_rate),
            fmt_val(x / rate),
            fmt_val(m),
            fmt_val(m / (x / rate)),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E7 — Section 7: dynamic global-skew estimates for insertion.
// ---------------------------------------------------------------------

/// E7: full-insertion time of a chord under (a) the derived static `G̃`,
/// (b) a 10× conservative static `G̃`, (c) §7 dynamic node-local
/// `G̃_u(t)`. Expected: (b) pays the conservatism linearly; (c) tracks the
/// *actual* skew and lands near (a) or below, despite the same pessimistic
/// a-priori estimate as (b).
///
/// All three variants run the [`presets::ring_chord`] workload; only the
/// insertion-estimate parameters differ (the [`ScenarioSpec::builder_with`]
/// seam).
///
/// [`ScenarioSpec::builder_with`]: gcs_scenarios::ScenarioSpec::builder_with
#[must_use]
pub fn e7_dynamic_estimates(scale: Scale) -> Table {
    let n = match scale {
        Scale::Quick => 12,
        Scale::Full => 24,
    };
    const SCALE: f64 = 0.02;
    let probe = presets::base("e7-probe", TopologySpec::Ring { n })
        .build(0)
        .expect("probe spec builds");
    let derived = probe.params().g_tilde().unwrap();

    let variants: Vec<(&'static str, Params)> = vec![
        ("static, derived G~", {
            let mut pb = base_params();
            pb.g_tilde(derived).insertion_scale(SCALE);
            pb.build().unwrap()
        }),
        ("static, 10x G~", {
            let mut pb = base_params();
            pb.g_tilde(10.0 * derived).insertion_scale(SCALE);
            pb.build().unwrap()
        }),
        ("dynamic (Sec. 7)", {
            let mut pb = base_params();
            pb.g_tilde(10.0 * derived)
                .insertion_scale(SCALE)
                .b_constant(4.0)
                .dynamic_estimates(true);
            pb.build().unwrap()
        }),
    ];

    let rows = parallel_map(variants, |(name, params)| {
        let mut spec = presets::ring_chord(n, SCALE);
        spec.duration = 620.0;
        let mut sim = spec
            .builder_with(params, 7)
            .expect("ring-chord preset builds")
            .build()
            .unwrap();
        let done = time_until(&mut sim, 2.0, 600.0, 0.25, |s| {
            s.level_between(NodeId(0), NodeId::from(n / 2)) == Some(Level::Infinite)
        });
        let actual_g = sim.snapshot().global_skew();
        (name, done.map(|t| t - 2.0), actual_g)
    });

    let mut t = Table::new(
        format!("E7  Section 7 — dynamic G~ estimates vs static (ring({n}) + chord)"),
        &[
            "insertion estimate",
            "full-insertion time",
            "actual global skew",
        ],
    );
    t.caption(
        "All variants share the same pessimistic a-priori G~ except the first. Expected: the \
         10x static variant is ~10x slower than the derived one; the dynamic variant ignores \
         the pessimism and tracks the (tiny) actual skew.",
    );
    for (name, done, g) in rows {
        t.row([
            name.to_string(),
            done.map_or("> deadline".to_string(), fmt_val),
            fmt_val(g),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E8 — model generality: churn + mobility.
// ---------------------------------------------------------------------

/// E8: invariants and bounds under heavy scripted churn. Expected: zero
/// invariant violations, zero gradient-legality violations (legality is
/// defined over the level sets, which is exactly what staged insertion
/// protects), global skew within `G̃`.
#[must_use]
pub fn e8_churn(scale: Scale) -> Table {
    let horizon = scale.observe_secs() + scale.warmup_secs();
    // The churn workload is the scenario subsystem's `churn` preset (the
    // registry's `churn-storm` is the same family at its canonical size);
    // the harness only re-sizes the window and sweeps topologies.
    let configs = vec![
        ("grid churn", TopologySpec::Grid { w: 4, h: 4 }, 8u64),
        (
            "geometric churn",
            TopologySpec::Geometric {
                n: 16,
                radius: 0.45,
            },
            9u64,
        ),
        ("complete churn", TopologySpec::Complete { n: 8 }, 10u64),
    ];
    let rows = parallel_map(configs, |(name, topology, seed)| {
        let mut spec = presets::churn("churn-sweep", topology);
        spec.warmup = 0.0;
        spec.duration = horizon;
        let mut sim = spec.build(seed).expect("churn preset builds");
        let g_tilde = sim.params().g_tilde().unwrap();
        let slack = sim.params().discretization_slack(sim.tick_interval());
        let checker = GradientChecker::new(g_tilde, 12, slack);
        let mut invariant_violations = 0u32;
        let mut legality_violations = 0u32;
        let mut max_g = 0.0f64;
        let mut t_now = 1.0;
        while t_now <= horizon {
            sim.run_until_secs(t_now);
            if !sim.verify_invariants().is_empty() {
                invariant_violations += 1;
            }
            if !checker.check(&sim).is_legal() {
                legality_violations += 1;
            }
            max_g = max_g.max(sim.snapshot().global_skew());
            t_now += 1.0;
        }
        let stats = sim.stats();
        (
            name,
            invariant_violations,
            legality_violations,
            max_g,
            g_tilde,
            stats.edge_removals,
            stats.messages_dropped,
        )
    });

    let mut t = Table::new(
        "E8  model generality — invariants and bounds under churn",
        &[
            "scenario",
            "invariant viol.",
            "legality viol.",
            "max G",
            "G~",
            "edge removals",
            "msgs dropped",
        ],
    );
    t.caption("Expected: zero violations; global skew within G~ throughout heavy churn.");
    for (name, iv, lv, max_g, g_tilde, removals, dropped) in rows {
        t.row([
            name.to_string(),
            iv.to_string(),
            lv.to_string(),
            fmt_val(max_g),
            fmt_val(g_tilde),
            removals.to_string(),
            dropped.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E9 — heterogeneous edges: bounds in terms of kappa_p.
// ---------------------------------------------------------------------

/// E9: a line whose middle edge is progressively noisier. Expected: the
/// skew across the noisy edge grows with its `ε`, but stays within *its*
/// κ-weighted bound — the weighted generalization of §4.1.
///
/// The adversary (line + hiding estimates) is a scenario preset; the
/// per-edge ε override is the physical layer, supplied through the
/// builder seam.
#[must_use]
pub fn e9_heterogeneous(scale: Scale) -> Table {
    let factors: &[f64] = &[1.0, 4.0, 16.0];
    let n = 12usize;
    let mid = EdgeKey::new(NodeId::from(n / 2 - 1), NodeId::from(n / 2));
    let rows = parallel_map(factors.to_vec(), |f| {
        let base_edge = EdgeParams::default();
        let mut map = EdgeParamsMap::uniform(base_edge);
        map.set(
            mid,
            EdgeParams::new(
                base_edge.epsilon * f,
                base_edge.tau,
                base_edge.delay_min,
                base_edge.delay_max,
            ),
        );
        let mut spec = presets::base("line-heterogeneous", TopologySpec::Line { n });
        spec.estimates = EstimateSpec::OracleHide;
        spec.warmup = scale.warmup_secs();
        spec.duration = scale.observe_secs();
        let mut sim = spec
            .builder(f as u64)
            .expect("heterogeneous spec builds")
            .edge_params(map)
            .build()
            .unwrap();
        sim.run_until_secs(scale.warmup_secs());
        let worst_mid = observe_max(
            &mut sim,
            scale.warmup_secs(),
            scale.warmup_secs() + scale.observe_secs(),
            0.5,
            |s| s.snapshot().skew(mid.lo(), mid.hi()),
        );
        let info = sim.edge_info(mid).unwrap();
        let g_hat = sim.params().g_tilde().unwrap();
        let bound = gradient_bound(sim.params(), g_hat, info.kappa);
        (f, info.epsilon, info.kappa, worst_mid, bound)
    });

    let mut t = Table::new(
        "E9  heterogeneous edges — skew across a noisy edge vs its kappa bound (line(12))",
        &[
            "eps factor",
            "eps",
            "kappa",
            "max skew",
            "kappa bound",
            "usage",
        ],
    );
    t.caption(
        "Expected: absolute skew across the noisy edge grows with eps, but its usage of the \
         kappa-weighted bound stays level — the bound is per-weight, not per-hop.",
    );
    for (f, eps, kappa, worst, bound) in rows {
        t.row([
            format!("{f}x"),
            fmt_val(eps),
            fmt_val(kappa),
            fmt_val(worst),
            fmt_val(bound),
            format!("{:.1}%", 100.0 * worst / bound),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// E10 — partitions: why the model requires connectivity.
// ---------------------------------------------------------------------

/// E10: a ring is split into two halves for 30 s, then merged. Expected:
/// the cross-cut skew grows at (up to) the full drift rate `2ρ` while the
/// cut is open — no algorithm can do better, which is why the paper's
/// global bound presumes connectivity — while each side stays internally
/// tight; after the merge the skew collapses at the recovery rate and the
/// cut edges re-run the staged insertion.
///
/// The workload is [`presets::partition_heal`] — the registry's
/// `partition-heal` scenario, verbatim.
#[must_use]
pub fn e10_partition(scale: Scale) -> Table {
    let (split, merge) = (10.0, 40.0);
    let mut spec = presets::partition_heal(16, split, merge);
    spec.duration = merge + scale.observe_secs();
    let mut sim = spec.build(10).expect("partition-heal preset builds");

    let side = |sim: &Simulation, lo: u32, hi: u32| {
        let snap = sim.snapshot();
        let vals: Vec<f64> = (lo..hi).map(|u| snap.logical[u as usize]).collect();
        vals.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - vals.iter().copied().fold(f64::INFINITY, f64::min)
    };

    let mut t = Table::new(
        "E10  partition & merge — the connectivity requirement (ring(16), cut open 30 s)",
        &[
            "t",
            "phase",
            "global skew",
            "left-side skew",
            "right-side skew",
        ],
    );
    t.caption(
        "Expected: during the open cut the global (= cross-cut) skew grows at ~2 rho per \
         second while each side stays tight; after the merge it collapses at the \
         mu(1-rho)-2rho recovery rate.",
    );
    let horizon = merge + scale.observe_secs();
    for &at in &[
        5.0,
        split,
        20.0,
        30.0,
        merge,
        merge + 5.0,
        merge + 15.0,
        horizon,
    ] {
        sim.run_until_secs(at);
        let phase = if at < split {
            "connected"
        } else if at < merge {
            "cut open"
        } else {
            "merged"
        };
        t.row([
            format!("{at:.0}s"),
            phase.to_string(),
            fmt_val(sim.snapshot().global_skew()),
            fmt_val(side(&sim, 0, 8)),
            fmt_val(side(&sim, 8, 16)),
        ]);
    }
    t
}
