//! Criterion micro/throughput benchmarks of the simulation engine itself:
//! end-to-end node-tick throughput, policy decision cost, event-queue
//! operations, and the legality checker's APSP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use gcs_analysis::paths::level_graph;
use gcs_core::edge_state::Level;
use gcs_core::{AoptPolicy, Mode, ModePolicy, NeighborView, NodeView, Params, SimBuilder};
use gcs_net::Topology;
use gcs_sim::{DriftModel, EventQueue, SimTime};

fn params() -> Params {
    Params::builder().rho(0.01).mu(0.1).build().unwrap()
}

fn bench_simulation_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_throughput");
    group.sample_size(10);
    for n in [8usize, 32, 64] {
        group.bench_with_input(BenchmarkId::new("line_5s", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = SimBuilder::new(params())
                    .topology(Topology::line(n))
                    .drift(DriftModel::TwoBlock)
                    .seed(1)
                    .build()
                    .unwrap();
                sim.run_until_secs(5.0);
                sim.snapshot().global_skew()
            });
        });
    }
    // Message-based estimates add dead-reckoning bookkeeping per flood.
    group.bench_function("line16_5s_message_mode", |b| {
        b.iter(|| {
            let mut sim = SimBuilder::new(params())
                .topology(Topology::line(16))
                .estimates(gcs_core::EstimateMode::Messages)
                .drift(DriftModel::TwoBlock)
                .seed(2)
                .build()
                .unwrap();
            sim.run_until_secs(5.0);
            sim.snapshot().global_skew()
        });
    });
    // Churn exercises edge events, handshakes, and message drops.
    group.bench_function("grid3x3_churn_10s", |b| {
        let topo = Topology::grid(3, 3);
        let schedule = gcs_net::NetworkSchedule::churn(
            &topo,
            gcs_net::ChurnOptions {
                horizon: 10.0,
                mean_up: 2.0,
                mean_down: 2.0,
                direction_skew_max: 0.003,
                start_up_probability: 0.7,
            },
            3,
        );
        b.iter(|| {
            let mut pb = Params::builder();
            pb.rho(0.01).mu(0.1).insertion_scale(0.05);
            let mut sim = SimBuilder::new(pb.build().unwrap())
                .schedule(schedule.clone())
                .seed(3)
                .build()
                .unwrap();
            sim.run_until_secs(10.0);
            sim.stats().messages_delivered
        });
    });
    // Diameter tracking costs O(n) per delivered flood.
    group.bench_function("line16_5s_diameter_tracking", |b| {
        b.iter(|| {
            let mut sim = SimBuilder::new(params())
                .topology(Topology::line(16))
                .drift(DriftModel::TwoBlock)
                .track_diameter(true)
                .seed(4)
                .build()
                .unwrap();
            sim.run_until_secs(5.0);
            sim.dynamic_diameter().unwrap()
        });
    });
    group.finish();
}

fn bench_policy_decide(c: &mut Criterion) {
    let policy = AoptPolicy::new(64);
    let neighbors: Vec<NeighborView> = (0..6)
        .map(|i| NeighborView {
            estimate: Some(10.0 + f64::from(i) * 0.01),
            kappa: 0.011,
            epsilon: 0.002,
            tau: 0.01,
            delta: 0.002,
            level: if i % 2 == 0 {
                Level::Infinite
            } else {
                Level::Finite(3)
            },
        })
        .collect();
    let view = NodeView {
        logical: 10.0,
        max_estimate: 10.05,
        current_mode: Mode::Slow,
        iota: 0.001,
        mu: 0.1,
        rho: 0.01,
        neighbors: &neighbors,
    };
    c.bench_function("aopt_policy_decide_deg6", |b| {
        b.iter(|| policy.decide(criterion::black_box(&view)))
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                // Pseudo-random but deterministic times.
                let t = ((i.wrapping_mul(2654435761)) % 100_000) as f64 * 1e-3;
                q.schedule(SimTime::from_secs(t), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
    // The engine's steady-state pattern: a standing backlog with one pop
    // and one near-future push per event (what the calendar layout is for).
    c.bench_function("event_queue_churn_backlog3k", |b| {
        let mut q = EventQueue::new();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut t = 0.0f64;
        for i in 0..3_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            q.schedule(SimTime::from_secs(t + (x >> 44) as f64 * 1e-8), i);
        }
        b.iter(|| {
            let (when, v) = q.pop().expect("standing backlog");
            t = when.as_secs();
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            q.schedule(SimTime::from_secs(t + (x >> 44) as f64 * 1e-8), v);
            v
        })
    });
}

/// The acceptance benchmark of the engine overhaul: a 1024-node ring under
/// alternating worst-case drift, driven one tick-dominated second. The
/// `BENCH_engine.json` artifact (`gcs-scenarios bench`) tracks the full
/// 10-second workload; this is the in-tree criterion view of the same hot
/// path.
fn bench_ring_1024_tick_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_1024");
    group.sample_size(10);
    group.bench_function("tick_loop_1s", |b| {
        b.iter(|| {
            let mut sim = SimBuilder::new(params())
                .topology(Topology::ring(1024))
                .drift(DriftModel::Alternating)
                .seed(0)
                .build()
                .unwrap();
            sim.run_until_secs(1.0);
            sim.stats().mode_evaluations
        });
    });
    group.finish();
}

/// Per-node view assembly + decision + stability certificate — the unit of
/// work the dirty-set machinery skips.
fn bench_neighbor_views(c: &mut Criterion) {
    let mut sim = SimBuilder::new(params())
        .topology(Topology::ring(64))
        .drift(DriftModel::Alternating)
        .seed(5)
        .build()
        .unwrap();
    sim.run_until_secs(2.0);
    sim.set_full_reevaluation(true);
    c.bench_function("reevaluate_ring64_full_pass", |b| {
        b.iter(|| {
            let t = sim.now().as_secs() + sim.tick_interval();
            sim.run_until_secs(t);
            sim.stats().mode_evaluations
        });
    });
}

fn bench_legality_apsp(c: &mut Criterion) {
    let mut sim = SimBuilder::new(params())
        .topology(Topology::grid(8, 8))
        .drift(DriftModel::TwoBlock)
        .seed(2)
        .build()
        .unwrap();
    sim.run_until_secs(2.0);
    c.bench_function("level_graph_apsp_grid8x8", |b| {
        b.iter(|| level_graph(&sim, 1).all_pairs().diameter())
    });
}

criterion_group!(
    benches,
    bench_simulation_throughput,
    bench_ring_1024_tick_loop,
    bench_neighbor_views,
    bench_policy_decide,
    bench_event_queue,
    bench_legality_apsp
);
criterion_main!(benches);
