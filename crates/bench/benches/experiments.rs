//! `cargo bench -p gcs-bench --bench experiments` — prints the quick-scale
//! experiment tables (one per reproduced theorem; see DESIGN.md §3 and
//! EXPERIMENTS.md for the recorded full-scale results).

use gcs_bench::{all_experiments, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    println!(
        "gradient-clock-sync experiment suite (scale: {scale:?})\n\
         one table per reproduced result; see EXPERIMENTS.md for interpretation\n"
    );
    let started = std::time::Instant::now();
    for table in all_experiments(scale) {
        println!("{table}");
    }
    println!("total: {:.1}s", started.elapsed().as_secs_f64());
}
