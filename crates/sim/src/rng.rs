//! Deterministic, splittable random-number streams.
//!
//! Every stochastic choice in the workspace (message delays, drift walks,
//! churn schedules, estimate noise) draws from a stream derived from a single
//! root seed, so an entire experiment is reproducible from one `u64`.
//!
//! Streams are derived by hashing `(seed, label, index)` through SplitMix64,
//! which gives independent, well-mixed sub-seeds without any shared state —
//! adding a new consumer of randomness never perturbs existing streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Returns the SplitMix64 finalizer output for the given state.
///
/// SplitMix64 is the standard seeding mixer (Steele, Lea, Flood 2014); it is
/// bijective and passes BigCrush, which is ample for deriving sub-seeds.
#[must_use]
fn splitmix64_output(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a sub-seed from a root seed, a textual label and an index.
///
/// The label keeps independent subsystems (e.g. "delay" vs "drift") on
/// disjoint streams even when they use the same index.
#[must_use]
pub fn derive_seed(root: u64, label: &str, index: u64) -> u64 {
    let mut state = root ^ 0xD6E8_FEB8_6659_FD93;
    for &b in label.as_bytes() {
        state = splitmix64_output(
            state
                .wrapping_add(u64::from(b))
                .wrapping_mul(0x100_0000_01B3),
        );
    }
    splitmix64_output(state ^ splitmix64_output(index.wrapping_add(0x9E37_79B9_7F4A_7C15)))
}

/// Creates a seeded [`StdRng`] for the stream `(root, label, index)`.
///
/// # Example
///
/// ```
/// use rand::Rng;
///
/// let mut a = gcs_sim::rng::stream(42, "delay", 0);
/// let mut b = gcs_sim::rng::stream(42, "delay", 0);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>()); // identical streams
///
/// let mut c = gcs_sim::rng::stream(42, "delay", 1);
/// let _ = c.gen::<u64>(); // a different, independent stream
/// ```
#[must_use]
pub fn stream(root: u64, label: &str, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(root, label, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(1, "x", 2), derive_seed(1, "x", 2));
    }

    #[test]
    fn different_labels_give_different_seeds() {
        assert_ne!(derive_seed(1, "drift", 0), derive_seed(1, "delay", 0));
    }

    #[test]
    fn different_indices_give_different_seeds() {
        assert_ne!(derive_seed(1, "x", 0), derive_seed(1, "x", 1));
    }

    #[test]
    fn different_roots_give_different_seeds() {
        assert_ne!(derive_seed(1, "x", 0), derive_seed(2, "x", 0));
    }

    #[test]
    fn streams_reproduce() {
        let xs: Vec<u64> = stream(7, "a", 3)
            .sample_iter(rand::distributions::Standard)
            .take(16)
            .collect();
        let ys: Vec<u64> = stream(7, "a", 3)
            .sample_iter(rand::distributions::Standard)
            .take(16)
            .collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn sub_seeds_look_independent() {
        // A weak sanity check: low-order bits should differ across indices.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            seen.insert(derive_seed(0, "stream", i) & 0xFFFF);
        }
        // With 65536 buckets and 1000 draws we expect nearly all distinct.
        assert!(seen.len() > 950, "only {} distinct low words", seen.len());
    }
}
