//! Simulated time points and durations.
//!
//! The paper reasons about real time `t ∈ R⁺₀`; we represent it as a finite
//! `f64` number of seconds wrapped in a newtype so that it is totally ordered
//! (NaN is rejected at construction) and cannot be confused with clock
//! *values*, which are plain `f64` throughout the workspace.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated real time, in seconds since the start of the run.
///
/// `SimTime` is totally ordered and therefore usable as a priority in the
/// [`EventQueue`](crate::EventQueue).
///
/// # Panics
///
/// Constructors panic if given a non-finite value; simulated time must always
/// be a real number.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

/// A length of simulated real time, in seconds.
///
/// Durations may be zero but never negative or non-finite.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimDuration(f64);

impl SimTime {
    /// The origin of simulated time (`t = 0`).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point from a number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN, infinite, or negative.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// Returns the time as a number of seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({}) is after self ({})",
            earlier.0,
            self.0
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Returns the earlier of two time points.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the later of two time points.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration from a number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN, infinite, or negative.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration must be finite and non-negative, got {secs}"
        );
        SimDuration(secs)
    }

    /// Returns the duration as a number of seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Multiplies the duration by a non-negative scalar.
    ///
    /// # Panics
    ///
    /// Panics if the scalar is negative or the result is non-finite.
    #[must_use]
    pub fn scaled(self, factor: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * factor)
    }
}

impl Eq for SimTime {}
impl Eq for SimDuration {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Construction forbids NaN, so a total order exists.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl PartialOrd for SimDuration {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimDuration {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimDuration is never NaN")
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn arithmetic_round_trips() {
        let t = SimTime::from_secs(3.5);
        let d = SimDuration::from_secs(1.25);
        assert_eq!((t + d) - t, d);
        assert!(((t + d).as_secs() - 4.75).abs() < 1e-15);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(2.0).scaled(1.5);
        assert!((d.as_secs() - 3.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_nan() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_time() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_rejects_backwards() {
        let _ = SimTime::from_secs(1.0).duration_since(SimTime::from_secs(2.0));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_duration_subtraction_panics() {
        let _ = SimDuration::from_secs(1.0) - SimDuration::from_secs(2.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_secs(1.5)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_secs(0.25)), "0.250s");
        assert_eq!(format!("{:?}", SimTime::from_secs(1.0)), "t=1.000000s");
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimDuration::default(), SimDuration::ZERO);
    }
}
