//! Discrete-event simulation kernel for `gradient-clock-sync`.
//!
//! This crate provides the low-level substrate every other crate in the
//! workspace builds on:
//!
//! * [`SimTime`] — a totally ordered, finite wall-clock time point,
//! * [`EventQueue`] — a deterministic future-event list,
//! * [`HardwareClock`] — a drifting clock integrated exactly between rate
//!   changes (the clocks of §3 of the paper),
//! * [`DriftModel`] — bounded-drift rate schedules, including the adversarial
//!   ones used by the lower-bound experiments,
//! * [`rng`] — seeded, splittable random-number streams so that every
//!   simulation is reproducible from a single `u64` seed.
//!
//! The kernel is intentionally free of any networking or algorithm logic;
//! see `gcs-net` and `gcs-core` for those layers.
//!
//! # Example
//!
//! ```
//! use gcs_sim::{EventQueue, HardwareClock, SimTime};
//!
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.schedule(SimTime::from_secs(1.0), "hello");
//! queue.schedule(SimTime::from_secs(0.5), "world");
//!
//! let (t, ev) = queue.pop().unwrap();
//! assert_eq!(ev, "world");
//! assert_eq!(t, SimTime::from_secs(0.5));
//!
//! let mut clock = HardwareClock::new(1.01); // 1% fast
//! clock.advance_to(SimTime::from_secs(10.0));
//! assert!((clock.value() - 10.1).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod drift;
mod event;
pub mod rng;
mod time;

pub use clock::HardwareClock;
pub use drift::{DriftModel, DriftSchedule, RateChange};
pub use event::EventQueue;
pub use time::{SimDuration, SimTime};
