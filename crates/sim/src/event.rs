//! A deterministic future-event list.
//!
//! Events are ordered first by [`SimTime`], then by insertion sequence
//! number, so two events scheduled for the same instant pop in FIFO order.
//! This tie-break rule is what makes whole-simulation runs bit-reproducible
//! across platforms.
//!
//! # Structure
//!
//! The queue is a three-tier calendar, sized for the engine's workload
//! (per-message events a few milliseconds ahead of now, at backlogs of
//! thousands):
//!
//! * **near** — the currently open bucket, sorted descending so the next
//!   event pops from the back in O(1);
//! * **ring** — a 64-slot bucket ring covering the next
//!   `64 × 2⁻¹² s ≈ 15.6 ms` of simulated time; scheduling appends to a
//!   bucket in O(1), and a bucket is sorted once when it opens (amortized
//!   `O(log bucket)` per event with a contiguous `sort_unstable`, far
//!   cheaper than per-event heap sifts at these sizes);
//! * **far** — a binary min-heap for everything beyond the ring horizon
//!   (pre-materialized drift schedules, long timers). Far events migrate
//!   into the opening bucket when their time comes.
//!
//! Correctness does not depend on the bucket width: membership is
//! `bucket(t) = ⌊t/W⌋`, which is monotone in `t`, so an event in an earlier
//! bucket can never be later than one in a newer bucket — whatever floating
//! point does at bucket boundaries, the pop order is exactly the total
//! `(time, seq)` order (property-tested against a reference heap).
//!
//! Payloads are kept out of the ordering structures entirely: buckets and
//! heap hold small `(time, seq, slot)` keys while payloads sit in a slab
//! indexed by `slot`, so sorting moves 24-byte keys instead of whole
//! events.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Number of ring buckets.
const RING: usize = 64;
/// Bucket width in seconds (2⁻¹²: exact in binary, ≈ 244 µs).
const WIDTH: f64 = 1.0 / 4096.0;

/// The bucket an instant belongs to. Monotone in `t`, which is all the
/// ordering argument needs.
#[inline]
fn bucket_of(t: SimTime) -> u64 {
    (t.as_secs() / WIDTH) as u64
}

/// Ordering key: totally ordered by `(time, seq)`. `slot` indexes the
/// payload slab and does not participate in the order (seq is unique).
#[derive(Debug, Clone, Copy)]
struct Key {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed, so both the `far` BinaryHeap (a max-heap) and the
        // descending `near` sort see the earliest event as the largest.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list: a priority queue of `(SimTime, E)` pairs with
/// deterministic FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use gcs_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2.0), 'b');
/// q.schedule(SimTime::from_secs(1.0), 'a');
/// q.schedule(SimTime::from_secs(2.0), 'c'); // same instant as 'b': FIFO
///
/// assert_eq!(q.next_time(), Some(SimTime::from_secs(1.0)));
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Keys of the open bucket, sorted descending (next event at the back).
    near: Vec<Key>,
    /// Bucket ring; slot `g % RING` holds bucket `g` for
    /// `g ∈ [next_bucket, next_bucket + RING)`.
    ring: Vec<Vec<Key>>,
    /// Total keys currently in the ring.
    ring_len: usize,
    /// The next bucket to open; `near` covers strictly earlier buckets.
    next_bucket: u64,
    /// Beyond-horizon events, earliest on top.
    far: BinaryHeap<Key>,
    /// Payload slab; `None` marks a free slot awaiting reuse.
    slab: Vec<Option<E>>,
    /// Indices of free slab slots.
    free: Vec<u32>,
    next_seq: u64,
    /// Time of the most recently popped event; used to reject scheduling in
    /// the past, which would silently corrupt causality.
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at `t = 0`.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            near: Vec::new(),
            ring: (0..RING).map(|_| Vec::new()).collect(),
            ring_len: 0,
            next_bucket: 0,
            far: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedules `payload` to fire at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped event: the simulation
    /// may never schedule into its own past.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.schedule_keyed(time, seq, payload);
    }

    /// Schedules `payload` under an explicit `(time, seq)` ordering key.
    ///
    /// This is the seam a *sharded* simulation uses to exchange events
    /// between calendars: an event routed from another queue keeps its
    /// original key, so the merged pop order across all shards is exactly
    /// the `(time, seq)` order a single queue would have produced. The
    /// internal sequence counter is bumped past `seq`, so later plain
    /// [`schedule`](EventQueue::schedule) calls still sort after every
    /// explicitly keyed event at the same instant.
    ///
    /// The caller is responsible for key uniqueness (shards namespace
    /// their counters); duplicate `(time, seq)` pairs would make the pop
    /// order between the duplicates unspecified.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped event.
    pub fn schedule_keyed(&mut self, time: SimTime, seq: u64, payload: E) {
        assert!(
            time >= self.now,
            "cannot schedule at {time:?} before current time {:?}",
            self.now
        );
        self.next_seq = self.next_seq.max(seq + 1);
        let slot = match self.free.pop() {
            Some(idx) => {
                self.slab[idx as usize] = Some(payload);
                idx
            }
            None => {
                let idx = u32::try_from(self.slab.len()).expect("event slab exceeds u32");
                self.slab.push(Some(payload));
                idx
            }
        };
        let key = Key { time, seq, slot };
        let g = bucket_of(time);
        if g < self.next_bucket {
            // Lands in the already-open bucket: keep `near` sorted
            // (later events towards the front, i.e. ascending in the
            // reversed Ord). Rare — only zero-delay reschedules hit this.
            let pos = self.near.partition_point(|k| *k < key);
            self.near.insert(pos, key);
        } else if g < self.next_bucket + RING as u64 {
            self.ring[(g % RING as u64) as usize].push(key);
            self.ring_len += 1;
        } else {
            self.far.push(key);
        }
    }

    /// Opens buckets until `near` holds the earliest pending events (or
    /// everything is empty).
    fn refill(&mut self) {
        while self.near.is_empty() && (self.ring_len > 0 || !self.far.is_empty()) {
            if self.ring_len == 0 {
                // Ring dry: jump straight to the far tier's first bucket.
                let g = bucket_of(self.far.peek().expect("far nonempty").time);
                self.next_bucket = self.next_bucket.max(g);
            }
            let g = self.next_bucket;
            self.next_bucket = g + 1;
            // Reuse the drained `near` allocation as the new empty bucket.
            std::mem::swap(&mut self.near, &mut self.ring[(g % RING as u64) as usize]);
            self.ring_len -= self.near.len();
            while let Some(k) = self.far.peek() {
                if bucket_of(k.time) <= g {
                    self.near.push(*k);
                    self.far.pop();
                } else {
                    break;
                }
            }
            // Descending by (time, seq). SimTime is non-negative, so the
            // f64 bit pattern is order-isomorphic to the value — sorting by
            // integer key keeps the comparator branch-free.
            self.near
                .sort_unstable_by_key(|k| std::cmp::Reverse((k.time.as_secs().to_bits(), k.seq)));
        }
    }

    /// Removes and returns the earliest event, advancing the queue's notion
    /// of "now" to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_keyed().map(|(time, _, payload)| (time, payload))
    }

    /// [`pop`](EventQueue::pop), but also returning the event's sequence
    /// number — the other half of the sharding seam: draining a queue with
    /// `pop_keyed` and re-inserting elsewhere with
    /// [`schedule_keyed`](EventQueue::schedule_keyed) preserves the global
    /// `(time, seq)` order exactly.
    pub fn pop_keyed(&mut self) -> Option<(SimTime, u64, E)> {
        if self.near.is_empty() {
            self.refill();
        }
        let key = self.near.pop()?;
        debug_assert!(key.time >= self.now);
        self.now = key.time;
        let payload = self.slab[key.slot as usize]
            .take()
            .expect("key points at an occupied slot");
        self.free.push(key.slot);
        Some((key.time, key.seq, payload))
    }

    /// The time of the earliest pending event, without removing it.
    #[must_use]
    pub fn next_time(&mut self) -> Option<SimTime> {
        if self.near.is_empty() {
            self.refill();
        }
        self.near.last().map(|k| k.time)
    }

    /// The full `(time, seq)` ordering key of the earliest pending event,
    /// without removing it — what a scheduler merging several queues needs
    /// to interleave same-instant events in global order.
    #[must_use]
    pub fn next_key(&mut self) -> Option<(SimTime, u64)> {
        if self.near.is_empty() {
            self.refill();
        }
        self.near.last().map(|k| (k.time, k.seq))
    }

    /// The time of the most recently popped event (`t = 0` before any pop).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.near.len() + self.ring_len + self.far.len()
    }

    /// Whether there are no pending events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events ever scheduled on this queue.
    #[must_use]
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), 3);
        q.schedule(SimTime::from_secs(1.0), 1);
        q.schedule(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5.0));
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), ());
        q.pop();
        q.schedule(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), 1);
        q.pop();
        q.schedule(SimTime::from_secs(5.0), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(5.0), 2)));
    }

    #[test]
    fn next_time_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), 42);
        assert_eq!(q.next_time(), Some(SimTime::from_secs(1.0)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), 42)));
        assert_eq!(q.next_time(), None);
    }

    #[test]
    fn counts_and_emptiness() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_secs(1.0), ());
        q.schedule(SimTime::from_secs(2.0), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_count(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_count(), 2);
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..10u64 {
            let t = SimTime::from_secs(round as f64);
            for i in 0..50u64 {
                q.schedule(t, (round, i));
            }
            for i in 0..50u64 {
                assert_eq!(q.pop(), Some((t, (round, i))));
            }
        }
        // Storage is bounded by the maximum concurrent backlog, not by the
        // total number of events ever scheduled.
        assert!(q.slab.len() <= 50);
        assert_eq!(q.scheduled_count(), 500);
    }

    #[test]
    fn interleaved_schedule_pop_keeps_global_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), 1);
        q.schedule(SimTime::from_secs(3.0), 3);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), 1)));
        q.schedule(SimTime::from_secs(2.0), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(2.0), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(3.0), 3)));
    }

    #[test]
    fn zero_delay_reschedule_lands_in_the_open_bucket() {
        // Regression guard for the `near`-insert path: scheduling at (or a
        // hair after) the just-popped instant must keep the global order.
        let mut q = EventQueue::new();
        for i in 0..8 {
            q.schedule(SimTime::from_secs(1.0 + f64::from(i) * 1e-6), i);
        }
        assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), 0)));
        q.schedule(q.now(), 100); // same instant, later seq: pops after 0
        q.schedule(q.now() + crate::SimDuration::from_secs(5e-7), 101);
        let rest: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(rest, vec![100, 101, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn far_future_events_cross_the_ring_horizon() {
        let mut q = EventQueue::new();
        // Far beyond the 15.6 ms ring horizon, interleaved with near ones.
        q.schedule(SimTime::from_secs(100.0), 4);
        q.schedule(SimTime::from_secs(0.001), 1);
        q.schedule(SimTime::from_secs(50.0), 3);
        q.schedule(SimTime::from_secs(0.002), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [1, 2, 3, 4]);
    }

    #[test]
    fn keyed_schedule_preserves_the_original_merge_order() {
        // Simulate a two-shard split: drain one queue, route its events to
        // two others with their original keys, merge-pop — the interleaving
        // must be exactly the source order.
        let mut source = EventQueue::new();
        for i in 0..40u64 {
            source.schedule(SimTime::from_secs(((i * 7) % 13) as f64), i);
        }
        let mut a = EventQueue::new();
        let mut b = EventQueue::new();
        let mut want = Vec::new();
        while let Some((t, seq, e)) = {
            // Drain via a taken clone so `source` order is the reference.
            source.pop_keyed()
        } {
            want.push(e);
            if e % 2 == 0 {
                a.schedule_keyed(t, seq, e);
            } else {
                b.schedule_keyed(t, seq, e);
            }
        }
        let mut got = Vec::new();
        loop {
            match (a.next_time(), b.next_time()) {
                (None, None) => break,
                (Some(_), None) => got.push(a.pop_keyed().unwrap()),
                (None, Some(_)) => got.push(b.pop_keyed().unwrap()),
                (Some(ta), Some(tb)) => {
                    // Same instant never happens here (times distinct per
                    // parity stream at equal times are still seq-ordered);
                    // compare (time, seq) like a merged queue would.
                    let ka = (ta, a_peek_seq(&mut a));
                    let kb = (tb, a_peek_seq(&mut b));
                    if ka <= kb {
                        got.push(a.pop_keyed().unwrap());
                    } else {
                        got.push(b.pop_keyed().unwrap());
                    }
                }
            }
        }
        let got: Vec<u64> = got.into_iter().map(|(_, _, e)| e).collect();
        assert_eq!(got, want);
    }

    /// Peeks the seq of the next event (test helper; pops and re-inserts).
    fn a_peek_seq(q: &mut EventQueue<u64>) -> u64 {
        let (t, seq, e) = q.pop_keyed().unwrap();
        q.schedule_keyed(t, seq, e);
        seq
    }

    #[test]
    fn plain_schedule_sorts_after_keyed_events_at_the_same_instant() {
        let mut q = EventQueue::new();
        q.schedule_keyed(SimTime::from_secs(1.0), 500, "routed");
        q.schedule(SimTime::from_secs(1.0), "dynamic");
        assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "routed")));
        assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "dynamic")));
    }

    /// Randomized cross-check against a reference priority queue: any
    /// interleaving of schedules and pops must produce the exact
    /// `(time, seq)` order, including bucket-boundary times.
    #[test]
    fn matches_reference_order_on_random_interleavings() {
        use std::collections::BTreeMap;
        let mut x = 0x243F_6A88_85A3_08D3u64;
        let mut rand = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..50 {
            let mut q = EventQueue::new();
            let mut reference: BTreeMap<(u64, u64), u64> = BTreeMap::new();
            let mut seq = 0u64;
            let mut now = 0.0f64;
            for _ in 0..400 {
                let op = rand() % 4;
                if op < 3 {
                    // Mix of in-bucket, cross-bucket, and boundary times.
                    let r = rand();
                    let dt = match r % 5 {
                        0 => 0.0,
                        1 => (r % 1000) as f64 * 1e-6,
                        2 => (r % 100) as f64 * WIDTH, // exact boundaries
                        3 => (r % 1000) as f64 * 1e-3,
                        _ => (r % 10) as f64 * 10.0, // far tier
                    };
                    let t = now + dt;
                    q.schedule(SimTime::from_secs(t), seq);
                    reference.insert((t.to_bits(), seq), seq);
                    seq += 1;
                } else if let Some((when, got)) = q.pop() {
                    let (&key, &want) = reference.iter().next().expect("reference nonempty");
                    assert_eq!(got, want, "payload order diverged");
                    assert_eq!(when.as_secs().to_bits(), key.0, "time order diverged");
                    reference.remove(&key);
                    now = when.as_secs();
                }
            }
            while let Some((when, got)) = q.pop() {
                let (&key, &want) = reference.iter().next().expect("reference nonempty");
                assert_eq!(got, want);
                assert_eq!(when.as_secs().to_bits(), key.0);
                reference.remove(&key);
                let _ = when;
            }
            assert!(reference.is_empty());
        }
    }
}
