//! A deterministic future-event list.
//!
//! Events are ordered first by [`SimTime`], then by insertion sequence
//! number, so two events scheduled for the same instant pop in FIFO order.
//! This tie-break rule is what makes whole-simulation runs bit-reproducible
//! across platforms.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event together with the time it is scheduled for.
///
/// Returned by [`EventQueue::peek`]; the payload is accessible through
/// [`ScheduledEvent::payload`].
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> ScheduledEvent<E> {
    /// The time the event fires.
    #[must_use]
    pub fn time(&self) -> SimTime {
        self.time
    }

    /// The event payload.
    #[must_use]
    pub fn payload(&self) -> &E {
        &self.payload
    }
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event is on top.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list: a priority queue of `(SimTime, E)` pairs with
/// deterministic FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use gcs_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(2.0), 'b');
/// q.schedule(SimTime::from_secs(1.0), 'a');
/// q.schedule(SimTime::from_secs(2.0), 'c'); // same instant as 'b': FIFO
///
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    /// Time of the most recently popped event; used to reject scheduling in
    /// the past, which would silently corrupt causality.
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at `t = 0`.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Schedules `payload` to fire at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped event: the simulation
    /// may never schedule into its own past.
    pub fn schedule(&mut self, time: SimTime, payload: E) {
        assert!(
            time >= self.now,
            "cannot schedule at {time:?} before current time {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { time, seq, payload });
    }

    /// Removes and returns the earliest event, advancing the queue's notion
    /// of "now" to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now);
        self.now = ev.time;
        Some((ev.time, ev.payload))
    }

    /// Returns the earliest event without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<&ScheduledEvent<E>> {
        self.heap.peek()
    }

    /// The time of the most recently popped event (`t = 0` before any pop).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether there are no pending events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    #[must_use]
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3.0), 3);
        q.schedule(SimTime::from_secs(1.0), 1);
        q.schedule(SimTime::from_secs(2.0), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1.0);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5.0));
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), ());
        q.pop();
        q.schedule(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5.0), 1);
        q.pop();
        q.schedule(SimTime::from_secs(5.0), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(5.0), 2)));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1.0), 42);
        assert_eq!(*q.peek().unwrap().payload(), 42);
        assert_eq!(q.peek().unwrap().time(), SimTime::from_secs(1.0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn counts_and_emptiness() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_secs(1.0), ());
        q.schedule(SimTime::from_secs(2.0), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_count(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_count(), 2);
    }
}
