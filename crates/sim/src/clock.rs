//! Drifting hardware clocks.
//!
//! §3 of the paper equips every node with a hardware clock `H_u` whose rate
//! `h_u(t)` lies in `[1−ρ, 1+ρ]` at all times. In the simulator a clock's
//! rate changes only at discrete events (drift-schedule changes), so between
//! events the clock is *exactly* linear and we integrate it in closed form —
//! there is no accumulating numerical drift beyond one `f64` rounding per
//! rate change.

use crate::time::SimTime;

/// A piecewise-linear clock: `value' = rate` between rate changes.
///
/// Used both for hardware clocks (rate ∈ `[1−ρ, 1+ρ]`) and, in `gcs-core`,
/// for logical clocks and flood bounds, whose rates are products of the
/// hardware rate with algorithmic multipliers.
///
/// # Example
///
/// ```
/// use gcs_sim::{HardwareClock, SimTime};
///
/// let mut c = HardwareClock::new(0.99);
/// c.advance_to(SimTime::from_secs(100.0));
/// assert!((c.value() - 99.0).abs() < 1e-9);
/// c.set_rate(1.01);
/// c.advance_to(SimTime::from_secs(200.0));
/// assert!((c.value() - 200.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareClock {
    value: f64,
    rate: f64,
    last_update: SimTime,
}

impl HardwareClock {
    /// Creates a clock with value `0` at `t = 0` running at `rate`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    #[must_use]
    pub fn new(rate: f64) -> Self {
        Self::with_value(0.0, rate, SimTime::ZERO)
    }

    /// Creates a clock with an explicit initial value and epoch.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive, or `value` is not finite.
    #[must_use]
    pub fn with_value(value: f64, rate: f64, at: SimTime) -> Self {
        assert!(value.is_finite(), "clock value must be finite");
        assert!(
            rate.is_finite() && rate > 0.0,
            "clock rate must be finite and positive, got {rate}"
        );
        HardwareClock {
            value,
            rate,
            last_update: at,
        }
    }

    /// Integrates the clock forward to real time `t`.
    ///
    /// Calling with `t` equal to the last update time is a no-op; the clock
    /// never moves backwards.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last update.
    pub fn advance_to(&mut self, t: SimTime) {
        let dt = t.duration_since(self.last_update).as_secs();
        self.value += self.rate * dt;
        self.last_update = t;
    }

    /// Current clock value (as of the last `advance_to`).
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Clock value the clock *will* have at future time `t` if the rate does
    /// not change, without mutating the clock.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last update.
    #[must_use]
    pub fn value_at(&self, t: SimTime) -> f64 {
        self.value + self.rate * t.duration_since(self.last_update).as_secs()
    }

    /// Current rate.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Changes the rate. The caller must have advanced the clock to the time
    /// of the change first, otherwise the old segment would be integrated at
    /// the new rate.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    pub fn set_rate(&mut self, rate: f64) {
        assert!(
            rate.is_finite() && rate > 0.0,
            "clock rate must be finite and positive, got {rate}"
        );
        self.rate = rate;
    }

    /// Sets the clock value directly (used for fault injection / corruption
    /// experiments). The epoch is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn set_value(&mut self, value: f64) {
        assert!(value.is_finite(), "clock value must be finite");
        self.value = value;
    }

    /// Time of the last `advance_to` (or construction).
    #[must_use]
    pub fn last_update(&self) -> SimTime {
        self.last_update
    }

    /// Real time at which the clock will reach `target`, assuming the rate
    /// does not change. Returns `None` if `target` is already passed.
    #[must_use]
    pub fn time_to_reach(&self, target: f64) -> Option<SimTime> {
        if target <= self.value {
            return None;
        }
        let dt = (target - self.value) / self.rate;
        Some(self.last_update + crate::time::SimDuration::from_secs(dt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn integrates_linearly() {
        let mut c = HardwareClock::new(2.0);
        c.advance_to(SimTime::from_secs(3.0));
        assert!((c.value() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn piecewise_rates_integrate_exactly() {
        let mut c = HardwareClock::new(1.0);
        c.advance_to(SimTime::from_secs(1.0));
        c.set_rate(0.5);
        c.advance_to(SimTime::from_secs(3.0));
        c.set_rate(2.0);
        c.advance_to(SimTime::from_secs(4.0));
        // 1*1 + 0.5*2 + 2*1 = 4
        assert!((c.value() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn value_at_previews_without_mutation() {
        let mut c = HardwareClock::new(1.5);
        c.advance_to(SimTime::from_secs(2.0));
        let preview = c.value_at(SimTime::from_secs(4.0));
        assert!((preview - 6.0).abs() < 1e-12);
        assert!((c.value() - 3.0).abs() < 1e-12);
        assert_eq!(c.last_update(), SimTime::from_secs(2.0));
    }

    #[test]
    fn advance_to_same_time_is_noop() {
        let mut c = HardwareClock::new(1.0);
        c.advance_to(SimTime::from_secs(1.0));
        let v = c.value();
        c.advance_to(SimTime::from_secs(1.0));
        assert_eq!(c.value(), v);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn cannot_go_backwards() {
        let mut c = HardwareClock::new(1.0);
        c.advance_to(SimTime::from_secs(2.0));
        c.advance_to(SimTime::from_secs(1.0));
    }

    #[test]
    fn time_to_reach_inverts_value_at() {
        let mut c = HardwareClock::new(1.25);
        c.advance_to(SimTime::from_secs(1.0));
        let t = c.time_to_reach(10.0).unwrap();
        assert!((c.value_at(t) - 10.0).abs() < 1e-9);
        assert_eq!(c.time_to_reach(c.value()), None);
        assert_eq!(c.time_to_reach(c.value() - 1.0), None);
    }

    #[test]
    fn with_value_and_set_value() {
        let mut c = HardwareClock::with_value(5.0, 1.0, SimTime::from_secs(10.0));
        c.advance_to(SimTime::from_secs(10.0) + SimDuration::from_secs(2.0));
        assert!((c.value() - 7.0).abs() < 1e-12);
        c.set_value(100.0);
        assert_eq!(c.value(), 100.0);
    }

    #[test]
    #[should_panic(expected = "rate must be finite and positive")]
    fn rejects_zero_rate() {
        let _ = HardwareClock::new(0.0);
    }
}
