//! Bounded-drift rate schedules for hardware clocks.
//!
//! The paper's adversary may vary every hardware clock rate arbitrarily
//! within `[1−ρ, 1+ρ]` over time. A [`DriftModel`] is a recipe; calling
//! [`DriftModel::realize`] turns it into a concrete [`DriftSchedule`] — an
//! initial rate per node plus a time-ordered list of [`RateChange`]s that the
//! simulation engine replays as events.
//!
//! The `TwoBlock` model (one half of the nodes fast, the other half slow) is
//! the canonical worst case for skew build-up on a line and is what the
//! lower-bound constructions in §8 / [11] use.

use rand::Rng;

use crate::rng;
use crate::time::SimTime;

/// A single scheduled hardware-clock rate change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateChange {
    /// When the rate changes.
    pub time: SimTime,
    /// Which node's clock changes (index into the node array).
    pub node: usize,
    /// The new rate; must lie in `[1−ρ, 1+ρ]`.
    pub rate: f64,
}

/// A fully materialized drift schedule for `n` nodes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DriftSchedule {
    /// Initial rate of each node's hardware clock.
    pub initial: Vec<f64>,
    /// Future rate changes, sorted by time.
    pub changes: Vec<RateChange>,
}

impl DriftSchedule {
    /// Creates a schedule, sorting the change list by time.
    ///
    /// # Panics
    ///
    /// Panics if any rate is not finite and positive, or a change refers to a
    /// node outside `initial`.
    #[must_use]
    pub fn new(initial: Vec<f64>, mut changes: Vec<RateChange>) -> Self {
        for (i, &r) in initial.iter().enumerate() {
            assert!(r.is_finite() && r > 0.0, "node {i}: bad initial rate {r}");
        }
        for c in &changes {
            assert!(
                c.rate.is_finite() && c.rate > 0.0,
                "bad rate {} at {:?}",
                c.rate,
                c.time
            );
            assert!(
                c.node < initial.len(),
                "rate change for unknown node {}",
                c.node
            );
        }
        changes.sort_by(|a, b| a.time.cmp(&b.time).then(a.node.cmp(&b.node)));
        DriftSchedule { initial, changes }
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.initial.len()
    }

    /// Checks that every rate (initial and scheduled) lies in
    /// `[1−ρ, 1+ρ]`. Used by tests and by `Params` validation.
    #[must_use]
    pub fn respects_bound(&self, rho: f64) -> bool {
        let lo = 1.0 - rho;
        let hi = 1.0 + rho;
        let ok = |r: f64| (lo..=hi).contains(&r);
        self.initial.iter().copied().all(ok) && self.changes.iter().all(|c| ok(c.rate))
    }
}

/// A recipe for generating hardware-clock drift, bounded by `ρ`.
///
/// All variants guarantee rates within `[1−ρ, 1+ρ]` for the `rho` they are
/// given at [`realize`](DriftModel::realize) time.
#[derive(Debug, Clone, PartialEq)]
pub enum DriftModel {
    /// All clocks run at exactly rate 1 (drift-free reference).
    None,
    /// Every node gets an independent uniform rate in `[1−ρ, 1+ρ]`, constant
    /// for the whole run.
    RandomConstant,
    /// Nodes with index `< n/2` run at `1+ρ`, the rest at `1−ρ` — the
    /// worst-case skew generator on a line ordered by index.
    TwoBlock,
    /// Even-indexed nodes run at `1+ρ`, odd-indexed at `1−ρ` — stresses the
    /// *local* skew on every single edge.
    Alternating,
    /// Every `period` seconds each node's rate takes an independent bounded
    /// random step (clamped to `[1−ρ, 1+ρ]`): a slowly wandering oscillator.
    RandomWalk {
        /// Seconds between steps.
        period: f64,
        /// Maximum rate change per step, as a fraction of `ρ` (e.g. `0.25`).
        step_frac: f64,
    },
    /// All nodes swap between the two extremes every `period` seconds, with
    /// the two blocks of `TwoBlock` in antiphase.
    FlipFlop {
        /// Seconds between swaps.
        period: f64,
    },
    /// A hand-written schedule (used by adversarial constructions). The
    /// schedule is used as-is; `realize` checks it against `ρ`.
    Explicit(DriftSchedule),
}

impl DriftModel {
    /// Materializes the recipe for `n` nodes over `[0, horizon]`.
    ///
    /// # Panics
    ///
    /// Panics if an `Explicit` schedule violates the `rho` bound or has the
    /// wrong node count, or if parameters are out of range (`rho ∈ [0, 1)`,
    /// positive periods).
    #[must_use]
    pub fn realize(&self, n: usize, rho: f64, horizon: SimTime, seed: u64) -> DriftSchedule {
        assert!(
            (0.0..1.0).contains(&rho),
            "rho must be in [0, 1), got {rho}"
        );
        match self {
            DriftModel::None => DriftSchedule::new(vec![1.0; n], Vec::new()),
            DriftModel::RandomConstant => {
                let mut rates = Vec::with_capacity(n);
                for i in 0..n {
                    let mut r = rng::stream(seed, "drift-const", i as u64);
                    rates.push(r.gen_range(1.0 - rho..=1.0 + rho));
                }
                DriftSchedule::new(rates, Vec::new())
            }
            DriftModel::TwoBlock => {
                let rates = (0..n)
                    .map(|i| if i < n / 2 { 1.0 + rho } else { 1.0 - rho })
                    .collect();
                DriftSchedule::new(rates, Vec::new())
            }
            DriftModel::Alternating => {
                let rates = (0..n)
                    .map(|i| if i % 2 == 0 { 1.0 + rho } else { 1.0 - rho })
                    .collect();
                DriftSchedule::new(rates, Vec::new())
            }
            DriftModel::RandomWalk { period, step_frac } => {
                assert!(*period > 0.0, "period must be positive");
                assert!(
                    (0.0..=1.0).contains(step_frac),
                    "step_frac must be in [0, 1]"
                );
                let mut rates: Vec<f64> = Vec::with_capacity(n);
                for i in 0..n {
                    let mut r = rng::stream(seed, "drift-walk-init", i as u64);
                    rates.push(r.gen_range(1.0 - rho..=1.0 + rho));
                }
                let initial = rates.clone();
                let mut changes = Vec::new();
                let steps = (horizon.as_secs() / period).floor() as u64;
                for k in 1..=steps {
                    let t = SimTime::from_secs(k as f64 * period);
                    for (i, rate) in rates.iter_mut().enumerate() {
                        let mut r = rng::stream(seed, "drift-walk", (k << 32) ^ i as u64);
                        let step = r.gen_range(-1.0..=1.0) * step_frac * rho;
                        *rate = (*rate + step).clamp(1.0 - rho, 1.0 + rho);
                        changes.push(RateChange {
                            time: t,
                            node: i,
                            rate: *rate,
                        });
                    }
                }
                DriftSchedule::new(initial, changes)
            }
            DriftModel::FlipFlop { period } => {
                assert!(*period > 0.0, "period must be positive");
                let phase0: Vec<f64> = (0..n)
                    .map(|i| if i < n / 2 { 1.0 + rho } else { 1.0 - rho })
                    .collect();
                let mut changes = Vec::new();
                let steps = (horizon.as_secs() / period).floor() as u64;
                for k in 1..=steps {
                    let t = SimTime::from_secs(k as f64 * period);
                    for (i, &p0) in phase0.iter().enumerate() {
                        let mirrored = if p0 > 1.0 { 1.0 - rho } else { 1.0 + rho };
                        let rate = if k % 2 == 1 { mirrored } else { p0 };
                        changes.push(RateChange {
                            time: t,
                            node: i,
                            rate,
                        });
                    }
                }
                DriftSchedule::new(phase0, changes)
            }
            DriftModel::Explicit(schedule) => {
                assert_eq!(
                    schedule.node_count(),
                    n,
                    "explicit drift schedule covers {} nodes, expected {n}",
                    schedule.node_count()
                );
                assert!(
                    schedule.respects_bound(rho),
                    "explicit drift schedule violates the rho = {rho} bound"
                );
                schedule.clone()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: SimTime = SimTime::ZERO;

    fn horizon() -> SimTime {
        SimTime::from_secs(100.0)
    }

    #[test]
    fn none_is_driftless() {
        let s = DriftModel::None.realize(4, 0.01, H, 0);
        assert_eq!(s.initial, vec![1.0; 4]);
        assert!(s.changes.is_empty());
        assert!(s.respects_bound(0.0));
    }

    #[test]
    fn two_block_splits_at_half() {
        let s = DriftModel::TwoBlock.realize(5, 0.1, H, 0);
        assert_eq!(s.initial, vec![1.1, 1.1, 0.9, 0.9, 0.9]);
    }

    #[test]
    fn alternating_alternates() {
        let s = DriftModel::Alternating.realize(4, 0.1, H, 0);
        assert_eq!(s.initial, vec![1.1, 0.9, 1.1, 0.9]);
    }

    #[test]
    fn random_constant_respects_bound_and_seed() {
        let a = DriftModel::RandomConstant.realize(16, 0.05, H, 9);
        let b = DriftModel::RandomConstant.realize(16, 0.05, H, 9);
        let c = DriftModel::RandomConstant.realize(16, 0.05, H, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.respects_bound(0.05));
    }

    #[test]
    fn random_walk_stays_bounded() {
        let s = DriftModel::RandomWalk {
            period: 5.0,
            step_frac: 0.5,
        }
        .realize(8, 0.02, horizon(), 3);
        assert!(s.respects_bound(0.02));
        assert_eq!(s.changes.len(), 20 * 8);
        // Changes must be sorted by time.
        assert!(s.changes.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn flip_flop_swaps_blocks() {
        let s = DriftModel::FlipFlop { period: 10.0 }.realize(2, 0.1, horizon(), 0);
        assert_eq!(s.initial, vec![1.1, 0.9]);
        let first_swap: Vec<_> = s
            .changes
            .iter()
            .filter(|c| c.time == SimTime::from_secs(10.0))
            .collect();
        assert_eq!(first_swap.len(), 2);
        assert_eq!(first_swap[0].rate, 0.9); // node 0 flips to slow
        assert_eq!(first_swap[1].rate, 1.1); // node 1 flips to fast
        assert!(s.respects_bound(0.1));
    }

    #[test]
    #[should_panic(expected = "violates the rho")]
    fn explicit_is_validated() {
        let bad = DriftSchedule::new(vec![1.5], Vec::new());
        let _ = DriftModel::Explicit(bad).realize(1, 0.01, H, 0);
    }

    #[test]
    #[should_panic(expected = "covers 1 nodes, expected 2")]
    fn explicit_node_count_is_validated() {
        let s = DriftSchedule::new(vec![1.0], Vec::new());
        let _ = DriftModel::Explicit(s).realize(2, 0.01, H, 0);
    }

    #[test]
    fn schedule_sorts_changes() {
        let s = DriftSchedule::new(
            vec![1.0, 1.0],
            vec![
                RateChange {
                    time: SimTime::from_secs(5.0),
                    node: 0,
                    rate: 1.0,
                },
                RateChange {
                    time: SimTime::from_secs(1.0),
                    node: 1,
                    rate: 1.0,
                },
            ],
        );
        assert_eq!(s.changes[0].time, SimTime::from_secs(1.0));
    }
}
