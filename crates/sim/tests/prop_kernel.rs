//! Property-based tests of the simulation kernel.

use proptest::prelude::*;

use gcs_sim::{DriftModel, EventQueue, HardwareClock, SimDuration, SimTime};

proptest! {
    #[test]
    fn queue_pops_in_nondecreasing_time_order(
        times in proptest::collection::vec(0.0f64..1000.0, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn queue_is_fifo_within_an_instant(
        groups in proptest::collection::vec((0.0f64..100.0, 1usize..5), 1..20),
    ) {
        let mut q = EventQueue::new();
        let mut expected: std::collections::BTreeMap<u64, Vec<usize>> =
            std::collections::BTreeMap::new();
        let mut id = 0usize;
        for (t, k) in groups {
            // Quantize times so collisions actually happen.
            let qt = (t * 10.0).round() / 10.0;
            for _ in 0..k {
                q.schedule(SimTime::from_secs(qt), id);
                expected.entry((qt * 10.0).round() as u64).or_default().push(id);
                id += 1;
            }
        }
        let mut got: std::collections::BTreeMap<u64, Vec<usize>> =
            std::collections::BTreeMap::new();
        while let Some((t, v)) = q.pop() {
            got.entry((t.as_secs() * 10.0).round() as u64).or_default().push(v);
        }
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn clock_integration_matches_closed_form(
        segments in proptest::collection::vec((0.9f64..1.1, 0.01f64..5.0), 1..30),
    ) {
        let mut clock = HardwareClock::new(segments[0].0);
        let mut t = SimTime::ZERO;
        let mut expected = 0.0;
        for &(rate, dt) in &segments {
            clock.set_rate(rate);
            t += SimDuration::from_secs(dt);
            clock.advance_to(t);
            expected += rate * dt;
        }
        prop_assert!((clock.value() - expected).abs() < 1e-9 * segments.len() as f64);
    }

    #[test]
    fn value_at_is_consistent_with_advance(
        rate in 0.5f64..2.0,
        dt in 0.0f64..100.0,
    ) {
        let mut a = HardwareClock::new(rate);
        let b = HardwareClock::new(rate);
        let t = SimTime::from_secs(dt);
        a.advance_to(t);
        prop_assert!((a.value() - b.value_at(t)).abs() < 1e-12);
    }

    #[test]
    fn drift_realizations_are_deterministic_and_bounded(
        rho in 1e-4f64..0.05,
        seed in any::<u64>(),
    ) {
        let model = DriftModel::RandomWalk { period: 1.0, step_frac: 0.4 };
        let horizon = SimTime::from_secs(25.0);
        let a = model.realize(6, rho, horizon, seed);
        let b = model.realize(6, rho, horizon, seed);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.respects_bound(rho));
        // Change times are within the horizon and sorted.
        prop_assert!(a.changes.windows(2).all(|w| w[0].time <= w[1].time));
        prop_assert!(a.changes.iter().all(|c| c.time <= horizon));
    }
}
