//! The simulation engine: replays a dynamic-network scenario and runs the
//! clock synchronization algorithm on every node.
//!
//! The engine is a discrete-event simulation with one twist: clocks are
//! piecewise linear between events, so node state is integrated *lazily and
//! exactly* — a node is advanced to the current instant only when an event
//! touches it (or a global tick fires). The paper's continuous-time mode
//! triggers (footnote 6) are evaluated every [`Simulation::tick_interval`]
//! seconds; the induced slack on measured bounds is
//! [`Params::discretization_slack`].
//!
//! The hot path is *incremental*: per tick, only nodes whose decision
//! inputs may have changed since their last evaluation are re-decided. A
//! node evaluated at time `t` receives a
//! [`StabilityCert`](crate::triggers::StabilityCert) from its policy
//! — margins within which no trigger threshold can be crossed — which the
//! engine converts into a real-time horizon using the worst-case relative
//! drift rate `β − α`; until the horizon expires (or an event dirties the
//! node) the decision provably cannot change, so skipping the evaluation
//! is *bit-identical* to the full per-node pass (property-tested, and
//! re-checked against the full pass on every tick in debug builds).
//!
//! Event kinds:
//!
//! * `Tick` — re-evaluate the [`ModePolicy`] on dirty/expired nodes,
//! * `Flood` — a node's periodic broadcast of `(L, M, W, P)` (the flooding
//!   of Condition 4.3 / §7; in message-estimate mode it doubles as the
//!   clock-sample carrier),
//! * `Deliver` — message arrival, subject to the §3.1 continuity rule,
//! * `EdgeUp` / `EdgeDown` — the scenario's scripted edge dynamics,
//! * `RateChange` — the drift adversary adjusting a hardware clock,
//! * `LeaderCheck` / `FollowerApply` — the two timed steps of the Listing 1
//!   insertion handshake.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::Rng;

use gcs_net::transport;
use gcs_net::{
    DynamicGraph, EdgeEventKind, EdgeKey, EdgeParams, EdgeParamsMap, NetworkSchedule, NodeId,
    Topology,
};
use gcs_sim::{rng, DriftModel, EventQueue, SimDuration, SimTime};
use gcs_telemetry::{LocalCounters, TelemetrySink};

use crate::shard::LocalCtx;
use crate::snapshot::ClockSnapshot;
use gcs_protocol::edge_state::{EdgeSlot, InsertState, Level};
use gcs_protocol::node::{NeighborEntry, NodeState};
use gcs_protocol::runtime::derive_run_config;
use gcs_protocol::triggers::{
    fast_trigger, slow_trigger, AoptPolicy, Mode, ModePolicy, NeighborView, NodeView,
};
use gcs_protocol::{EdgeInfo, EstimateMode, InsertionStrategy, Params};

/// Message bodies exchanged by nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Payload {
    /// Periodic flood: clock sample plus the three network-wide bounds.
    Flood {
        logical: f64,
        max_est: f64,
        min_lb: f64,
        max_ub: f64,
    },
    /// Listing 1 line 9: the leader's insertion offer.
    InsertEdge { l_ins: f64, g_tilde: f64 },
}

/// Engine events.
///
/// Crate-visible because the sharded engine
/// ([`ParallelSimulation`](crate::ParallelSimulation)) routes these
/// between per-shard queues; the variants stay out of the public API.
#[derive(Debug)]
pub(crate) enum Event {
    Tick,
    Flood {
        node: NodeId,
    },
    /// A message arriving (the delivery instant is the event time itself,
    /// so only the send time travels with the event).
    Deliver {
        src: NodeId,
        dst: NodeId,
        sent_at: SimTime,
        payload: Payload,
    },
    EdgeUp {
        from: NodeId,
        to: NodeId,
    },
    EdgeDown {
        from: NodeId,
        to: NodeId,
    },
    RateChange {
        node: usize,
        rate: f64,
    },
    /// The leader's `∆`-wait expiry, expressed as a logical-clock target
    /// (reaching it implies both "≥ ∆ real time waited" and the logical
    /// continuity window of Listing 1 line 6).
    LeaderCheck {
        u: NodeId,
        v: NodeId,
        generation: u64,
        target_logical: f64,
    },
    /// The follower's `T + τ` wait expiry (Listing 1 line 12), same
    /// logical-target construction.
    FollowerApply {
        u: NodeId,
        v: NodeId,
        generation: u64,
        target_logical: f64,
    },
}

/// Counters the engine maintains while running.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Messages handed to the transport.
    pub messages_sent: u64,
    /// Messages delivered (continuity rule satisfied).
    pub messages_delivered: u64,
    /// Messages dropped by the continuity rule.
    pub messages_dropped: u64,
    /// Tick events processed.
    pub ticks: u64,
    /// Total events processed.
    pub events: u64,
    /// Per-node mode decisions actually evaluated (the full reference pass
    /// would evaluate `ticks * node_count`; the difference is what the
    /// dirty-set/stability-certificate machinery skipped).
    pub mode_evaluations: u64,
    /// Listing 1 handshakes the leader completed (offer sent).
    pub handshakes_offered: u64,
    /// Insertion schedules installed (leader + follower sides).
    pub insertions_scheduled: u64,
    /// Edge-down detections that cleared neighbour state.
    pub edge_removals: u64,
}

/// One realized out-of-model or topology change, in event order. The
/// simulation records these unconditionally so that *a posteriori*
/// verifiers such as the conformance oracle can reconstruct exactly when
/// the theorems' preconditions were perturbed: a clock corruption starts
/// a self-stabilization window (§5.2), an edge appearance starts a staged
/// insertion (§6), and a disappearance may open a partition. The log is
/// bounded: one entry per realized [`NetworkSchedule`] edge event (a
/// script that is itself held in memory in full, so the log at most
/// doubles what the scenario already allocates, and never grows past it)
/// plus one per injected fault — nothing is recorded on the per-message
/// or per-tick hot paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChangeRecord {
    /// A directed edge appeared (the *from* node discovered *to*).
    EdgeUp {
        /// Event time in seconds.
        at: f64,
        /// The node whose neighbour set grew.
        from: NodeId,
        /// The discovered neighbour.
        to: NodeId,
    },
    /// A directed edge vanished.
    EdgeDown {
        /// Event time in seconds.
        at: f64,
        /// The node whose neighbour set shrank.
        from: NodeId,
        /// The lost neighbour.
        to: NodeId,
    },
    /// An out-of-model logical-clock corruption
    /// ([`Simulation::inject_clock_offset`]).
    ClockFault {
        /// Injection time in seconds.
        at: f64,
        /// The corrupted node.
        node: NodeId,
        /// Offset added to the logical clock.
        amount: f64,
    },
    /// A scripted estimate corruption
    /// ([`Simulation::inject_estimate_bias`]): from `at` on, the node
    /// reads every neighbour estimate pushed by `bias · ε`, clamped back
    /// into the advertised `±ε` envelope. Inequality (1) still holds, so
    /// the paper bounds earn no allowance — this is the *in-model*
    /// adversary, unlike [`ClockFault`](Self::ClockFault).
    EstimateFault {
        /// Injection time in seconds.
        at: f64,
        /// The node whose estimate reads are corrupted.
        node: NodeId,
        /// Scripted bias in units of the per-edge `ε`, within `[-1, 1]`.
        bias: f64,
    },
}

impl ChangeRecord {
    /// When the change was realized (seconds).
    #[must_use]
    pub fn at(&self) -> f64 {
        match *self {
            ChangeRecord::EdgeUp { at, .. }
            | ChangeRecord::EdgeDown { at, .. }
            | ChangeRecord::ClockFault { at, .. }
            | ChangeRecord::EstimateFault { at, .. } => at,
        }
    }
}

/// Errors from [`SimBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// Neither a topology nor a schedule was provided.
    NoScenario,
    /// The scenario has fewer than two nodes.
    TooFewNodes(usize),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NoScenario => {
                f.write_str("no scenario: call .topology(..) or .schedule(..)")
            }
            BuildError::TooFewNodes(n) => write!(f, "scenario has {n} node(s), need at least 2"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Configures and constructs a [`Simulation`].
///
/// # Example
///
/// ```
/// use gcs_core::{Params, SimBuilder};
/// use gcs_net::Topology;
/// use gcs_sim::DriftModel;
///
/// let params = Params::builder().rho(0.01).mu(0.1).build().unwrap();
/// let mut sim = SimBuilder::new(params)
///     .topology(Topology::line(4))
///     .drift(DriftModel::TwoBlock)
///     .seed(7)
///     .build()
///     .unwrap();
/// sim.run_until_secs(5.0);
/// assert!(sim.snapshot().global_skew() < 0.5);
/// ```
#[derive(Debug)]
pub struct SimBuilder {
    params: Params,
    schedule: Option<NetworkSchedule>,
    edge_params: EdgeParamsMap,
    drift: DriftModel,
    mode: EstimateMode,
    policy: Option<Box<dyn ModePolicy>>,
    seed: u64,
    horizon: f64,
    // Crate-visible so the parallel builder can reject configurations the
    // sharded engine does not support before building.
    pub(crate) track_diameter: bool,
    pub(crate) log_capacity: usize,
}

impl SimBuilder {
    /// Starts a builder with the given algorithm parameters.
    #[must_use]
    pub fn new(params: Params) -> Self {
        SimBuilder {
            params,
            schedule: None,
            edge_params: EdgeParamsMap::default(),
            drift: DriftModel::None,
            mode: EstimateMode::default(),
            policy: None,
            seed: 0,
            horizon: 3600.0,
            track_diameter: false,
            log_capacity: 0,
        }
    }

    /// Uses a static topology (all edges up from `t = 0`, no dynamics).
    #[must_use]
    pub fn topology(mut self, topo: Topology) -> Self {
        self.schedule = Some(NetworkSchedule::static_graph(&topo));
        self
    }

    /// Uses an explicit dynamic-network script.
    #[must_use]
    pub fn schedule(mut self, schedule: NetworkSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Sets the per-edge model parameters (default:
    /// [`EdgeParams::default`] everywhere).
    #[must_use]
    pub fn edge_params(mut self, map: EdgeParamsMap) -> Self {
        self.edge_params = map;
        self
    }

    /// Sets the hardware-drift adversary.
    #[must_use]
    pub fn drift(mut self, drift: DriftModel) -> Self {
        self.drift = drift;
        self
    }

    /// Selects the estimate layer implementation.
    #[must_use]
    pub fn estimates(mut self, mode: EstimateMode) -> Self {
        self.mode = mode;
        self
    }

    /// Replaces the `A_OPT` mode policy (used by the baseline algorithms).
    #[must_use]
    pub fn policy(mut self, policy: Box<dyn ModePolicy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Root RNG seed; identical seeds give bit-identical runs.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Horizon used to materialize time-varying drift schedules (seconds).
    #[must_use]
    pub fn horizon(mut self, secs: f64) -> Self {
        self.horizon = secs;
        self
    }

    /// Enables the [`DiameterTracker`](crate::DiameterTracker): the
    /// simulation then measures the dynamic estimate diameter `D(t)` of
    /// Definition 3.1 (O(n) extra work per delivered flood).
    #[must_use]
    pub fn track_diameter(mut self, on: bool) -> Self {
        self.track_diameter = on;
        self
    }

    /// Enables the structured [`EventLog`](crate::log::EventLog), keeping
    /// at most `capacity` entries (mode switches, edge discovery/loss,
    /// handshake milestones).
    #[must_use]
    pub fn log_events(mut self, capacity: usize) -> Self {
        self.log_capacity = capacity;
        self
    }

    /// Builds the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] if no scenario was configured or it is too
    /// small.
    pub fn build(self) -> Result<Simulation, BuildError> {
        let schedule = self.schedule.ok_or(BuildError::NoScenario)?;
        let n = schedule.node_count();
        if n < 2 {
            return Err(BuildError::TooFewNodes(n));
        }

        // Derived knobs: refresh period, per-edge info, iota, G~, tick —
        // the shared derivation in `gcs-protocol`, so a daemon cluster
        // configured like this scenario lands on bit-identical constants.
        let universe = schedule.edge_universe();
        let cfg = derive_run_config(&self.params, self.mode, &self.edge_params, &universe, n);
        let (params, refresh, tick, edge_info) = (cfg.params, cfg.refresh, cfg.tick, cfg.edge_info);

        // Drift realization and node construction.
        let drift =
            self.drift
                .realize(n, params.rho(), SimTime::from_secs(self.horizon), self.seed);
        let mut nodes: Vec<NodeState> = (0..n)
            .map(|i| NodeState::new(NodeId::from(i), drift.initial[i]))
            .collect();

        let mut queue: EventQueue<Event> = EventQueue::new();
        for c in &drift.changes {
            queue.schedule(
                c.time,
                Event::RateChange {
                    node: c.node,
                    rate: c.rate,
                },
            );
        }
        for ev in schedule.events() {
            let e = match ev.kind {
                EdgeEventKind::Up => Event::EdgeUp {
                    from: ev.from,
                    to: ev.to,
                },
                EdgeEventKind::Down => Event::EdgeDown {
                    from: ev.from,
                    to: ev.to,
                },
            };
            queue.schedule(ev.time, e);
        }
        queue.schedule(SimTime::from_secs(tick), Event::Tick);

        // Stagger initial floods uniformly inside one refresh period so the
        // network does not send in lockstep.
        let mut stagger = rng::stream(self.seed, "flood-stagger", 0);
        for i in 0..n {
            let offset = stagger.gen_range(0.0..refresh.max(1e-9));
            queue.schedule(
                SimTime::from_secs(offset),
                Event::Flood {
                    node: NodeId::from(i),
                },
            );
        }

        // Initial graph: directed edges present at t = 0. Pairs present in
        // both directions are fully inserted (N^s(0) = N(0), §4.2); loners
        // enter the discovery handshake immediately.
        let mut graph = DynamicGraph::new(n);
        let mut bias_rng = rng::stream(self.seed, "oracle-bias", 0);
        let initial: std::collections::BTreeSet<(NodeId, NodeId)> =
            schedule.initial_directed().iter().copied().collect();
        let rho = params.rho();
        // The stability certificates assume staged insertion (constant
        // per-edge weights); the decaying-weight strategy varies κ and δ
        // continuously, so it falls back to full per-tick re-evaluation.
        let certs_enabled = matches!(params.insertion_strategy(), InsertionStrategy::Staged);
        let mut sim = Simulation {
            policy: self
                .policy
                .unwrap_or_else(|| Box::new(AoptPolicy::new(params.max_levels()))),
            params,
            mode: self.mode,
            graph: DynamicGraph::new(n),
            nodes: Vec::new(),
            queue: EventQueue::new(),
            edge_info,
            tick,
            refresh,
            now: SimTime::ZERO,
            bias_rng: rng::stream(self.seed, "oracle-bias", 1),
            gen_counter: 0,
            stats: SimStats::default(),
            diameter: self
                .track_diameter
                .then(|| crate::diameter::DiameterTracker::new(n, rho)),
            log: (self.log_capacity > 0)
                .then(|| crate::log::EventLog::with_capacity(self.log_capacity)),
            fault_injected: false,
            changes: Vec::new(),
            hot: HotColumns {
                stable_until: vec![f64::NEG_INFINITY; n],
                m_jump_sensitive: vec![true; n],
                delay_rng: (0..n)
                    .map(|i| rng::stream(self.seed, "delay", i as u64))
                    .collect(),
            },
            certs_enabled,
            full_reevaluation: false,
            eager_advance: false,
            scratch: Scratch::default(),
            redirect: None,
            telemetry: None,
            tel_local: LocalCounters::default(),
        };
        for &(u, v) in &initial {
            graph.insert_directed(u, v, SimTime::ZERO);
            let both = initial.contains(&(v, u));
            let mut slot = if both {
                EdgeSlot::initial()
            } else {
                sim.gen_counter += 1;
                EdgeSlot::discovered(SimTime::ZERO, 0.0, sim.gen_counter)
            };
            slot.oracle_bias = bias_rng.gen_range(-1.0..=1.0);
            let info = sim.edge_info[&EdgeKey::new(u, v)];
            nodes[u.index()].slots.insert(v, info, slot);
        }
        sim.graph = graph;
        sim.nodes = nodes;
        sim.queue = queue;

        // Kick off handshakes for one-directional initial edges.
        let starts: Vec<(NodeId, NodeId, u64)> = sim
            .nodes
            .iter()
            .flat_map(|node| {
                let u = node.id();
                node.slots
                    .iter()
                    .filter(|e| matches!(e.slot.insert, InsertState::Pending))
                    .map(move |e| (u, e.id, e.slot.generation))
            })
            .collect();
        for (u, v, generation) in starts {
            if Simulation::is_leader(u, v) {
                sim.schedule_leader_check(u, v, generation);
            }
        }
        Ok(sim)
    }
}

/// A running simulation: the dynamic network, all node states, and the
/// event queue.
///
/// Construct via [`SimBuilder`]; drive with [`run_until_secs`]
/// (or [`run_until`]); inspect with [`snapshot`], [`node`], and the
/// level-set accessors.
///
/// [`run_until_secs`]: Simulation::run_until_secs
/// [`run_until`]: Simulation::run_until
/// [`snapshot`]: Simulation::snapshot
/// [`node`]: Simulation::node
#[derive(Debug)]
pub struct Simulation {
    pub(crate) params: Params,
    policy: Box<dyn ModePolicy>,
    pub(crate) mode: EstimateMode,
    pub(crate) graph: DynamicGraph,
    pub(crate) nodes: Vec<NodeState>,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) edge_info: HashMap<EdgeKey, EdgeInfo>,
    tick: f64,
    pub(crate) refresh: f64,
    pub(crate) now: SimTime,
    bias_rng: StdRng,
    gen_counter: u64,
    pub(crate) stats: SimStats,
    diameter: Option<crate::diameter::DiameterTracker>,
    log: Option<crate::log::EventLog>,
    /// Set once [`Simulation::inject_clock_offset`] has been used: the
    /// flood-bound invariants then only hold up to the self-stabilization
    /// slack (see [`Simulation::verify_invariants`]).
    fault_injected: bool,
    /// Realized fault/edge changes, in event order
    /// (see [`Simulation::change_log`]).
    changes: Vec<ChangeRecord>,
    /// Struct-of-arrays layout of the per-node hot state the event path
    /// touches on every message and tick (see [`HotColumns`]).
    pub(crate) hot: HotColumns,
    /// Stability certificates apply (staged insertion only).
    certs_enabled: bool,
    /// Verification seam: evaluate every node at every tick.
    full_reevaluation: bool,
    /// Verification seam: advance every node after every event.
    eager_advance: bool,
    scratch: Scratch,
    /// Sharding seam: when set, node-local events spawned by
    /// *master-side* handlers (the leader check an edge-up schedules) are
    /// diverted here instead of the master queue, so the parallel engine
    /// can route them to the owning shard. `None` in the sequential
    /// engine — the plain queue path stays bit-identical.
    pub(crate) redirect: Option<Vec<(SimTime, Event)>>,
    /// Observability seam: when set, master-side dispatch reports ticks,
    /// mode switches, edge transitions, and fault injections to the sink
    /// (see [`gcs_telemetry::TelemetrySink`] for the determinism
    /// contract). `None` costs one branch per hook site — no allocation,
    /// no formatting, no drift in any counter.
    pub(crate) telemetry: Option<Box<dyn TelemetrySink>>,
    /// Node-local counter block the sequential engine's [`LocalCtx`]
    /// accumulates into when telemetry is enabled; flushed to the sink at
    /// the end of every [`Simulation::run_until`]. (The parallel engine
    /// keeps one such block per shard instead.)
    pub(crate) tel_local: LocalCounters,
}

/// Per-node hot state in struct-of-arrays layout, indexed by node id.
///
/// These are the columns the per-event and per-tick hot paths touch for
/// *many* nodes in one sweep: splitting them out of [`NodeState`] keeps
/// each sweep cache-linear, and (crucially for the sharded engine) each
/// column splits into disjoint contiguous per-shard `&mut` slices, so
/// worker threads borrow exactly their shard's rows with no locking.
#[derive(Debug)]
pub(crate) struct HotColumns {
    /// Per node: the instant (seconds) until which the last decision is
    /// certified stable against pure drift. `NEG_INFINITY` marks the node
    /// dirty (an event changed a decision input: a delivery that moved `M`
    /// while sensitive, an estimate update in message mode, a slot change,
    /// a rate change, a corruption); `INFINITY` means "until the next
    /// event". One array doubles as dirty set and horizon table, so the
    /// per-tick selection scan reads a single cache stream.
    pub stable_until: Vec<f64>,
    /// Per node: whether an upward jump of `M_u` (flood merge) can change
    /// the decision (see `StabilityCert::m_jump_sensitive`).
    pub m_jump_sensitive: Vec<bool>,
    /// Per node: the transport-delay stream for messages *sent* by this
    /// node. Per-node streams (rather than one engine-global stream) make
    /// the draw order a function of the sender's own event order, which
    /// is identical under sequential and sharded execution.
    pub delay_rng: Vec<StdRng>,
}

/// Reusable buffers for the per-tick hot path — the engine allocates
/// nothing per tick or per flood in steady state.
#[derive(Debug, Default)]
struct Scratch {
    /// Nodes selected for re-evaluation this tick.
    eval: Vec<u32>,
    /// Neighbour views of the node currently being decided.
    views: Vec<NeighborView>,
    /// Decisions of this tick, applied after all views are taken.
    decisions: Vec<Decision>,
    /// Flood fan-out: neighbour id + edge parameters.
    flood: Vec<(NodeId, EdgeParams)>,
}

#[derive(Debug, Clone, Copy)]
struct Decision {
    node: u32,
    mode: Mode,
    stable_until: f64,
    m_jump_sensitive: bool,
}

impl Simulation {
    /// The effective (validated + derived) parameters.
    #[must_use]
    pub fn params(&self) -> &Params {
        self.params_ref()
    }

    fn params_ref(&self) -> &Params {
        &self.params
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Trigger-evaluation period in seconds.
    #[must_use]
    pub fn tick_interval(&self) -> f64 {
        self.tick
    }

    /// Flood refresh period (hardware seconds).
    #[must_use]
    pub fn refresh_interval(&self) -> f64 {
        self.refresh
    }

    /// Immutable view of one node.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn node(&self, u: NodeId) -> &NodeState {
        &self.nodes[u.index()]
    }

    /// The current dynamic graph.
    #[must_use]
    pub fn graph(&self) -> &DynamicGraph {
        &self.graph
    }

    /// Engine counters.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Name of the active mode policy.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Derived info (`ε`, `κ`, `δ`) for an edge of the scenario's universe.
    #[must_use]
    pub fn edge_info(&self, e: EdgeKey) -> Option<EdgeInfo> {
        self.edge_info.get(&e).copied()
    }

    /// The deterministic leader of a potential edge (lower id, §4.3).
    #[must_use]
    pub fn is_leader(u: NodeId, v: NodeId) -> bool {
        u < v
    }

    /// Runs until simulated time `t` (inclusive of events at `t`), then
    /// advances every node's clocks exactly to `t`.
    ///
    /// Behaviour is a pure function of configuration and seed. Querying at
    /// intermediate times splits the exact piecewise-linear integration
    /// into more `f64` additions, which can perturb clock values in the
    /// last few ulps (≈ 1e−12) relative to a single long run; decisions
    /// and statistics are unaffected.
    pub fn run_until(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot run backwards to {t:?}");
        while let Some(next) = self.queue.next_time() {
            if next > t {
                break;
            }
            let (when, event) = self.queue.pop().expect("peeked");
            self.now = when;
            self.stats.events += 1;
            self.handle(when, event);
            if self.eager_advance {
                self.advance_all(when);
            }
        }
        self.now = t;
        self.advance_all(t);
        self.flush_local_telemetry();
    }

    /// Verification seam: when enabled, *every* node is re-decided at
    /// every tick — the reference O(n·deg) pass the incremental dirty-set
    /// engine is property-tested to be bit-identical to. Decisions (and
    /// therefore clocks, messages, and statistics) must not change.
    pub fn set_full_reevaluation(&mut self, on: bool) {
        self.full_reevaluation = on;
    }

    /// Verification seam: when enabled, every node is advanced after every
    /// event (maximally eager integration). Bit-identical to the default
    /// lazy advancement by construction — advancement only refreshes
    /// caches, it never moves a node's integration anchor (see the
    /// [`node`](crate::node) module docs).
    pub fn set_eager_advancement(&mut self, on: bool) {
        self.eager_advance = on;
    }

    /// [`run_until`](Simulation::run_until) with a plain seconds argument.
    pub fn run_until_secs(&mut self, secs: f64) {
        self.run_until(SimTime::from_secs(secs));
    }

    /// The current global skew `max_u L_u − min_u L_u`, folded directly
    /// over the node table — the streaming gauge behind per-sample
    /// observation loops. Bit-identical to
    /// `self.snapshot().global_skew()` (same iteration order, same
    /// `f64::max`/`min` folds) without allocating the `O(n)` snapshot
    /// vectors, which matters when a 10⁵-node run is sampled every
    /// period.
    ///
    /// # Panics
    ///
    /// Panics if the simulation has no nodes.
    #[must_use]
    pub fn global_skew_now(&self) -> f64 {
        let max = self
            .nodes
            .iter()
            .map(NodeState::logical)
            .fold(f64::NEG_INFINITY, f64::max);
        let min = self
            .nodes
            .iter()
            .map(NodeState::logical)
            .fold(f64::INFINITY, f64::min);
        assert!(max.is_finite() && min.is_finite(), "empty simulation");
        max - min
    }

    /// Snapshot of all clocks at the current instant.
    #[must_use]
    pub fn snapshot(&self) -> ClockSnapshot {
        ClockSnapshot {
            time: self.now.as_secs(),
            logical: self.nodes.iter().map(NodeState::logical).collect(),
            hardware: self.nodes.iter().map(NodeState::hardware).collect(),
            max_estimates: self.nodes.iter().map(NodeState::max_estimate).collect(),
            modes: self.nodes.iter().map(NodeState::mode).collect(),
        }
    }

    /// The unlocked level of the *undirected* edge `{u, v}`: the largest `s`
    /// with `v ∈ N^s_u` **and** `u ∈ N^s_v` (`None` if either side has not
    /// discovered the other).
    #[must_use]
    pub fn level_between(&self, u: NodeId, v: NodeId) -> Option<Level> {
        let a = self.nodes[u.index()]
            .slots
            .get(v)?
            .insert
            .level_at(self.nodes[u.index()].logical());
        let b = self.nodes[v.index()]
            .slots
            .get(u)?
            .insert
            .level_at(self.nodes[v.index()].logical());
        Some(a.min(b))
    }

    /// The level-`s` edge set `E_s(t)` of Definition 5.8.
    #[must_use]
    pub fn level_edges(&self, s: u32) -> Vec<EdgeKey> {
        let mut out = Vec::new();
        self.level_edges_into(s, &mut out);
        out
    }

    /// Buffer-reusing variant of [`level_edges`](Simulation::level_edges):
    /// clears `out` and fills it with `E_s(t)`. Analysis loops that sample
    /// every observation instant reuse one buffer instead of allocating a
    /// fresh vector per sample.
    pub fn level_edges_into(&self, s: u32, out: &mut Vec<EdgeKey>) {
        out.clear();
        for node in &self.nodes {
            let u = node.id();
            let logical = node.logical();
            for entry in node.slots.iter() {
                let v = entry.id;
                if u >= v {
                    continue;
                }
                // min(level_a, level_b) includes s iff both sides do.
                if !entry.slot.insert.level_at(logical).includes(s) {
                    continue;
                }
                let Some(back) = self.nodes[v.index()].slots.get(u) else {
                    continue;
                };
                if back
                    .insert
                    .level_at(self.nodes[v.index()].logical())
                    .includes(s)
                {
                    out.push(EdgeKey::new(u, v));
                }
            }
        }
    }

    /// Injects a logical-clock corruption (self-stabilization experiments):
    /// adds `offset` to node `u`'s logical clock.
    ///
    /// This is an out-of-model state change: the *other* nodes' flood
    /// bounds (`M`, `W`, `P`) knew nothing about it, so the invariants of
    /// Condition 4.3 and the `[W, P]` bracket re-establish themselves only
    /// after a few gossip rounds (the self-stabilization the paper
    /// discusses in §5.2). Expect [`verify_invariants`] to report
    /// violations during that window.
    ///
    /// [`verify_invariants`]: Simulation::verify_invariants
    pub fn inject_clock_offset(&mut self, u: NodeId, offset: f64) {
        let t = self.now;
        self.nodes[u.index()].advance_to(t, &self.params);
        let node = &mut self.nodes[u.index()];
        let l = node.logical();
        node.corrupt_logical(l + offset);
        self.fault_injected = true;
        self.changes.push(ChangeRecord::ClockFault {
            at: t.as_secs(),
            node: u,
            amount: offset,
        });
        if let Some(sink) = self.telemetry.as_deref_mut() {
            sink.on_fault(t.as_secs(), u.index(), offset);
        }
        // Oracle estimates read the corrupted clock directly, so every
        // node's decision inputs may have jumped: drop all certificates.
        for s in &mut self.hot.stable_until {
            *s = f64::NEG_INFINITY;
        }
    }

    /// Installs a scripted estimate corruption (chaos experiments): from
    /// now on, node `u` reads every neighbour estimate pushed by
    /// `bias · ε` (the scripted worst-case direction), clamped back into
    /// the advertised `±ε` envelope of inequality (1).
    ///
    /// Unlike [`inject_clock_offset`](Simulation::inject_clock_offset)
    /// this is an *in-model* adversary — the estimate layer is permitted
    /// exactly this much error — so the paper's bounds hold without any
    /// self-stabilization allowance, and the conformance oracle credits
    /// nothing for it.
    ///
    /// # Panics
    ///
    /// Panics unless `bias` is finite and within `[-1, 1]`.
    pub fn inject_estimate_bias(&mut self, u: NodeId, bias: f64) {
        let t = self.now;
        self.nodes[u.index()].advance_to(t, &self.params);
        self.nodes[u.index()].corrupt_estimates(bias);
        self.changes.push(ChangeRecord::EstimateFault {
            at: t.as_secs(),
            node: u,
            bias,
        });
        if let Some(sink) = self.telemetry.as_deref_mut() {
            sink.on_est_fault(t.as_secs(), u.index(), bias);
        }
        // The node's trigger inputs changed out of band: its stability
        // certificate (and those of neighbours reading nothing — only u
        // reads these estimates) is stale. Dropping u's horizon alone
        // would suffice; dropping all of them mirrors inject_clock_offset
        // and keeps the reasoning local.
        for s in &mut self.hot.stable_until {
            *s = f64::NEG_INFINITY;
        }
    }

    /// Installs a telemetry sink (post-build — works identically under
    /// both engines, so the parallel builder needs no special case).
    /// Replaces any previously installed sink.
    pub fn set_telemetry(&mut self, sink: Box<dyn TelemetrySink>) {
        self.telemetry = Some(sink);
    }

    /// Removes the telemetry sink, flushing any pending node-local
    /// counters into it first. `None` if no sink was installed.
    pub fn take_telemetry(&mut self) -> Option<Box<dyn TelemetrySink>> {
        self.flush_local_telemetry();
        self.telemetry.take()
    }

    /// Number of events pending in this engine's queue.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Size of the current dirty set: nodes whose stability horizon has
    /// expired at the current instant, i.e. exactly the nodes the next
    /// tick sweep would re-evaluate.
    #[must_use]
    pub fn dirty_nodes(&self) -> usize {
        let ts = self.now.as_secs();
        self.hot.stable_until.iter().filter(|&&s| ts >= s).count()
    }

    /// Reports the node-local counters accumulated since the last flush.
    fn flush_local_telemetry(&mut self) {
        if let Some(sink) = self.telemetry.as_deref_mut() {
            let counters = std::mem::take(&mut self.tel_local);
            sink.on_local(0, &counters);
        }
    }

    /// The structured event log, if enabled via
    /// [`SimBuilder::log_events`].
    #[must_use]
    pub fn event_log(&self) -> Option<&crate::log::EventLog> {
        self.log.as_ref()
    }

    /// The realized fault/insertion log: every scripted edge transition
    /// and injected clock corruption this run has executed so far, in
    /// event order. Always recorded (the entries are rare and small) —
    /// this is the ground truth a conformance oracle replays to know when
    /// the paper's bounds must be widened (self-stabilization after a
    /// [`ChangeRecord::ClockFault`], staged-insertion slack after a
    /// [`ChangeRecord::EdgeUp`], possible partitions after a
    /// [`ChangeRecord::EdgeDown`]).
    #[must_use]
    pub fn change_log(&self) -> &[ChangeRecord] {
        &self.changes
    }

    /// Runs until `until` seconds, snapshotting every `every` seconds
    /// (including the start and end instants), and returns the recorded
    /// [`Trace`](crate::Trace).
    ///
    /// # Panics
    ///
    /// Panics if `every` is not positive or `until` is in the past.
    pub fn record_trace(&mut self, until: f64, every: f64) -> crate::Trace {
        assert!(every > 0.0, "sampling period must be positive");
        let mut trace = crate::Trace::new();
        let mut t = self.now.as_secs();
        trace.push(self.snapshot());
        while t < until - 1e-12 {
            t = (t + every).min(until);
            self.run_until_secs(t);
            trace.push(self.snapshot());
        }
        trace
    }

    /// The measured dynamic estimate diameter `D(t)` of Definition 3.1, if
    /// tracking was enabled via [`SimBuilder::track_diameter`].
    /// `f64::INFINITY` while some node has not yet heard (transitively)
    /// from every other node since an edge change isolated it.
    #[must_use]
    pub fn dynamic_diameter(&mut self) -> Option<f64> {
        let t = self.now;
        self.diameter.as_mut().map(|d| d.diameter(t))
    }

    /// The measured dynamic estimate radius `R_u(t)`, if tracking is on.
    #[must_use]
    pub fn dynamic_radius(&mut self, u: NodeId) -> Option<f64> {
        let t = self.now;
        self.diameter.as_mut().map(|d| d.radius(u.index(), t))
    }

    /// The estimate `L̃ᵥᵤ(t)` node `u` currently holds for `v`, if any.
    /// Nodes must be advanced to `now` (true after any `run_until`).
    #[must_use]
    pub fn estimate_of(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let node = &self.nodes[u.index()];
        let entry = node.slots.entry(v)?;
        self.estimate_from_entry(node, entry, self.nodes[v.index()].logical())
    }

    /// The estimate a node holds for one neighbour entry — the single code
    /// path both [`estimate_of`](Simulation::estimate_of) and the view
    /// builder use, so the two can never disagree. `truth` is the
    /// neighbour's logical clock at the evaluation instant (callers read it
    /// via `logical()` or the pure `logical_at`, which agree bitwise).
    fn estimate_from_entry(
        &self,
        node: &NodeState,
        entry: &NeighborEntry,
        truth: f64,
    ) -> Option<f64> {
        let eps = entry.info.epsilon;
        let base = match self.mode {
            EstimateMode::Oracle(model) => {
                Some(model.apply(node.logical(), truth, entry.slot.oracle_bias * eps, eps))
            }
            EstimateMode::Messages => entry.slot.reckoned_estimate(node.hardware()),
        }?;
        // A scripted estimate corruption pushes the read by bias·ε, then
        // clamps back into the advertised envelope — inequality (1) is
        // preserved by construction, whatever the underlying layer
        // produced, so the conformance bounds earn no fault allowance.
        Some(match node.scripted_bias() {
            Some(bias) => (base + bias * eps).clamp(truth - eps, truth + eps),
            None => base,
        })
    }

    /// Checks the runtime invariants of the model and algorithm at the
    /// current instant, returning one description per violation. Intended
    /// for tests; cost is `O(n·deg)` plus a trigger evaluation per node.
    #[must_use]
    pub fn verify_invariants(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let max_l = self
            .nodes
            .iter()
            .map(NodeState::logical)
            .fold(f64::NEG_INFINITY, f64::max);
        let min_l = self
            .nodes
            .iter()
            .map(NodeState::logical)
            .fold(f64::INFINITY, f64::min);
        const TOL: f64 = 1e-9;

        // P may briefly undershoot the maximum while a newly maximal
        // node finishes a fast-mode episode (at most a few ticks).
        //
        // After an out-of-model clock corruption the exact bound is
        // gone for good: P re-establishes itself from relayed max
        // estimates, and each relay hop undercredits in-transit growth
        // (credit is (1−ρ)·delay_min while the true maximum may grow by
        // β·delay_max, plus up to one refresh period of relay latency).
        // From then on §5.2's self-stabilization guarantee applies
        // instead: P trails the maximum by at most the accumulated
        // per-hop credit error, which we bound by (n−1) worst-case
        // hops.
        let mut p_tol = 10.0 * self.params.mu() * self.params.beta() * self.tick + TOL;
        if self.fault_injected {
            let per_hop = self
                .edge_info
                .values()
                .map(|info| {
                    self.params.beta()
                        * (info.params.delay_bound() + self.refresh / self.params.alpha())
                        - transport::min_transit_credit(info.params, self.params.rho())
                })
                .fold(0.0, f64::max);
            p_tol += (self.nodes.len() as f64 - 1.0) * per_hop;
        }

        for node in &self.nodes {
            let u = node.id();
            if node.max_estimate() < node.logical() - TOL {
                violations.push(format!("{u}: M < L (Condition 4.3 (4))"));
            }
            if node.max_estimate() > max_l + TOL {
                violations.push(format!(
                    "{u}: M = {} exceeds max logical {} (Condition 4.3 (2))",
                    node.max_estimate(),
                    max_l
                ));
            }
            if node.min_lower_bound() > min_l + TOL {
                violations.push(format!("{u}: W exceeds the network minimum"));
            }
            if node.max_upper_bound() < max_l - p_tol {
                violations.push(format!("{u}: P below the network maximum"));
            }
            // Estimate accuracy: inequality (1).
            for entry in node.slots.iter() {
                let v = entry.id;
                let truth = self.nodes[v.index()].logical();
                if let Some(est) = self.estimate_from_entry(node, entry, truth) {
                    if (est - truth).abs() > entry.info.epsilon + TOL {
                        violations.push(format!(
                            "estimate error |{est} - {truth}| > eps {} on ({u}, {v})",
                            entry.info.epsilon
                        ));
                    }
                }
            }
            // Lemma 5.3: the triggers are mutually exclusive.
            let neighbors = self.neighbor_views(u.index());
            let view = self.node_view(u.index(), &neighbors);
            if fast_trigger(&view, self.params.max_levels())
                && slow_trigger(&view, self.params.max_levels())
            {
                violations.push(format!("{u}: fast and slow triggers both hold (Lemma 5.3)"));
            }
        }

        // Lemma 5.5 (I): both endpoints of a scheduled insertion agree.
        for node in &self.nodes {
            let u = node.id();
            for entry in node.slots.iter() {
                let v = entry.id;
                if u >= v {
                    continue;
                }
                if let (
                    InsertState::Scheduled { t0: a0, i: ai },
                    Some(InsertState::Scheduled { t0: b0, i: bi }),
                ) = (
                    entry.slot.insert,
                    self.nodes[v.index()].slots.get(u).map(|s| s.insert),
                ) {
                    if (a0 - b0).abs() > TOL || (ai - bi).abs() > TOL {
                        violations.push(format!(
                            "insertion disagreement on {{{u}, {v}}}: ({a0}, {ai}) vs ({b0}, {bi})"
                        ));
                    }
                }
            }
        }
        violations
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    /// Executes one event. Crate-visible: the parallel engine calls this
    /// for the cross-shard-state events (`Tick`, `EdgeUp`, `EdgeDown`) it
    /// executes sequentially at rendezvous points; node-local events are
    /// dispatched through the same [`LocalCtx`] handlers the shard
    /// workers run, so both engines execute literally identical code.
    pub(crate) fn handle(&mut self, t: SimTime, event: Event) {
        match event {
            Event::Tick => {
                self.stats.ticks += 1;
                self.reevaluate_modes(t);
                if let Some(sink) = self.telemetry.as_deref_mut() {
                    // `scratch.eval` still holds this sweep's selection.
                    sink.on_tick(t.as_secs(), self.scratch.eval.len());
                }
                self.queue
                    .schedule(t + SimDuration::from_secs(self.tick), Event::Tick);
            }
            Event::EdgeUp { from, to } => self.on_edge_up(t, from, to),
            Event::EdgeDown { from, to } => self.on_edge_down(t, from, to),
            local => self.local_ctx().handle(t, local),
        }
    }

    /// The node-local handler context of the sequential engine: the whole
    /// node range, with the master queue as the event sink.
    fn local_ctx(&mut self) -> LocalCtx<'_, EventQueue<Event>> {
        LocalCtx {
            range: 0..self.nodes.len(),
            nodes: &mut self.nodes,
            stable_until: &mut self.hot.stable_until,
            m_jump_sensitive: &mut self.hot.m_jump_sensitive,
            delay_rng: &mut self.hot.delay_rng,
            stats: &mut self.stats,
            sink: &mut self.queue,
            flood_buf: &mut self.scratch.flood,
            params: &self.params,
            message_mode: matches!(self.mode, EstimateMode::Messages),
            edge_info: &self.edge_info,
            graph: &self.graph,
            diameter: self.diameter.as_mut(),
            log: self.log.as_mut(),
            refresh: self.refresh,
            tel: if self.telemetry.is_some() {
                Some(&mut self.tel_local)
            } else {
                None
            },
        }
    }

    pub(crate) fn advance_all(&mut self, t: SimTime) {
        let Simulation { nodes, params, .. } = self;
        for node in nodes.iter_mut() {
            node.advance_to(t, params);
        }
    }

    /// The neighbour views of one node, as a fresh vector (test/diagnostic
    /// path; the tick loop uses [`fill_neighbor_views`] with a reused
    /// buffer).
    ///
    /// [`fill_neighbor_views`]: Simulation::fill_neighbor_views
    fn neighbor_views(&self, u: usize) -> Vec<NeighborView> {
        let mut out = Vec::with_capacity(self.nodes[u].slots.len());
        self.fill_neighbor_views(u, self.nodes[u].last_update(), &mut out);
        out
    }

    /// Clears `out` and fills it with node `u`'s neighbour views at `t`,
    /// reading the per-edge constants from the node's own neighbour table
    /// (no map lookups, no allocation) and the neighbours' clocks through
    /// the pure `logical_at` (no mutation — skipped nodes stay untouched).
    /// Node `u` itself must be advanced to `t`. Returns the logical-clock
    /// distance to the nearest *scheduled level unlock* among the
    /// neighbours (`INFINITY` if none is pending) — the level part of the
    /// stability certificate.
    fn fill_neighbor_views(&self, u: usize, t: SimTime, out: &mut Vec<NeighborView>) -> f64 {
        out.clear();
        let node = &self.nodes[u];
        debug_assert_eq!(node.last_update(), t, "evaluated node must be advanced");
        let logical = node.logical();
        let mut unlock_margin = f64::INFINITY;
        for entry in node.slots.iter() {
            let info = &entry.info;
            let level = entry.slot.insert.level_at(logical);
            if let InsertState::Scheduled { t0, i } = entry.slot.insert {
                if let Level::Finite(s) = level {
                    // T_{s+1} is the next threshold L_u can cross
                    // (T_1 = t0 covers the not-yet-started case).
                    unlock_margin = unlock_margin.min(InsertState::t_s(t0, i, s + 1) - logical);
                }
            }
            // Under the decaying-weight strategy the edge's effective
            // weight (and with it delta) shrinks with the local clock.
            let (kappa, delta) = match self.params.insertion_strategy() {
                InsertionStrategy::Staged => (info.kappa, info.delta),
                InsertionStrategy::DecayingWeight { halving } => {
                    let k = entry
                        .slot
                        .insert
                        .effective_kappa(logical, info.kappa, halving);
                    (k, self.params.delta_for_kappa(k, info.params, info.epsilon))
                }
            };
            let truth = self.nodes[entry.id.index()].logical_at(t, &self.params);
            out.push(NeighborView {
                estimate: self.estimate_from_entry(node, entry, truth),
                kappa,
                epsilon: info.epsilon,
                tau: info.params.tau,
                delta,
                level,
            });
        }
        unlock_margin
    }

    /// The *effective* weight of the undirected edge `{u, v}` right now:
    /// the final `κ` under staged insertion, or the larger of the two
    /// endpoints' decayed weights under the decaying-weight strategy.
    /// `None` if either endpoint has not discovered the other.
    #[must_use]
    pub fn effective_kappa(&self, e: EdgeKey) -> Option<f64> {
        let info = self.edge_info.get(&e)?;
        match self.params.insertion_strategy() {
            InsertionStrategy::Staged => {
                self.nodes[e.lo().index()].slots.get(e.hi())?;
                self.nodes[e.hi().index()].slots.get(e.lo())?;
                Some(info.kappa)
            }
            InsertionStrategy::DecayingWeight { halving } => {
                let a = self.nodes[e.lo().index()].slots.get(e.hi())?;
                let b = self.nodes[e.hi().index()].slots.get(e.lo())?;
                let ka = a.insert.effective_kappa(
                    self.nodes[e.lo().index()].logical(),
                    info.kappa,
                    halving,
                );
                let kb = b.insert.effective_kappa(
                    self.nodes[e.hi().index()].logical(),
                    info.kappa,
                    halving,
                );
                Some(ka.max(kb))
            }
        }
    }

    fn node_view<'a>(&self, u: usize, neighbors: &'a [NeighborView]) -> NodeView<'a> {
        let node = &self.nodes[u];
        NodeView {
            logical: node.logical(),
            max_estimate: node.max_estimate(),
            current_mode: node.mode(),
            iota: self.params.iota(),
            mu: self.params.mu(),
            rho: self.params.rho(),
            neighbors,
        }
    }

    /// The per-tick mode evaluation. Only nodes that are dirty (an event
    /// touched their decision inputs) or whose stability horizon expired
    /// are re-decided; everyone else provably decides the same mode, so the
    /// skip is bit-identical to the full pass (debug builds re-check this
    /// against the reference pass on every tick).
    fn reevaluate_modes(&mut self, t: SimTime) {
        let ts = t.as_secs();
        let mut eval = std::mem::take(&mut self.scratch.eval);
        eval.clear();
        for u in 0..self.nodes.len() {
            if self.full_reevaluation || ts >= self.hot.stable_until[u] {
                eval.push(u as u32);
            }
        }

        // Advance only the nodes under evaluation; their neighbours' clocks
        // are read through the pure `logical_at`, so skipped nodes are not
        // even touched. Advancement is query-invariant, so advancing a
        // subset (rather than all) changes no trajectory.
        for &u in &eval {
            self.nodes[u as usize].advance_to(t, &self.params);
        }

        // Decide every selected node from the pre-update state, then apply.
        let mut views = std::mem::take(&mut self.scratch.views);
        let mut decisions = std::mem::take(&mut self.scratch.decisions);
        decisions.clear();
        self.stats.mode_evaluations += eval.len() as u64;
        // Worst-case rate at which any compared difference (estimate − L,
        // M − L) can drift: fastest logical rate minus slowest.
        let drift_rate = self.params.beta() - self.params.alpha();
        for &u in &eval {
            let u = u as usize;
            let unlock_margin = self.fill_neighbor_views(u, t, &mut views);
            let view = self.node_view(u, &views);
            // With certificates disabled (decaying-weight strategy) the
            // margin computation would be discarded — don't pay for it.
            let (mode, cert) = if self.certs_enabled {
                self.policy.decide_and_certify(&view)
            } else {
                (self.policy.decide(&view), None)
            };
            let (stable_until, m_jump_sensitive) = match cert {
                Some(cert) => {
                    let margin_secs = (cert.estimate_margin / drift_rate)
                        .min(cert.m_margin / drift_rate)
                        .min(unlock_margin / self.params.beta());
                    // Halve the horizon: the margins are computed in real
                    // arithmetic while the clocks integrate in f64, so keep
                    // a wide safety band against rounding.
                    (ts + 0.5 * margin_secs, cert.m_jump_sensitive)
                }
                None => (f64::NEG_INFINITY, true),
            };
            decisions.push(Decision {
                node: u as u32,
                mode,
                stable_until,
                m_jump_sensitive,
            });
        }
        for d in &decisions {
            let u = d.node as usize;
            let node = &mut self.nodes[u];
            if node.mode() != d.mode {
                if let Some(log) = &mut self.log {
                    log.push(crate::log::LogEntry::ModeSwitch {
                        time: t,
                        node: node.id(),
                        mode: d.mode,
                    });
                }
                if let Some(sink) = self.telemetry.as_deref_mut() {
                    sink.on_mode_switch(ts, u, d.mode == Mode::Fast);
                }
            }
            node.set_mode(d.mode);
            self.hot.stable_until[u] = d.stable_until;
            self.hot.m_jump_sensitive[u] = d.m_jump_sensitive;
        }

        #[cfg(debug_assertions)]
        self.debug_verify_skipped(t, &eval);

        self.scratch.eval = eval;
        self.scratch.views = views;
        self.scratch.decisions = decisions;
    }

    /// Debug-build cross-check of the stability certificates: every node
    /// *not* re-evaluated this tick must decide exactly its current mode
    /// under the reference pass.
    #[cfg(debug_assertions)]
    fn debug_verify_skipped(&mut self, t: SimTime, evaluated: &[u32]) {
        if self.full_reevaluation {
            return;
        }
        let mut skipped = vec![true; self.nodes.len()];
        for &u in evaluated {
            skipped[u as usize] = false;
        }
        let mut views = Vec::new();
        for (u, _) in skipped.iter().enumerate().filter(|&(_, &s)| s) {
            self.nodes[u].advance_to(t, &self.params);
            self.fill_neighbor_views(u, t, &mut views);
            let view = self.node_view(u, &views);
            let mode = self.policy.decide(&view);
            assert_eq!(
                mode,
                self.nodes[u].mode(),
                "stability certificate violated for node {u} at {t:?}"
            );
        }
    }

    fn on_edge_up(&mut self, t: SimTime, from: NodeId, to: NodeId) {
        if self.graph.contains(from, to) {
            return; // Idempotent: scripted duplicate.
        }
        self.graph.insert_directed(from, to, t);
        self.changes.push(ChangeRecord::EdgeUp {
            at: t.as_secs(),
            from,
            to,
        });
        if let Some(sink) = self.telemetry.as_deref_mut() {
            sink.on_edge(t.as_secs(), from.index(), to.index(), true);
        }
        self.nodes[from.index()].advance_to(t, &self.params);
        self.gen_counter += 1;
        let generation = self.gen_counter;
        let logical = self.nodes[from.index()].logical();
        let info = self.edge_info[&EdgeKey::new(from, to)];
        let mut slot = EdgeSlot::discovered(t, logical, generation);
        slot.oracle_bias = self.bias_rng.gen_range(-1.0..=1.0);
        if let InsertionStrategy::DecayingWeight { .. } = self.params.insertion_strategy() {
            // Section 5.5's simpler strategy: no handshake; start the local
            // weight decay from 2x the best available global-skew bound.
            let g = if self.params.dynamic_estimates() {
                self.nodes[from.index()].g_estimate() + self.params.iota()
            } else {
                self.params.g_tilde().expect("static G~ filled at build")
            };
            slot.insert = InsertState::Decaying {
                l0: logical,
                kappa0: (2.0 * g).max(info.kappa),
            };
            self.stats.insertions_scheduled += 1;
        }
        let staged = matches!(slot.insert, InsertState::Pending);
        self.nodes[from.index()].slots.insert(to, info, slot);
        self.hot.stable_until[from.index()] = f64::NEG_INFINITY;
        if let Some(log) = &mut self.log {
            log.push(crate::log::LogEntry::EdgeDiscovered {
                time: t,
                node: from,
                neighbor: to,
            });
        }
        if staged && Self::is_leader(from, to) {
            self.schedule_leader_check(from, to, generation);
        }
    }

    fn on_edge_down(&mut self, t: SimTime, from: NodeId, to: NodeId) {
        if !self.graph.contains(from, to) {
            return;
        }
        self.graph.remove_directed(from, to);
        self.changes.push(ChangeRecord::EdgeDown {
            at: t.as_secs(),
            from,
            to,
        });
        if let Some(sink) = self.telemetry.as_deref_mut() {
            sink.on_edge(t.as_secs(), from.index(), to.index(), false);
        }
        self.nodes[from.index()].advance_to(t, &self.params);
        // Listing 1 lines 15-18: drop the neighbour from every N^s and
        // forget the insertion times.
        self.nodes[from.index()].slots.remove(to);
        self.hot.stable_until[from.index()] = f64::NEG_INFINITY;
        self.stats.edge_removals += 1;
        if let Some(log) = &mut self.log {
            log.push(crate::log::LogEntry::EdgeLost {
                time: t,
                node: from,
                neighbor: to,
            });
        }
    }

    fn schedule_leader_check(&mut self, u: NodeId, v: NodeId, generation: u64) {
        let info = self.edge_info[&EdgeKey::new(u, v)];
        let delta = self.params.handshake_delta(info.params);
        let target = self.nodes[u.index()]
            .slots
            .get(v)
            .map(|s| s.discovered_l)
            .unwrap_or_default()
            + self.params.beta() * delta;
        self.schedule_logical_event(u, target, |target_logical| Event::LeaderCheck {
            u,
            v,
            generation,
            target_logical,
        });
    }

    /// Schedules `make_event(target)` for (approximately) the moment node
    /// `u`'s logical clock reaches `target`. Handlers must re-check and
    /// reschedule if the clock has not reached the target yet (rates may
    /// have changed in between); reaching a logical target is always a
    /// *lower* bound on elapsed real time, which is what Listing 1 needs.
    ///
    /// Master-side only (build and edge-up); the shard-side twin lives on
    /// [`LocalCtx`] and computes the *same float expression*. When the
    /// redirect seam is active (parallel engine) the spawned node-local
    /// event is buffered for routing to its owner shard instead of being
    /// enqueued here.
    fn schedule_logical_event(
        &mut self,
        u: NodeId,
        target: f64,
        make_event: impl FnOnce(f64) -> Event,
    ) {
        let node = &self.nodes[u.index()];
        let rate = node.mode().multiplier(self.params.mu()) * node.hw_rate();
        let dt = ((target - node.logical()) / rate).max(0.0);
        let at = self.now + SimDuration::from_secs(dt);
        let event = make_event(target);
        match &mut self.redirect {
            Some(buf) => buf.push((at, event)),
            None => self.queue.schedule(at, event),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::ErrorModel;

    fn params() -> Params {
        Params::builder().rho(0.01).mu(0.1).build().unwrap()
    }

    fn line_sim(n: usize, seed: u64) -> Simulation {
        SimBuilder::new(params())
            .topology(Topology::line(n))
            .drift(DriftModel::TwoBlock)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn build_requires_scenario() {
        let err = SimBuilder::new(params()).build().unwrap_err();
        assert_eq!(err, BuildError::NoScenario);
        assert!(err.to_string().contains("scenario"));
    }

    #[test]
    fn runs_and_keeps_clocks_near_real_time() {
        let mut sim = line_sim(4, 1);
        sim.run_until_secs(10.0);
        let snap = sim.snapshot();
        for (i, &l) in snap.logical.iter().enumerate() {
            let lo = 10.0 * sim.params().alpha() - 1e-9;
            let hi = 10.0 * sim.params().beta() + 1e-9;
            assert!((lo..=hi).contains(&l), "node {i}: L = {l} outside envelope");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = line_sim(6, 42);
        let mut b = line_sim(6, 42);
        a.run_until_secs(20.0);
        b.run_until_secs(20.0);
        assert_eq!(a.snapshot().logical, b.snapshot().logical);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = line_sim(6, 1);
        let mut b = line_sim(6, 2);
        a.run_until_secs(20.0);
        b.run_until_secs(20.0);
        assert_ne!(a.snapshot().logical, b.snapshot().logical);
    }

    #[test]
    fn initial_edges_are_fully_inserted() {
        let sim = line_sim(4, 0);
        assert_eq!(
            sim.level_between(NodeId(0), NodeId(1)),
            Some(Level::Infinite)
        );
        let e1 = sim.level_edges(1);
        assert_eq!(e1.len(), 3);
    }

    #[test]
    fn invariants_hold_during_run() {
        let mut sim = line_sim(5, 3);
        for k in 1..=20 {
            sim.run_until_secs(k as f64);
            let v = sim.verify_invariants();
            assert!(v.is_empty(), "violations at t={k}: {v:?}");
        }
    }

    #[test]
    fn global_skew_stays_small_on_line() {
        let mut sim = line_sim(6, 7);
        sim.run_until_secs(60.0);
        let g = sim.snapshot().global_skew();
        // Loose sanity bound; the precise Theorem 5.6 test lives in the
        // integration suite.
        assert!(g < 0.5, "global skew {g} too large");
        assert!(g > 0.0);
    }

    #[test]
    fn floods_flow_and_deliver() {
        let mut sim = line_sim(4, 5);
        sim.run_until_secs(5.0);
        let s = sim.stats();
        assert!(s.messages_sent > 0);
        assert!(s.messages_delivered > 0);
        assert!(s.messages_delivered <= s.messages_sent);
    }

    #[test]
    fn inserted_edge_completes_handshake_and_schedules() {
        let base = Topology::line(4);
        let chord = EdgeKey::new(NodeId(0), NodeId(3));
        let schedule =
            NetworkSchedule::with_edge_insertion(&base, &[(chord, SimTime::from_secs(2.0))], 0.001);
        let mut p = Params::builder();
        p.rho(0.01).mu(0.1).insertion_scale(0.02);
        let mut sim = SimBuilder::new(p.build().unwrap())
            .schedule(schedule)
            .seed(9)
            .build()
            .unwrap();
        assert_eq!(sim.level_between(NodeId(0), NodeId(3)), None);
        sim.run_until_secs(1.0);
        assert_eq!(sim.level_between(NodeId(0), NodeId(3)), None);
        sim.run_until_secs(60.0);
        // Handshake done and insertion scheduled on both sides.
        assert!(sim.stats().handshakes_offered >= 1);
        assert_eq!(sim.stats().insertions_scheduled, 2);
        let lvl = sim.level_between(NodeId(0), NodeId(3)).unwrap();
        assert!(lvl >= Level::Finite(0));
        assert!(sim.verify_invariants().is_empty());
    }

    #[test]
    fn edge_removal_clears_state() {
        let base = Topology::ring(4);
        let mut schedule = NetworkSchedule::static_graph(&base);
        schedule.add_undirected_down(
            EdgeKey::new(NodeId(0), NodeId(1)),
            SimTime::from_secs(3.0),
            0.001,
        );
        let mut sim = SimBuilder::new(params())
            .schedule(schedule)
            .seed(4)
            .build()
            .unwrap();
        sim.run_until_secs(2.0);
        assert!(sim.level_between(NodeId(0), NodeId(1)).is_some());
        sim.run_until_secs(4.0);
        assert_eq!(sim.level_between(NodeId(0), NodeId(1)), None);
        assert_eq!(sim.stats().edge_removals, 2);
        assert!(sim.verify_invariants().is_empty());
    }

    #[test]
    fn corruption_is_reflected_and_recovered_from() {
        let mut sim = line_sim(4, 8);
        sim.run_until_secs(5.0);
        sim.inject_clock_offset(NodeId(0), 0.2);
        let g0 = sim.snapshot().global_skew();
        assert!(g0 >= 0.2 - 1e-9);
        // Corruption is an out-of-model state injection: the flood bounds
        // (P >= max L) take a few seconds of gossip + drift margin to
        // re-establish themselves.
        sim.run_until_secs(10.0);
        assert!(
            sim.verify_invariants().is_empty(),
            "{:?}",
            sim.verify_invariants()
        );
        sim.run_until_secs(25.0);
        let g1 = sim.snapshot().global_skew();
        assert!(g1 < g0 / 2.0, "skew did not recover: {g0} -> {g1}");
    }

    #[test]
    fn scripted_estimate_bias_stays_in_envelope_and_is_logged() {
        let mut sim = line_sim(4, 8);
        sim.run_until_secs(5.0);
        sim.inject_estimate_bias(NodeId(1), -1.0);
        // The change log records the fault at the injection instant.
        let rec = *sim.change_log().last().expect("fault recorded");
        match rec {
            ChangeRecord::EstimateFault { at, node, bias } => {
                assert!((at - 5.0).abs() < 1e-9);
                assert_eq!(node, NodeId(1));
                assert_eq!(bias, -1.0);
            }
            other => panic!("expected EstimateFault, got {other:?}"),
        }
        // Every estimate node 1 reads is pushed to the bottom of the
        // advertised envelope: est = truth - ε exactly (default oracle
        // model is exact, so the scripted push is never re-clamped).
        let node = sim.node(NodeId(1));
        let neighbours: Vec<NodeId> = node.slots.ids().collect();
        for v in neighbours {
            let truth = sim.node(v).logical();
            let eps = sim
                .node(NodeId(1))
                .slots
                .entry(v)
                .expect("neighbour entry")
                .info
                .epsilon;
            let est = sim.estimate_of(NodeId(1), v).expect("estimate");
            assert!(
                (est - (truth - eps)).abs() < 1e-12,
                "estimate {est} should sit at truth-eps {}",
                truth - eps
            );
            assert!((est - truth).abs() <= eps + 1e-12, "inequality (1) holds");
        }
        // The run continues and the model invariants stay intact: the
        // corruption is in-model, not a clock discontinuity.
        sim.run_until_secs(15.0);
        assert!(
            sim.verify_invariants().is_empty(),
            "{:?}",
            sim.verify_invariants()
        );
    }

    #[test]
    fn message_estimate_mode_works() {
        let mut sim = SimBuilder::new(params())
            .topology(Topology::ring(5))
            .estimates(EstimateMode::Messages)
            .drift(DriftModel::RandomConstant)
            .seed(11)
            .build()
            .unwrap();
        sim.run_until_secs(10.0);
        // After a few refresh periods every neighbour has an estimate.
        for u in 0..5u32 {
            let node = sim.node(NodeId(u));
            for v in node.slots.ids() {
                assert!(
                    sim.estimate_of(NodeId(u), v).is_some(),
                    "missing estimate ({u}, {v})"
                );
            }
        }
        assert!(sim.verify_invariants().is_empty());
    }

    #[test]
    fn hide_error_model_respects_epsilon() {
        let mut sim = SimBuilder::new(params())
            .topology(Topology::line(4))
            .estimates(EstimateMode::Oracle(ErrorModel::Hide))
            .drift(DriftModel::TwoBlock)
            .seed(12)
            .build()
            .unwrap();
        sim.run_until_secs(15.0);
        assert!(sim.verify_invariants().is_empty());
    }

    #[test]
    fn run_until_is_monotone() {
        let mut sim = line_sim(3, 0);
        sim.run_until_secs(1.0);
        sim.run_until_secs(1.0); // same time: fine
        let l = sim.node(NodeId(0)).logical();
        sim.run_until_secs(2.0);
        assert!(sim.node(NodeId(0)).logical() > l);
    }

    #[test]
    #[should_panic(expected = "cannot run backwards")]
    fn run_backwards_panics() {
        let mut sim = line_sim(3, 0);
        sim.run_until_secs(5.0);
        sim.run_until_secs(1.0);
    }

    #[test]
    fn record_trace_samples_inclusively() {
        let mut sim = line_sim(3, 1);
        let trace = sim.record_trace(2.0, 0.5);
        assert_eq!(trace.len(), 5); // 0.0, 0.5, 1.0, 1.5, 2.0
        assert_eq!(trace.samples()[0].time, 0.0);
        assert_eq!(trace.samples()[4].time, 2.0);
        assert!(trace.max_global_skew() >= 0.0);
    }

    #[test]
    fn event_log_captures_insertion_milestones() {
        use crate::log::LogEntry;
        let base = Topology::line(4);
        let chord = EdgeKey::new(NodeId(0), NodeId(3));
        let schedule =
            NetworkSchedule::with_edge_insertion(&base, &[(chord, SimTime::from_secs(2.0))], 0.001);
        let mut p = Params::builder();
        p.rho(0.01).mu(0.1).insertion_scale(0.02);
        let mut sim = SimBuilder::new(p.build().unwrap())
            .schedule(schedule)
            .log_events(10_000)
            .seed(9)
            .build()
            .unwrap();
        sim.run_until_secs(30.0);
        let log = sim.event_log().unwrap();
        let discovered: Vec<_> = log
            .entries()
            .iter()
            .filter(|e| matches!(e, LogEntry::EdgeDiscovered { .. }))
            .collect();
        assert_eq!(discovered.len(), 2, "both directions discovered");
        let offers: Vec<_> = log
            .entries()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    LogEntry::InsertOffered {
                        leader: NodeId(0),
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(offers.len(), 1, "one offer from the leader");
        let schedules: Vec<_> = log
            .entries()
            .iter()
            .filter_map(|e| match e {
                LogEntry::InsertScheduled { t0, i, .. } => Some((*t0, *i)),
                _ => None,
            })
            .collect();
        assert_eq!(schedules.len(), 2, "both endpoints installed times");
        assert_eq!(schedules[0], schedules[1], "Lemma 5.5 agreement");
        // Ordering: discovery strictly precedes the offer, which precedes
        // or coincides with the schedules.
        assert!(discovered[0].time() < offers[0].time());
    }

    #[test]
    fn decaying_strategy_needs_no_handshake() {
        use crate::params::InsertionStrategy;
        let base = Topology::line(4);
        let chord = EdgeKey::new(NodeId(0), NodeId(3));
        let schedule =
            NetworkSchedule::with_edge_insertion(&base, &[(chord, SimTime::from_secs(2.0))], 0.001);
        let mut p = Params::builder();
        p.rho(0.01)
            .mu(0.1)
            .insertion_strategy(InsertionStrategy::DecayingWeight { halving: 0.5 });
        let mut sim = SimBuilder::new(p.build().unwrap())
            .schedule(schedule)
            .drift(DriftModel::TwoBlock)
            .seed(4)
            .build()
            .unwrap();
        sim.run_until_secs(3.0);
        // Immediately a member of every level, with an inflated weight.
        assert_eq!(
            sim.level_between(NodeId(0), NodeId(3)),
            Some(Level::Infinite)
        );
        let info = sim.edge_info(chord).unwrap();
        let k_now = sim.effective_kappa(chord).unwrap();
        assert!(k_now > info.kappa, "weight still inflated shortly after");
        // No handshake traffic was needed.
        assert_eq!(sim.stats().handshakes_offered, 0);
        assert_eq!(sim.stats().insertions_scheduled, 2);
        // The weight decays monotonically to the final value.
        let mut last = k_now;
        loop {
            let t = sim.now().as_secs() + 2.0;
            sim.run_until_secs(t);
            let k = sim.effective_kappa(chord).unwrap();
            assert!(k <= last + 1e-12, "weight must not grow");
            last = k;
            if (k - info.kappa).abs() < 1e-12 {
                break;
            }
            assert!(t < 120.0, "decay did not complete");
        }
        assert!(sim.verify_invariants().is_empty());
    }

    #[test]
    fn fast_time_is_accounted() {
        let mut sim = line_sim(6, 2);
        sim.run_until_secs(20.0);
        let total_fast: f64 = (0..6).map(|u| sim.node(NodeId(u)).fast_secs()).sum();
        // Under two-block drift the slow half must spend time catching up.
        assert!(total_fast > 0.0);
        for u in 0..6u32 {
            assert!(sim.node(NodeId(u)).fast_secs() <= 20.0 + 1e-9);
        }
    }
}
