//! Structured event log: an opt-in record of the algorithm's discrete
//! decisions (mode switches, handshake milestones, edge dynamics), for
//! debugging, examples, and tests that assert on *sequences* of behaviour
//! rather than final state.

use gcs_net::NodeId;
use gcs_sim::SimTime;

use crate::triggers::Mode;

/// One logged algorithm event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LogEntry {
    /// A node switched mode (only changes are logged, not re-decisions).
    ModeSwitch {
        /// When.
        time: SimTime,
        /// Which node.
        node: NodeId,
        /// The new mode.
        mode: Mode,
    },
    /// A node discovered a directed edge (added the neighbour to `N⁰`).
    EdgeDiscovered {
        /// When.
        time: SimTime,
        /// The discovering node.
        node: NodeId,
        /// The discovered neighbour.
        neighbor: NodeId,
    },
    /// A node detected an edge failure (cleared the neighbour everywhere).
    EdgeLost {
        /// When.
        time: SimTime,
        /// The detecting node.
        node: NodeId,
        /// The lost neighbour.
        neighbor: NodeId,
    },
    /// The leader completed its `∆` wait and sent `insertedge` (Listing 1
    /// line 9).
    InsertOffered {
        /// When.
        time: SimTime,
        /// The edge leader.
        leader: NodeId,
        /// The follower the offer is sent to.
        follower: NodeId,
        /// The global-skew estimate baked into the offer.
        g_tilde: f64,
    },
    /// A node computed and installed insertion times (Listing 2).
    InsertScheduled {
        /// When.
        time: SimTime,
        /// The node installing the schedule.
        node: NodeId,
        /// The neighbour being inserted.
        neighbor: NodeId,
        /// The aligned start time `T₀`.
        t0: f64,
        /// The insertion duration `I`.
        i: f64,
    },
}

impl LogEntry {
    /// The event's timestamp.
    #[must_use]
    pub fn time(&self) -> SimTime {
        match *self {
            LogEntry::ModeSwitch { time, .. }
            | LogEntry::EdgeDiscovered { time, .. }
            | LogEntry::EdgeLost { time, .. }
            | LogEntry::InsertOffered { time, .. }
            | LogEntry::InsertScheduled { time, .. } => time,
        }
    }
}

/// A bounded, time-ordered event log.
#[derive(Debug, Clone, Default)]
pub struct EventLog {
    entries: Vec<LogEntry>,
    capacity: usize,
    dropped: u64,
}

impl EventLog {
    /// Creates a log that keeps at most `capacity` entries (oldest entries
    /// beyond the cap are counted, not stored).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            entries: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an entry, dropping it (but counting) if the log is full.
    pub fn push(&mut self, entry: LogEntry) {
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
        } else {
            self.dropped += 1;
        }
    }

    /// The stored entries, in insertion (= time) order.
    #[must_use]
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// How many entries were discarded after the log filled up.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over entries concerning a node (as subject or neighbour).
    pub fn for_node(&self, node: NodeId) -> impl Iterator<Item = &LogEntry> + '_ {
        self.entries.iter().filter(move |e| match **e {
            LogEntry::ModeSwitch { node: n, .. } => n == node,
            LogEntry::EdgeDiscovered {
                node: n, neighbor, ..
            }
            | LogEntry::EdgeLost {
                node: n, neighbor, ..
            }
            | LogEntry::InsertScheduled {
                node: n, neighbor, ..
            } => n == node || neighbor == node,
            LogEntry::InsertOffered {
                leader, follower, ..
            } => leader == node || follower == node,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn capacity_is_enforced_with_drop_count() {
        let mut log = EventLog::with_capacity(2);
        for k in 0..5 {
            log.push(LogEntry::ModeSwitch {
                time: t(k as f64),
                node: NodeId(0),
                mode: Mode::Fast,
            });
        }
        assert_eq!(log.entries().len(), 2);
        assert_eq!(log.dropped(), 3);
    }

    #[test]
    fn for_node_filters_by_participation() {
        let mut log = EventLog::with_capacity(16);
        log.push(LogEntry::EdgeDiscovered {
            time: t(1.0),
            node: NodeId(0),
            neighbor: NodeId(1),
        });
        log.push(LogEntry::InsertOffered {
            time: t(2.0),
            leader: NodeId(0),
            follower: NodeId(1),
            g_tilde: 0.5,
        });
        log.push(LogEntry::ModeSwitch {
            time: t(3.0),
            node: NodeId(2),
            mode: Mode::Slow,
        });
        assert_eq!(log.for_node(NodeId(1)).count(), 2);
        assert_eq!(log.for_node(NodeId(2)).count(), 1);
        assert_eq!(log.for_node(NodeId(3)).count(), 0);
    }

    #[test]
    fn entry_time_accessor() {
        let e = LogEntry::InsertScheduled {
            time: t(4.5),
            node: NodeId(0),
            neighbor: NodeId(1),
            t0: 10.0,
            i: 2.0,
        };
        assert_eq!(e.time(), t(4.5));
    }
}
