//! Node-local event handling, shared by the sequential and sharded
//! engines.
//!
//! Every event except `Tick`, `EdgeUp`, and `EdgeDown` touches exactly
//! one node's state (floods read only the sender's own neighbour table;
//! deliveries mutate only the receiver). [`LocalCtx`] packages the
//! disjoint per-node state one handler needs — a contiguous `&mut` range
//! of the node array plus the matching rows of the hot columns — together
//! with the shared read-only engine state and an [`EventSink`] for spawned
//! events.
//!
//! The sequential engine builds a `LocalCtx` covering the whole node
//! range with the master queue as the sink; the parallel engine builds
//! one per shard with a [`ShardSink`] that routes cross-shard deliveries
//! through a mailbox. Both run *this* code, so bit-identity between the
//! engines is structural rather than re-proved per handler.
//!
//! Determinism note: every float expression here is byte-for-byte the
//! code both engines execute, and all RNG draws come from per-node
//! streams indexed by the node that owns them, so the draw order is a
//! function of that node's own event order — identical under sequential
//! and sharded execution.

use std::collections::HashMap;
use std::ops::Range;

use rand::rngs::StdRng;

use gcs_net::transport;
use gcs_net::{DynamicGraph, EdgeKey, EdgeParams, NodeId};
use gcs_sim::{EventQueue, SimDuration, SimTime};
use gcs_telemetry::LocalCounters;

use crate::edge_state::{align_t0, InsertState};
use crate::node::NodeState;
use crate::params::Params;
use crate::sim::{Event, Payload, SimStats};
use gcs_protocol::flood::{self, FloodMsg};
use gcs_protocol::EdgeInfo;

/// Where a handler's spawned events go: the master queue (sequential
/// engine) or a shard queue plus cross-shard mailbox ([`ShardSink`]).
pub(crate) trait EventSink {
    /// Schedules `event` at `time`.
    fn schedule(&mut self, time: SimTime, event: Event);
}

/// The sequential engine's sink: the master queue itself, allocating
/// ordering keys from the queue's own monotone counter (exactly the
/// pre-sharding behaviour).
impl EventSink for EventQueue<Event> {
    fn schedule(&mut self, time: SimTime, event: Event) {
        EventQueue::schedule(self, time, event);
    }
}

/// A shard worker's sink. Same-shard events go straight into the shard's
/// calendar queue; a `Deliver` whose receiver lives elsewhere goes into
/// the outbox for the mailbox exchange at the next window rendezvous.
/// All keys come from the shard's namespaced counter, so the merged
/// `(time, seq)` order is a pure function of the simulation, not of
/// thread scheduling.
pub(crate) struct ShardSink<'a> {
    /// The owning shard's queue.
    pub queue: &'a mut EventQueue<Event>,
    /// Start index of every shard, ascending (see [`owner`]).
    pub starts: &'a [usize],
    /// This shard's index.
    pub shard: usize,
    /// The shard's namespaced sequence counter.
    pub seq: &'a mut u64,
    /// Cross-shard events: `(destination shard, time, seq, event)`.
    pub outbox: &'a mut Vec<(usize, SimTime, u64, Event)>,
}

impl EventSink for ShardSink<'_> {
    fn schedule(&mut self, time: SimTime, event: Event) {
        let seq = *self.seq;
        *self.seq += 1;
        let dest = match owning_node(&event) {
            Some(node) => owner(self.starts, node),
            None => unreachable!("shard handlers only spawn node-local events"),
        };
        if dest == self.shard {
            self.queue.schedule_keyed(time, seq, event);
        } else {
            debug_assert!(
                matches!(event, Event::Deliver { .. }),
                "only deliveries cross shards"
            );
            self.outbox.push((dest, time, seq, event));
        }
    }
}

/// The node whose state an event mutates, or `None` for the
/// cross-shard-state events the master executes at rendezvous.
pub(crate) fn owning_node(event: &Event) -> Option<usize> {
    match *event {
        Event::Tick | Event::EdgeUp { .. } | Event::EdgeDown { .. } => None,
        Event::Flood { node } => Some(node.index()),
        Event::Deliver { dst, .. } => Some(dst.index()),
        Event::RateChange { node, .. } => Some(node),
        Event::LeaderCheck { u, .. } | Event::FollowerApply { u, .. } => Some(u.index()),
    }
}

/// The shard owning global node index `node`, given the ascending shard
/// start indices (`starts[0] == 0`).
pub(crate) fn owner(starts: &[usize], node: usize) -> usize {
    debug_assert!(!starts.is_empty() && starts[0] == 0);
    starts.partition_point(|&s| s <= node) - 1
}

/// Splits `n` nodes into `shards` contiguous near-equal ranges.
pub(crate) fn contiguous_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    assert!(shards >= 1 && shards <= n);
    (0..shards)
        .map(|i| (i * n / shards)..((i + 1) * n / shards))
        .collect()
}

/// Splits `n` nodes into `shards` contiguous ranges balanced by the given
/// per-node weights (degrees in the scenario's edge universe): boundary
/// `i` lands where the weight prefix sum crosses `i/shards` of the total.
/// Every shard still gets at least one node.
pub(crate) fn balanced_ranges(weights: &[u64], shards: usize) -> Vec<Range<usize>> {
    let n = weights.len();
    assert!(shards >= 1 && shards <= n);
    // +1 per node keeps zero-degree stretches from collapsing into one
    // shard and guarantees strictly increasing cut points exist.
    let total: u64 = weights.iter().map(|&w| w + 1).sum();
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut acc = 0u64;
    let mut next = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        acc += w + 1;
        // Close the current shard once its weight quota is met, leaving
        // enough nodes for the remaining shards.
        let quota = total * (ranges.len() as u64 + 1) / shards as u64;
        let remaining_shards = shards - ranges.len() - 1;
        if ranges.len() < shards - 1 && acc >= quota && n - (i + 1) >= remaining_shards {
            ranges.push(start..i + 1);
            start = i + 1;
        }
        next = i + 1;
    }
    ranges.push(start..next);
    debug_assert_eq!(ranges.len(), shards);
    ranges
}

/// Everything one node-local handler may touch: the owned node range
/// (mutable), the matching hot-column rows, the event sink, and shared
/// read-only engine state.
///
/// Indexing is by *global* node id; debug builds assert every access
/// stays inside the owned range, so a cross-shard state touch panics in
/// the CI `parallel-smoke` job instead of racing.
pub(crate) struct LocalCtx<'a, S: EventSink> {
    /// Global node-index range this context owns.
    pub range: Range<usize>,
    /// The owned nodes; `nodes[u - range.start]` is global node `u`.
    pub nodes: &'a mut [NodeState],
    /// Stability horizons of the owned nodes (same local indexing).
    pub stable_until: &'a mut [f64],
    /// M-jump sensitivity flags of the owned nodes.
    pub m_jump_sensitive: &'a mut [bool],
    /// Per-node transport-delay streams of the owned nodes.
    pub delay_rng: &'a mut [StdRng],
    /// Counter sink (the shard's own accumulator under sharding).
    pub stats: &'a mut SimStats,
    /// Where spawned events go.
    pub sink: &'a mut S,
    /// Reusable flood fan-out buffer.
    pub flood_buf: &'a mut Vec<(NodeId, EdgeParams)>,
    /// Algorithm parameters (read-only, shared).
    pub params: &'a Params,
    /// Whether estimates are message-borne (stored samples are decision
    /// inputs).
    pub message_mode: bool,
    /// Per-edge derived constants (read-only, shared).
    pub edge_info: &'a HashMap<EdgeKey, EdgeInfo>,
    /// The dynamic graph — read-only between rendezvous points (only the
    /// master's edge-up/down handlers write it); used by the debug
    /// cross-check of the §3.1 delivery rule.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub graph: &'a DynamicGraph,
    /// Diameter tracker (sequential engine only; the parallel builder
    /// rejects it).
    pub diameter: Option<&'a mut crate::diameter::DiameterTracker>,
    /// Structured event log (sequential engine only).
    pub log: Option<&'a mut crate::log::EventLog>,
    /// Flood refresh period (hardware seconds).
    pub refresh: f64,
    /// Telemetry counter block (the engine's under sequential execution,
    /// the shard's own under sharding); `None` when telemetry is off, so
    /// the counting costs one branch per event. Per-kind totals are
    /// order-free, hence engine-invariant after merging.
    pub tel: Option<&'a mut LocalCounters>,
}

impl<S: EventSink> LocalCtx<'_, S> {
    /// Dispatches one node-local event.
    ///
    /// # Panics
    ///
    /// Panics on the cross-shard-state events (`Tick`, `EdgeUp`,
    /// `EdgeDown`) — those execute on the master at rendezvous points.
    pub fn handle(&mut self, t: SimTime, event: Event) {
        if let Some(tel) = self.tel.as_deref_mut() {
            match &event {
                Event::Flood { .. } => tel.floods += 1,
                Event::Deliver { .. } => tel.deliveries += 1,
                Event::RateChange { .. } => tel.rate_changes += 1,
                Event::LeaderCheck { .. } => tel.leader_checks += 1,
                Event::FollowerApply { .. } => tel.follower_applies += 1,
                _ => {}
            }
        }
        match event {
            Event::Flood { node } => self.on_flood(t, node),
            Event::Deliver {
                src,
                dst,
                sent_at,
                payload,
            } => self.on_deliver(t, src, dst, sent_at, payload),
            Event::RateChange { node, rate } => {
                self.advance(node, t);
                self.node_mut(node).set_hw_rate(rate);
                self.mark_dirty(node);
            }
            Event::LeaderCheck {
                u,
                v,
                generation,
                target_logical,
            } => self.on_leader_check(t, u, v, generation, target_logical),
            Event::FollowerApply {
                u,
                v,
                generation,
                target_logical,
            } => self.on_follower_apply(t, u, v, generation, target_logical),
            Event::Tick | Event::EdgeUp { .. } | Event::EdgeDown { .. } => {
                unreachable!("cross-shard-state event routed to a node-local handler")
            }
        }
    }

    /// Local row of global node index `u`, with the cross-shard access
    /// guard: touching a node outside the owned range is a determinism
    /// (and, under sharding, a data-race) bug, so debug builds panic.
    #[inline]
    fn local(&self, u: usize) -> usize {
        debug_assert!(
            self.range.contains(&u),
            "cross-shard access: node {u} outside owned range {:?}",
            self.range
        );
        u - self.range.start
    }

    #[inline]
    fn node_mut(&mut self, u: usize) -> &mut NodeState {
        let i = self.local(u);
        &mut self.nodes[i]
    }

    /// Advances node `u`'s clocks to `t` (field-split so `params` stays
    /// borrowable).
    #[inline]
    fn advance(&mut self, u: usize, t: SimTime) {
        let i = self.local(u);
        self.nodes[i].advance_to(t, self.params);
    }

    #[inline]
    fn node(&self, u: usize) -> &NodeState {
        &self.nodes[self.local(u)]
    }

    /// Drops node `u`'s stability certificate (marks it dirty).
    #[inline]
    fn mark_dirty(&mut self, u: usize) {
        let i = self.local(u);
        self.stable_until[i] = f64::NEG_INFINITY;
    }

    fn on_flood(&mut self, t: SimTime, u: NodeId) {
        self.advance(u.index(), t);
        let msg = flood::flood_from(self.node(u.index()));
        let payload = Payload::Flood {
            logical: msg.logical,
            max_est: msg.max_est,
            min_lb: msg.min_lb,
            max_ub: msg.max_ub,
        };
        // The neighbour table mirrors the graph adjacency (same ids, same
        // ascending order) and already carries each edge's parameters.
        let i = self.local(u.index());
        let mut flood = std::mem::take(self.flood_buf);
        flood.clear();
        flood.extend(self.nodes[i].slots.iter().map(|e| (e.id, e.info.params)));
        for &(v, edge) in &flood {
            self.send(t, u, v, edge, payload);
        }
        *self.flood_buf = flood;
        // Next flood after `refresh` *hardware* seconds: converting with the
        // current rate keeps the real period within [P/(1+rho), P/(1-rho)].
        let dt = self.refresh / self.node(u.index()).hw_rate();
        self.sink
            .schedule(t + SimDuration::from_secs(dt), Event::Flood { node: u });
    }

    fn send(&mut self, t: SimTime, u: NodeId, v: NodeId, edge: EdgeParams, payload: Payload) {
        let i = self.local(u.index());
        let delay = transport::sample_delay(&mut self.delay_rng[i], edge);
        self.stats.messages_sent += 1;
        self.sink.schedule(
            t + SimDuration::from_secs(delay),
            Event::Deliver {
                src: u,
                dst: v,
                sent_at: t,
                payload,
            },
        );
    }

    fn on_deliver(
        &mut self,
        t: SimTime,
        src: NodeId,
        dst: NodeId,
        sent_at: SimTime,
        payload: Payload,
    ) {
        // §3.1 delivery rule: `(dst, src)` continuously present since the
        // send. [`transport::deliverable`] is the documented reference
        // implementation of the rule; this inlined check answers the same
        // query from the receiver's slot table, which mirrors the graph
        // adjacency (both are written at exactly the edge-up/edge-down
        // sites with the same timestamps) — one lookup then serves the
        // rule, the edge constants, and the estimate write. Debug builds
        // assert the two implementations agree on every message.
        let info = match self.node(dst.index()).slots.entry(src) {
            Some(entry) if entry.slot.discovered_at <= sent_at => Some(entry.info),
            _ => None,
        };
        #[cfg(debug_assertions)]
        {
            let reference = transport::deliverable(
                self.graph,
                &transport::Envelope {
                    src,
                    dst,
                    sent_at,
                    deliver_at: t,
                    payload: (),
                },
            );
            debug_assert_eq!(
                info.is_some(),
                reference,
                "slot mirror diverged from the §3.1 delivery rule on ({src}, {dst})"
            );
        }
        let Some(info) = info else {
            self.stats.messages_dropped += 1;
            return;
        };
        self.stats.messages_delivered += 1;
        self.advance(dst.index(), t);
        let rho = self.params.rho();
        let beta = self.params.beta();
        let is_message_mode = self.message_mode;
        match payload {
            Payload::Flood {
                logical,
                max_est,
                min_lb,
                max_ub,
            } => {
                if let Some(tracker) = self.diameter.as_deref_mut() {
                    tracker.on_delivery(
                        src.index(),
                        dst.index(),
                        sent_at,
                        t,
                        info.params.delay_uncertainty(),
                    );
                }
                let outcome = flood::merge_flood(
                    self.node_mut(dst.index()),
                    src,
                    FloodMsg {
                        logical,
                        max_est,
                        min_lb,
                        max_ub,
                    },
                    info.params,
                    rho,
                    beta,
                );
                // In message mode the stored sample *is* a decision input;
                // in oracle mode the views never read it.
                if outcome.estimate_written && is_message_mode {
                    self.mark_dirty(dst.index());
                }
                // An upward M jump flips a slow-decided node only once the
                // lifted gap reaches iota; `m_jump_triggers_fast` is pinned
                // to the policy's exact fast-branch float expression.
                // (Between now and the next tick, m only drifts down, which
                // can make this conservative but never unsound.)
                if outcome.m_moved
                    && self.m_jump_sensitive[self.local(dst.index())]
                    && flood::m_jump_triggers_fast(self.node(dst.index()), self.params.iota())
                {
                    self.mark_dirty(dst.index());
                }
                if let Some(tel) = self.tel.as_deref_mut() {
                    tel.flood_merges += 1;
                    if outcome.m_moved {
                        tel.m_jumps += 1;
                    }
                }
            }
            Payload::InsertEdge { l_ins, g_tilde } => {
                let l_now = self.node(dst.index()).logical();
                let wait = beta * (info.params.delay_bound() + info.params.tau);
                let Some(slot) = self.node_mut(dst.index()).slots.get_mut(src) else {
                    return; // Edge vanished at the receiver: offer ignored.
                };
                // Only accept an offer for a fresh, unscheduled incarnation.
                if !matches!(slot.insert, InsertState::Pending) {
                    return;
                }
                slot.insert = InsertState::FollowerWait {
                    l_ins,
                    g_tilde,
                    l_at_receive: l_now,
                };
                let generation = slot.generation;
                self.mark_dirty(dst.index());
                self.schedule_logical_event(t, dst, l_now + wait, |target_logical| {
                    Event::FollowerApply {
                        u: dst,
                        v: src,
                        generation,
                        target_logical,
                    }
                });
            }
        }
    }

    /// Shard-side twin of `Simulation::schedule_logical_event` — the same
    /// float expression, with the event time anchored at the explicit
    /// current instant `t` (a shard worker has no `self.now`).
    fn schedule_logical_event(
        &mut self,
        t: SimTime,
        u: NodeId,
        target: f64,
        make_event: impl FnOnce(f64) -> Event,
    ) {
        let node = self.node(u.index());
        let rate = node.mode().multiplier(self.params.mu()) * node.hw_rate();
        let dt = ((target - node.logical()) / rate).max(0.0);
        self.sink
            .schedule(t + SimDuration::from_secs(dt), make_event(target));
    }

    fn on_leader_check(
        &mut self,
        t: SimTime,
        u: NodeId,
        v: NodeId,
        generation: u64,
        target_logical: f64,
    ) {
        self.advance(u.index(), t);
        let Some(slot) = self.node(u.index()).slots.get(v) else {
            return; // Edge went down; a rediscovery starts a new handshake.
        };
        if slot.generation != generation || !matches!(slot.insert, InsertState::Pending) {
            return;
        }
        if self.node(u.index()).logical() < target_logical - 1e-12 {
            // Rates changed during the wait; try again when we get there.
            self.schedule_logical_event(t, u, target_logical, |target_logical| {
                Event::LeaderCheck {
                    u,
                    v,
                    generation,
                    target_logical,
                }
            });
            return;
        }
        // Continuity (Listing 1 line 6) holds by construction: the slot has
        // existed since `discovered_l` and L has advanced by beta * Delta.
        let info = self.edge_info[&EdgeKey::new(u, v)];
        let g_tilde = if self.params.dynamic_estimates() {
            // The iota margin absorbs the bracket's tick-level optimism.
            self.node(u.index()).g_estimate() + self.params.iota()
        } else {
            self.params.g_tilde().expect("static G~ filled at build")
        };
        let l_now = self.node(u.index()).logical();
        let l_ins = l_now + g_tilde + self.params.beta() * info.params.delay_bound();
        let i = self.params.insertion_duration(info.params, g_tilde);
        let t0 = align_t0(l_ins, i);
        if let Some(slot) = self.node_mut(u.index()).slots.get_mut(v) {
            slot.insert = InsertState::Scheduled { t0, i };
        }
        self.mark_dirty(u.index());
        self.stats.handshakes_offered += 1;
        self.stats.insertions_scheduled += 1;
        if let Some(log) = self.log.as_deref_mut() {
            log.push(crate::log::LogEntry::InsertOffered {
                time: t,
                leader: u,
                follower: v,
                g_tilde,
            });
            log.push(crate::log::LogEntry::InsertScheduled {
                time: t,
                node: u,
                neighbor: v,
                t0,
                i,
            });
        }
        self.send(t, u, v, info.params, Payload::InsertEdge { l_ins, g_tilde });
    }

    fn on_follower_apply(
        &mut self,
        t: SimTime,
        u: NodeId,
        v: NodeId,
        generation: u64,
        target_logical: f64,
    ) {
        self.advance(u.index(), t);
        let Some(slot) = self.node(u.index()).slots.get(v) else {
            return;
        };
        if slot.generation != generation {
            return;
        }
        let InsertState::FollowerWait {
            l_ins,
            g_tilde,
            l_at_receive,
        } = slot.insert
        else {
            return;
        };
        if self.node(u.index()).logical() < target_logical - 1e-12 {
            self.schedule_logical_event(t, u, target_logical, |target_logical| {
                Event::FollowerApply {
                    u,
                    v,
                    generation,
                    target_logical,
                }
            });
            return;
        }
        // Listing 1 line 13: the edge must have been present throughout the
        // logical window reaching back to the receive instant.
        if slot.discovered_l > l_at_receive {
            return;
        }
        let info = self.edge_info[&EdgeKey::new(u, v)];
        let i = self.params.insertion_duration(info.params, g_tilde);
        let t0 = align_t0(l_ins, i);
        if let Some(slot) = self.node_mut(u.index()).slots.get_mut(v) {
            slot.insert = InsertState::Scheduled { t0, i };
        }
        self.mark_dirty(u.index());
        self.stats.insertions_scheduled += 1;
        if let Some(log) = self.log.as_deref_mut() {
            log.push(crate::log::LogEntry::InsertScheduled {
                time: t,
                node: u,
                neighbor: v,
                t0,
                i,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_ranges_cover_exactly() {
        for n in [2usize, 3, 7, 10, 64] {
            for shards in 1..=n.min(8) {
                let ranges = contiguous_ranges(n, shards);
                assert_eq!(ranges.len(), shards);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                    assert!(!w[0].is_empty());
                }
                assert!(!ranges.last().unwrap().is_empty());
            }
        }
    }

    #[test]
    fn balanced_ranges_cover_and_track_weight() {
        // A degree-skewed profile: heavy head, light tail.
        let weights: Vec<u64> = (0..32).map(|i| if i < 4 { 20 } else { 1 }).collect();
        let ranges = balanced_ranges(&weights, 4);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 32);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // The heavy head must not drag half the tail with it.
        assert!(
            ranges[0].len() < 16,
            "first shard too large: {:?}",
            ranges[0]
        );
        // Degenerate cases still cover.
        let flat = balanced_ranges(&[0u64; 5], 5);
        assert_eq!(flat.len(), 5);
        assert!(flat.iter().all(|r| r.len() == 1));
    }

    #[test]
    fn owner_inverts_the_ranges() {
        let ranges = contiguous_ranges(10, 3);
        let starts: Vec<usize> = ranges.iter().map(|r| r.start).collect();
        for (s, r) in ranges.iter().enumerate() {
            for u in r.clone() {
                assert_eq!(owner(&starts, u), s);
            }
        }
    }
}
