//! Measuring the *dynamic estimate diameter* `D(t)` of Definition 3.1.
//!
//! §3.1 defines a family of relations `(u, t) ⇝η (v, t′)`: at time `t′`,
//! node `v` can lower-bound `u`'s clock at time `t` with error at most `η`.
//! The rules are:
//!
//! 1. `(u, t) ⇝0 (u, t)` — a node knows its own clock;
//! 2. aging: if `(u,t) ⇝η (v,t′)` then `(u,t) ⇝η′ (v,t″)` with
//!    `η′ = η + 4ρ/(1+ρ) · (t″ − t′)`;
//! 3. relay: a message sent by `v` at `t′`, received by `w` at `t″`, with
//!    delay uncertainty `U`, gives `η′ = η + (1−ρ)U + 2ρ(t″ − t′)`.
//!
//! The *dynamic estimate radius* `R_v(t)` is the worst error over sources
//! `u`, and the diameter `D(t) = max_v R_v(t)`. Theorem 5.6's sharp form
//! bounds the global skew by `D(t) + ι`.
//!
//! [`DiameterTracker`] maintains the `n × n` matrix of best-achievable `η`
//! values alongside a simulation, updated per delivered flood (O(n) per
//! message via per-row lazy aging). It is measurement instrumentation —
//! the algorithm itself never reads it.

use gcs_sim::SimTime;

/// Tracks the pairwise knowledge-error matrix `η[v][u]`.
#[derive(Debug, Clone)]
pub struct DiameterTracker {
    n: usize,
    /// `eta[v * n + u]`: the best bound with which `v` can currently
    /// estimate `u`'s clock (at some past time). `INFINITY` = no knowledge.
    eta: Vec<f64>,
    /// Last aging time per row `v`.
    row_last: Vec<SimTime>,
    aging_rate: f64,
    rho: f64,
}

impl DiameterTracker {
    /// Creates the tracker at time 0: every node knows its own clock
    /// perfectly and (because all clocks start at zero by definition)
    /// everyone else's exactly as well.
    #[must_use]
    pub fn new(n: usize, rho: f64) -> Self {
        DiameterTracker {
            n,
            eta: vec![0.0; n * n],
            row_last: vec![SimTime::ZERO; n],
            aging_rate: 4.0 * rho / (1.0 + rho),
            rho,
        }
    }

    /// Ages row `v` to time `t` (rule 2).
    fn age_row(&mut self, v: usize, t: SimTime) {
        let dt = t.duration_since(self.row_last[v]).as_secs();
        if dt > 0.0 {
            let grow = self.aging_rate * dt;
            for u in 0..self.n {
                if u != v {
                    self.eta[v * self.n + u] += grow;
                }
            }
            self.row_last[v] = t;
        }
    }

    /// Records a delivered clock-bearing message `src → dst` (rule 3).
    ///
    /// `delay_uncertainty` is the `U(M)` of the model (here: the edge's
    /// `delay_max − delay_min`).
    ///
    /// # Panics
    ///
    /// Panics if times are inconsistent or nodes out of range.
    pub fn on_delivery(
        &mut self,
        src: usize,
        dst: usize,
        sent_at: SimTime,
        delivered_at: SimTime,
        delay_uncertainty: f64,
    ) {
        assert!(src < self.n && dst < self.n, "node out of range");
        let transit = delivered_at.duration_since(sent_at).as_secs();
        // Rule 3 wants eta at *send* time; rows are aged to arbitrary
        // times, so age both to the delivery instant and correct the
        // source row's aging over the transit back to the 2-rho relay rate.
        self.age_row(src, delivered_at);
        self.age_row(dst, delivered_at);
        let relay_cost =
            (1.0 - self.rho) * delay_uncertainty + (2.0 * self.rho - self.aging_rate) * transit;
        for u in 0..self.n {
            let cand = if u == src {
                // src knows itself perfectly at send time.
                (1.0 - self.rho) * delay_uncertainty + 2.0 * self.rho * transit
            } else {
                self.eta[src * self.n + u] + relay_cost
            };
            let slot = &mut self.eta[dst * self.n + u];
            if cand < *slot {
                *slot = cand;
            }
        }
    }

    /// The dynamic estimate radius `R_v(t)`: the worst error with which
    /// `v` can bound any node's clock. `INFINITY` until information from
    /// every node has reached `v`.
    #[must_use]
    pub fn radius(&mut self, v: usize, t: SimTime) -> f64 {
        self.age_row(v, t);
        (0..self.n)
            .map(|u| self.eta[v * self.n + u])
            .fold(0.0, f64::max)
    }

    /// The dynamic estimate diameter `D(t) = max_v R_v(t)`.
    #[must_use]
    pub fn diameter(&mut self, t: SimTime) -> f64 {
        (0..self.n).map(|v| self.radius(v, t)).fold(0.0, f64::max)
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn starts_perfectly_informed() {
        let mut d = DiameterTracker::new(3, 0.01);
        assert_eq!(d.diameter(SimTime::ZERO), 0.0);
    }

    #[test]
    fn knowledge_ages_at_4rho_over_1plusrho() {
        let rho = 0.01;
        let mut d = DiameterTracker::new(2, rho);
        let r = d.radius(0, t(10.0));
        assert!((r - 4.0 * rho / (1.0 + rho) * 10.0).abs() < 1e-12);
        // Self-knowledge never ages.
        let mut solo = DiameterTracker::new(1, rho);
        assert_eq!(solo.diameter(t(100.0)), 0.0);
    }

    #[test]
    fn delivery_resets_souce_knowledge_to_relay_cost() {
        let rho = 0.01;
        let u_unc = 0.005;
        let mut d = DiameterTracker::new(2, rho);
        // Long silence, then one message 0 -> 1 with 10 ms transit.
        d.on_delivery(0, 1, t(50.0), t(50.01), u_unc);
        let expect = (1.0 - rho) * u_unc + 2.0 * rho * 0.01;
        let r = d.radius(1, t(50.01));
        assert!((r - expect).abs() < 1e-12, "radius {r} != {expect}");
    }

    #[test]
    fn relay_chains_accumulate() {
        let rho = 0.01;
        let u_unc = 0.005;
        let mut d = DiameterTracker::new(3, rho);
        d.on_delivery(0, 1, t(10.0), t(10.01), u_unc);
        d.on_delivery(1, 2, t(10.02), t(10.03), u_unc);
        // Node 2's knowledge of node 0 went through two hops.
        d.age_row(2, t(10.03));
        let eta_20 = d.eta[2 * 3];
        let one_hop = (1.0 - rho) * u_unc + 2.0 * rho * 0.01;
        assert!(eta_20 > one_hop, "two hops cost more than one");
        assert!(eta_20 < 3.0 * one_hop + 0.01, "but not absurdly more");
        // Node 2's knowledge of node 1 is one hop.
        let eta_21 = d.eta[2 * 3 + 1];
        assert!((eta_21 - one_hop).abs() < 1e-12);
    }

    #[test]
    fn better_route_wins() {
        let rho = 0.01;
        let mut d = DiameterTracker::new(2, rho);
        d.on_delivery(0, 1, t(1.0), t(1.05), 0.05); // sloppy edge
        let sloppy = d.radius(1, t(1.05));
        d.on_delivery(0, 1, t(1.05), t(1.051), 0.0001); // precise edge
        let precise = d.radius(1, t(1.051));
        assert!(precise < sloppy);
    }

    #[test]
    fn diameter_dominates_radii() {
        let mut d = DiameterTracker::new(4, 0.01);
        d.on_delivery(0, 1, t(1.0), t(1.01), 0.005);
        let tq = t(2.0);
        let diam = d.diameter(tq);
        for v in 0..4 {
            assert!(d.radius(v, tq) <= diam + 1e-15);
        }
    }
}
