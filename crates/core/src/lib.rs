//! The `A_OPT` dynamic gradient clock synchronization algorithm.
//!
//! This crate is the heart of the workspace: a faithful implementation of
//! the algorithm of *"Optimal Gradient Clock Synchronization in Dynamic
//! Networks"* (Kuhn, Lenzen, Locher, Oshman; PODC 2010) together with the
//! simulation engine that runs it over the dynamic-network substrate of
//! `gcs-net`.
//!
//! Paper-to-module map:
//!
//! | Paper | Module |
//! |---|---|
//! | Parameters ρ, µ, σ, κ, δ, ι, B (§4.3.1, eqs 7–13) | [`Params`] |
//! | Estimate layer, inequality (1) (§3.1) | [`EstimateMode`], [`ErrorModel`] |
//! | Neighbour sets `N^s_u`, Listing 2 insertion times | [`edge_state`] |
//! | FC / SC / max-estimate triggers, Listing 3 (Defs 4.5–4.7) | [`triggers`] |
//! | Max estimate `M_u` (Cond. 4.3) and `G̃_u(t)` bracket (§7) | [`node`] |
//! | Listing 1 handshake, flooding, delivery rule | [`Simulation`] |
//!
//! # Quickstart
//!
//! ```
//! use gcs_core::{Params, SimBuilder};
//! use gcs_net::Topology;
//! use gcs_sim::DriftModel;
//!
//! let params = Params::builder().rho(0.01).mu(0.1).build()?;
//! let mut sim = SimBuilder::new(params)
//!     .topology(Topology::ring(8))
//!     .drift(DriftModel::Alternating)
//!     .seed(42)
//!     .build()
//!     .unwrap();
//! sim.run_until_secs(30.0);
//! println!("global skew: {:.6}", sim.snapshot().global_skew());
//! # Ok::<(), gcs_core::ParamsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diameter;
pub mod log;
mod parallel;
#[cfg(test)]
mod replay_check;
mod shard;
mod sim;
mod snapshot;

// The node-local protocol state machine lives in the sans-IO
// `gcs-protocol` crate (shared with the `gcs-node` socket daemon); the
// modules are re-exported here so `gcs_core::edge_state::Level`-style
// paths keep working for every existing consumer.
pub use gcs_protocol::{edge_state, estimate, node, params, triggers};

pub use diameter::DiameterTracker;
pub use log::{EventLog, LogEntry};

pub use gcs_protocol::{
    AoptPolicy, EdgeInfo, ErrorModel, EstimateMode, InsertionStrategy, Mode, ModePolicy,
    NeighborView, NodeView, Params, ParamsBuilder, ParamsError, StabilityCert,
};
pub use parallel::{
    Engine, EngineGauges, ParallelBuildError, ParallelSimBuilder, ParallelSimulation, Partition,
};
pub use sim::{BuildError, ChangeRecord, SimBuilder, SimStats, Simulation};
pub use snapshot::{ClockSnapshot, Trace};
// The instrumentation seam types the `Engine` telemetry methods speak.
pub use gcs_telemetry::{LocalCounters, NoopSink, TelemetrySink};
