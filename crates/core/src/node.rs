//! Per-node algorithm state: the logical clock, the max-estimate `M_u` of
//! Condition 4.3, and the `[W_u, P_u]` global-skew bracket used for the
//! dynamic estimates `G̃_u(t)` of §7.
//!
//! All four quantities are piecewise linear between simulation events and
//! integrated exactly:
//!
//! * `L_u` advances at `mult · h_u` where `mult ∈ {1, 1+µ}` (Listing 3),
//! * `M_u` advances at `(1−ρ)/(1+ρ) · h_u` and is clamped to `≥ L_u`; this
//!   realizes both update rules of Condition 4.3 (when `M_u = L_u` the clamp
//!   makes it track the logical clock exactly),
//! * `W_u` (lower bound on the network's *minimum* logical clock) advances
//!   at `(1−ρ)/(1+ρ) · h_u ≤ 1−ρ`, never exceeding `L_u`,
//! * `P_u` (upper bound on the network's *maximum* logical clock) advances
//!   at `(1+ρ)(1+µ)/(1−ρ) · h_u ≥ (1+ρ)(1+µ)`, never below `M_u`.
//!
//! `G̃_u(t) := P_u − W_u` then satisfies inequality (5): it upper-bounds the
//! true global skew at all times.

use std::collections::BTreeMap;

use gcs_net::NodeId;
use gcs_sim::{HardwareClock, SimTime};

use crate::edge_state::EdgeSlot;
use crate::params::Params;
use crate::triggers::Mode;

/// The full state of one node.
#[derive(Debug, Clone)]
pub struct NodeState {
    id: NodeId,
    hw: HardwareClock,
    logical: f64,
    mode: Mode,
    max_est: f64,
    min_lb: f64,
    max_ub: f64,
    fast_secs: f64,
    last_update: SimTime,
    /// Discovered neighbours (`N⁰ᵤ`) with their handshake/estimate state.
    pub slots: BTreeMap<NodeId, EdgeSlot>,
}

impl NodeState {
    /// A node at time 0 with all clocks zero, in slow mode.
    #[must_use]
    pub fn new(id: NodeId, hw_rate: f64) -> Self {
        NodeState {
            id,
            hw: HardwareClock::new(hw_rate),
            logical: 0.0,
            mode: Mode::Slow,
            max_est: 0.0,
            min_lb: 0.0,
            max_ub: 0.0,
            fast_secs: 0.0,
            last_update: SimTime::ZERO,
            slots: BTreeMap::new(),
        }
    }

    /// Node id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Logical clock `L_u` (as of the last advance).
    #[must_use]
    pub fn logical(&self) -> f64 {
        self.logical
    }

    /// Hardware clock `H_u`.
    #[must_use]
    pub fn hardware(&self) -> f64 {
        self.hw.value()
    }

    /// Current hardware rate `h_u`.
    #[must_use]
    pub fn hw_rate(&self) -> f64 {
        self.hw.rate()
    }

    /// Current mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Max estimate `M_u` (Condition 4.3).
    #[must_use]
    pub fn max_estimate(&self) -> f64 {
        self.max_est
    }

    /// Lower bound `W_u` on the minimum logical clock in the network.
    #[must_use]
    pub fn min_lower_bound(&self) -> f64 {
        self.min_lb
    }

    /// Upper bound `P_u` on the maximum logical clock in the network.
    #[must_use]
    pub fn max_upper_bound(&self) -> f64 {
        self.max_ub
    }

    /// The node-local global-skew estimate `G̃_u(t) = P_u − W_u` (§7).
    #[must_use]
    pub fn g_estimate(&self) -> f64 {
        (self.max_ub - self.min_lb).max(0.0)
    }

    /// Total real seconds this node has spent in fast mode — a proxy for
    /// the extra energy/rate budget the algorithm consumed.
    #[must_use]
    pub fn fast_secs(&self) -> f64 {
        self.fast_secs
    }

    /// Time of the last advance.
    #[must_use]
    pub fn last_update(&self) -> SimTime {
        self.last_update
    }

    /// Integrates all clocks forward to `t` at the current rates.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last advance.
    pub fn advance_to(&mut self, t: SimTime, params: &Params) {
        if t == self.last_update {
            return;
        }
        let dt = t.duration_since(self.last_update).as_secs();
        let h_delta = self.hw.rate() * dt;
        self.hw.advance_to(t);

        self.logical += self.mode.multiplier(params.mu()) * h_delta;
        if self.mode == Mode::Fast {
            self.fast_secs += dt;
        }

        let conservative = (1.0 - params.rho()) / (1.0 + params.rho());
        self.max_est += conservative * h_delta;
        self.min_lb += conservative * h_delta;
        // The network maximum advances at most at rate 1+rho: a node holding
        // the maximum is in slow mode (Theorem 5.6's argument holds for all
        // policies built on the max-estimate rule), so growing P at
        // (1+rho)/(1-rho) * h >= 1+rho keeps it an upper bound. Brief
        // fast-mode episodes of a *newly* maximal node (bounded by one
        // trigger-evaluation tick) are absorbed by the invariant tolerance.
        let aggressive = (1.0 + params.rho()) / (1.0 - params.rho());
        self.max_ub += aggressive * h_delta;

        self.clamp_bounds();
        self.last_update = t;
    }

    /// Changes the hardware rate (caller must advance to the change time
    /// first).
    pub fn set_hw_rate(&mut self, rate: f64) {
        self.hw.set_rate(rate);
    }

    /// Switches mode (caller must advance to the switch time first).
    pub fn set_mode(&mut self, mode: Mode) {
        self.mode = mode;
    }

    /// Merges a received max estimate (already credited for minimum transit).
    pub fn merge_max_estimate(&mut self, candidate: f64) {
        if candidate > self.max_est {
            self.max_est = candidate;
        }
        self.clamp_bounds();
    }

    /// Merges a received minimum-clock lower bound.
    pub fn merge_min_lower_bound(&mut self, candidate: f64) {
        if candidate > self.min_lb {
            self.min_lb = candidate;
        }
        self.clamp_bounds();
    }

    /// Merges a received maximum-clock upper bound (already padded for
    /// maximal in-transit growth).
    pub fn merge_max_upper_bound(&mut self, candidate: f64) {
        if candidate < self.max_ub {
            self.max_ub = candidate;
        }
        self.clamp_bounds();
    }

    /// Overwrites the logical clock (fault injection / corruption
    /// experiments), keeping the derived bounds consistent.
    pub fn corrupt_logical(&mut self, value: f64) {
        self.logical = value;
        self.clamp_bounds();
    }

    fn clamp_bounds(&mut self) {
        // (4): M_u >= L_u; combined with the conservative rate this yields
        // exactly the two-case update rule of Condition 4.3.
        if self.max_est < self.logical {
            self.max_est = self.logical;
        }
        // W_u lower-bounds the network minimum, which is <= L_u.
        if self.min_lb > self.logical {
            self.min_lb = self.logical;
        }
        // P_u upper-bounds the network maximum, which is >= M_u.
        if self.max_ub < self.max_est {
            self.max_ub = self.max_est;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::builder().rho(0.01).mu(0.1).build().unwrap()
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn slow_mode_tracks_hardware() {
        let p = params();
        let mut n = NodeState::new(NodeId(0), 1.01);
        n.advance_to(t(10.0), &p);
        assert!((n.logical() - 10.1).abs() < 1e-12);
        assert!((n.hardware() - 10.1).abs() < 1e-12);
    }

    #[test]
    fn fast_mode_multiplies_rate() {
        let p = params();
        let mut n = NodeState::new(NodeId(0), 1.0);
        n.set_mode(Mode::Fast);
        n.advance_to(t(10.0), &p);
        assert!((n.logical() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn max_estimate_tracks_logical_when_equal() {
        // Node alone at the maximum: M must advance with L (Condition 4.3).
        let p = params();
        let mut n = NodeState::new(NodeId(0), 1.0);
        n.advance_to(t(100.0), &p);
        assert!((n.max_estimate() - n.logical()).abs() < 1e-12);
    }

    #[test]
    fn max_estimate_rate_is_conservative_when_ahead() {
        let p = params();
        let mut n = NodeState::new(NodeId(0), 1.0);
        n.merge_max_estimate(1000.0);
        n.advance_to(t(10.0), &p);
        let expected = 1000.0 + (0.99 / 1.01) * 10.0;
        assert!((n.max_estimate() - expected).abs() < 1e-9);
        assert!(n.max_estimate() >= n.logical());
    }

    #[test]
    fn bracket_brackets_in_isolation() {
        let p = params();
        let mut n = NodeState::new(NodeId(0), 1.0);
        for k in 1..=50 {
            n.advance_to(t(k as f64), &p);
            assert!(n.min_lower_bound() <= n.logical() + 1e-12);
            assert!(n.max_upper_bound() >= n.max_estimate() - 1e-12);
            assert!(n.g_estimate() >= 0.0);
        }
        // The bracket widens over time when no floods arrive.
        assert!(n.g_estimate() > 0.0);
    }

    #[test]
    fn merges_move_bounds_monotonically() {
        let p = params();
        let mut n = NodeState::new(NodeId(0), 1.0);
        n.advance_to(t(1.0), &p);
        let g0 = n.g_estimate();
        n.merge_min_lower_bound(0.9); // tighter floor
        n.merge_max_upper_bound(1.5); // tighter ceiling
        assert!(n.g_estimate() <= g0);
        // Merging weaker information changes nothing.
        let g1 = n.g_estimate();
        n.merge_min_lower_bound(-5.0);
        n.merge_max_upper_bound(100.0);
        assert_eq!(n.g_estimate(), g1);
    }

    #[test]
    fn merge_max_estimate_respects_clamp() {
        let p = params();
        let mut n = NodeState::new(NodeId(0), 1.0);
        n.advance_to(t(5.0), &p);
        n.merge_max_estimate(2.0); // below L: clamp keeps M = L
        assert!((n.max_estimate() - n.logical()).abs() < 1e-12);
        n.merge_max_estimate(7.0);
        assert!((n.max_estimate() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn corrupt_logical_keeps_invariants() {
        let p = params();
        let mut n = NodeState::new(NodeId(0), 1.0);
        n.advance_to(t(5.0), &p);
        n.corrupt_logical(50.0);
        assert!(n.max_estimate() >= 50.0);
        n.corrupt_logical(-3.0);
        assert!(n.min_lower_bound() <= -3.0);
    }

    #[test]
    fn advance_is_idempotent_at_same_time() {
        let p = params();
        let mut n = NodeState::new(NodeId(0), 1.0);
        n.advance_to(t(3.0), &p);
        let l = n.logical();
        n.advance_to(t(3.0), &p);
        assert_eq!(n.logical(), l);
    }
}
