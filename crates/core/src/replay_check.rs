//! Engine-vs-[`NodeCore`] replay equivalence: the property test pinning
//! the sans-IO re-host.
//!
//! The sequential engine's event loop is driven one popped event at a
//! time while a bank of mirror [`NodeCore`]s — the exact state machines
//! the `gcs-node` daemon multiplexes over real sockets — consumes the
//! same recorded inputs: every delivered flood (with its send instant),
//! every hardware-rate change, and a mode evaluation at every tick. The
//! mirrors never send; they only replay what the engine's transport
//! realized.
//!
//! The contract checked here is *bit*-identity, not approximation: the
//! anchored piecewise-linear clock representation ([`NodeState`]
//! re-anchors only at discontinuities and evaluates segments in closed
//! form) makes clock values independent of when intermediate
//! advancements happen, so an engine node and a mirror fed the same
//! discontinuities agree on every `f64`. Concretely, after every event:
//!
//! * a delivery is accepted/dropped identically (§3.1), and an accepted
//!   one leaves bitwise-equal clocks, bounds, and estimate-slot writes;
//! * a tick leaves every node with the same mode decision (this also
//!   cross-checks the engine's stability-certificate skipping against
//!   the mirror's always-reevaluate policy — a cert that wrongly skips
//!   a flip shows up as a mode mismatch here);
//! * a rate change leaves bitwise-equal clocks.

use proptest::prelude::*;

use gcs_net::{NodeId, Topology};
use gcs_protocol::flood::FloodMsg;
use gcs_protocol::{EstimateMode, NodeCore, Params};
use gcs_sim::{DriftModel, SimTime};

use crate::sim::{Event, Payload, SimBuilder, Simulation};

/// What one popped engine event means for the mirror bank.
enum Act {
    Deliver {
        src: NodeId,
        dst: NodeId,
        sent_at: SimTime,
        msg: FloodMsg,
    },
    Rate {
        node: usize,
        rate: f64,
    },
    Tick,
    /// A flood broadcast: reads the sender's clocks (a pure closed-form
    /// evaluation under the anchor representation) and touches no mirror
    /// state.
    Skip,
}

fn mirror_bank(sim: &Simulation) -> Vec<NodeCore> {
    sim.nodes
        .iter()
        .map(|n| {
            let mut core = NodeCore::new(
                n.id(),
                sim.params.clone(),
                sim.refresh,
                n.hw_rate(),
                // The mirrors never send; the flood schedule is unused.
                SimTime::ZERO,
            );
            for entry in n.slots.iter() {
                core.add_neighbor(entry.id, entry.info);
            }
            core
        })
        .collect()
}

fn assert_clocks_match(
    what: &str,
    t: SimTime,
    engine: &gcs_protocol::NodeState,
    mirror: &gcs_protocol::NodeState,
) -> Result<(), TestCaseError> {
    for (name, a, b) in [
        ("logical", engine.logical(), mirror.logical()),
        ("hardware", engine.hardware(), mirror.hardware()),
        ("max_estimate", engine.max_estimate(), mirror.max_estimate()),
        (
            "min_lower_bound",
            engine.min_lower_bound(),
            mirror.min_lower_bound(),
        ),
        (
            "max_upper_bound",
            engine.max_upper_bound(),
            mirror.max_upper_bound(),
        ),
    ] {
        prop_assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{} diverged after {} at {:?}: engine {} vs mirror {}",
            name,
            what,
            t,
            a,
            b
        );
    }
    prop_assert_eq!(
        engine.mode(),
        mirror.mode(),
        "mode diverged after {} at {:?}",
        what,
        t
    );
    Ok(())
}

/// Drives a seeded static-topology, message-mode run event by event and
/// replays its recorded inputs through the mirror bank.
fn replay_static_run(
    seed: u64,
    topology: Topology,
    drift: DriftModel,
    horizon_secs: f64,
) -> Result<(), TestCaseError> {
    let params = Params::builder().rho(0.01).mu(0.1).build().unwrap();
    let mut sim = SimBuilder::new(params)
        .topology(topology)
        .drift(drift)
        .estimates(EstimateMode::Messages)
        .seed(seed)
        .build()
        .unwrap();
    let mut cores = mirror_bank(&sim);
    let horizon = SimTime::from_secs(horizon_secs);

    let mut deliveries = 0u64;
    while let Some(next) = sim.queue.next_time() {
        if next > horizon {
            break;
        }
        let (when, event) = sim.queue.pop().expect("peeked");
        sim.now = when;
        sim.stats.events += 1;
        let act = match &event {
            Event::Deliver {
                src,
                dst,
                sent_at,
                payload:
                    Payload::Flood {
                        logical,
                        max_est,
                        min_lb,
                        max_ub,
                    },
            } => Act::Deliver {
                src: *src,
                dst: *dst,
                sent_at: *sent_at,
                msg: FloodMsg {
                    logical: *logical,
                    max_est: *max_est,
                    min_lb: *min_lb,
                    max_ub: *max_ub,
                },
            },
            Event::RateChange { node, rate } => Act::Rate {
                node: *node,
                rate: *rate,
            },
            Event::Tick => Act::Tick,
            Event::Flood { .. } => Act::Skip,
            other => {
                return Err(TestCaseError::fail(format!(
                    "static message-mode run produced an unexpected event: {other:?}"
                )))
            }
        };
        let delivered_before = sim.stats.messages_delivered;
        sim.handle(when, event);

        match act {
            Act::Deliver {
                src,
                dst,
                sent_at,
                msg,
            } => {
                let outcome = cores[dst.index()].on_message(when, src, sent_at, msg);
                let delivered = sim.stats.messages_delivered > delivered_before;
                prop_assert_eq!(
                    outcome.is_some(),
                    delivered,
                    "§3.1 verdicts diverged for ({:?}, {:?}) sent {:?} delivered {:?}",
                    src,
                    dst,
                    sent_at,
                    when
                );
                let Some(outcome) = outcome else { continue };
                deliveries += 1;
                prop_assert!(
                    outcome.estimate_written,
                    "a delivered flood must write the sender's estimate slot"
                );
                assert_clocks_match(
                    "a delivery",
                    when,
                    &sim.nodes[dst.index()],
                    cores[dst.index()].state(),
                )?;
                // The estimate write itself, bit for bit.
                let engine_slot = sim.nodes[dst.index()]
                    .slots
                    .get(src)
                    .and_then(|s| s.estimate);
                let mirror_slot = cores[dst.index()]
                    .state()
                    .slots
                    .get(src)
                    .and_then(|s| s.estimate);
                let (Some(engine_est), Some(mirror_est)) = (engine_slot, mirror_slot) else {
                    return Err(TestCaseError::fail(
                        "estimate slot missing after an accepted delivery".to_string(),
                    ));
                };
                prop_assert_eq!(engine_est.value.to_bits(), mirror_est.value.to_bits());
                prop_assert_eq!(
                    engine_est.hw_at_recv.to_bits(),
                    mirror_est.hw_at_recv.to_bits()
                );
            }
            Act::Rate { node, rate } => {
                cores[node].set_hw_rate(when, rate);
                assert_clocks_match("a rate change", when, &sim.nodes[node], cores[node].state())?;
            }
            Act::Tick => {
                for (i, core) in cores.iter_mut().enumerate() {
                    let mode = core.evaluate(when);
                    prop_assert_eq!(
                        mode,
                        sim.nodes[i].mode(),
                        "mode decision diverged for node {} at tick {:?}",
                        i,
                        when
                    );
                    prop_assert_eq!(
                        sim.nodes[i].logical_at(when, &sim.params).to_bits(),
                        core.state().logical().to_bits(),
                        "logical clock diverged for node {} at tick {:?}",
                        i,
                        when
                    );
                }
            }
            Act::Skip => {}
        }
    }
    prop_assert!(
        deliveries > 0,
        "the run never delivered a flood — the replay checked nothing"
    );
    Ok(())
}

fn topologies() -> impl Strategy<Value = Topology> {
    prop_oneof![
        Just(Topology::ring(5)),
        Just(Topology::complete(4)),
        Just(Topology::line(6)),
    ]
}

fn drifts() -> impl Strategy<Value = DriftModel> {
    prop_oneof![
        Just(DriftModel::TwoBlock),
        Just(DriftModel::RandomConstant),
        Just(DriftModel::Alternating),
        Just(DriftModel::RandomWalk {
            period: 1.0,
            step_frac: 0.5,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn recorded_message_sequences_replay_through_the_sans_io_core(
        seed in any::<u64>(),
        topology in topologies(),
        drift in drifts(),
    ) {
        replay_static_run(seed, topology, drift, 8.0)?;
    }
}

#[cfg(test)]
mod pinned {
    use super::*;

    /// A deterministic non-proptest anchor so `cargo test replay` always
    /// exercises the worst-case drift split on a ring, seed-stable.
    #[test]
    fn two_block_ring_replays_bit_identically() {
        for seed in 0..4 {
            replay_static_run(seed, Topology::ring(5), DriftModel::TwoBlock, 10.0).unwrap();
        }
    }
}
