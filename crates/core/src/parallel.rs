//! The parallel sharded engine: conservative lookahead simulation that is
//! bit-identical to the sequential [`Simulation`].
//!
//! # Model-derived lookahead
//!
//! The paper's network model (§3.1) guarantees every message spends at
//! least the edge's minimum transit latency in flight. The smallest
//! `delay_min` over the scenario's edge universe is therefore a *lookahead
//! bound*: an event executed at time `s` cannot affect another shard
//! before `s + lookahead`. That is exactly the window width a conservative
//! parallel discrete-event simulator needs — no optimism, no rollback.
//!
//! # Architecture
//!
//! Nodes are partitioned into contiguous-ID shards ([`Partition`]). Each
//! shard owns a calendar [`EventQueue`] holding every node-local event
//! (floods, deliveries, rate changes, handshake timers) of its nodes, a
//! namespaced sequence counter, and private scratch. The master
//! [`Simulation`] keeps only the cross-shard-state events — ticks and
//! scripted edge transitions — plus all shared read-only state.
//!
//! [`ParallelSimulation::run_until`] advances in segments bounded by
//! `cut = min(target, next master event, earliest shard event + window)`.
//! Within a segment, worker threads drain their shard's events `≤ cut`
//! (clean `split_at_mut` borrows of the node array and hot columns — no
//! locks, no `unsafe`), exchanging cross-shard deliveries through
//! mailboxes at round barriers; then the master executes its events at
//! `cut` sequentially (mode re-evaluation sweeps, edge up/down), routing
//! any node-local events they spawn back to the owning shard.
//!
//! # Why the merged order is the sequential order
//!
//! - Routed events keep their original `(time, seq)` keys, and all
//!   shard-spawned events draw keys from per-shard counters namespaced
//!   above every build-time key, so the merged key order is a pure
//!   function of the simulation — never of thread scheduling.
//! - Capping `cut` at the next master event time means master events only
//!   ever execute at `time == cut`, after every shard event `< cut`. The
//!   boundary instant itself is merged explicitly: master and shard events
//!   at exactly `cut` run in ascending sequence order — the order the
//!   sequential engine's single queue pops them — so even a delivery
//!   colliding with a scripted edge transition lands on the correct side
//!   of the §3.1 delivery rule.
//! - Cross-shard deliveries land at `≥ cut` by the lookahead bound, so no
//!   shard ever receives an event earlier than something it already ran.
//! - Same-instant deliveries to one node (a flood fan-out over
//!   equal-latency edges) commute: bound merges are max/min operations and
//!   per-sender estimate slots are disjoint.
//!
//! The equivalence test grid (scenarios × shard counts × partitioners)
//! enforces all of this bit-for-bit, counters included.

use std::collections::HashMap;
use std::ops::Range;

use rand::rngs::StdRng;

use gcs_net::{DynamicGraph, EdgeKey, EdgeParams, NodeId};
use gcs_sim::{EventQueue, SimTime};
use gcs_telemetry::{LocalCounters, TelemetrySink};

use crate::node::NodeState;
use crate::params::Params;
use crate::shard::{balanced_ranges, contiguous_ranges, owner, owning_node, LocalCtx, ShardSink};
use crate::sim::{BuildError, Event, SimBuilder, SimStats, Simulation};
use gcs_protocol::EdgeInfo;

/// Shard-spawned events take sequence keys from per-shard counters
/// namespaced above this bit, keeping them disjoint from build-time keys
/// (small integers) and from every other shard.
const SEQ_NAMESPACE_SHIFT: u32 = 48;

/// How the node set is split into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Partition {
    /// Contiguous ID blocks of (nearly) equal node count.
    #[default]
    Contiguous,
    /// Contiguous ID blocks balanced by node degree in the scenario's
    /// edge universe — better load balance when degree is skewed (the
    /// per-node event rate is roughly proportional to degree).
    DegreeBalanced,
}

/// Why [`ParallelSimBuilder::build`] refused to construct an engine.
#[derive(Debug)]
pub enum ParallelBuildError {
    /// The underlying sequential build failed.
    Build(BuildError),
    /// Diameter tracking observes every delivery globally and is only
    /// supported on the sequential engine.
    DiameterTrackingUnsupported,
    /// The structured event log requires a globally ordered append stream
    /// and is only supported on the sequential engine.
    EventLogUnsupported,
    /// The scenario's minimum transit latency is zero (or there are no
    /// edges with positive `delay_min`), so no conservative window exists
    /// for more than one shard.
    NoLookahead,
    /// A window override exceeded the model-derived lookahead bound.
    ///
    /// A window wider than the minimum transit latency would let a
    /// cross-shard message land inside an already-drained window —
    /// conservative synchronization is unsound past that bound, so the
    /// builder rejects it at construction.
    WindowTooWide {
        /// The requested window (seconds).
        requested: f64,
        /// The largest sound window: the scenario's minimum `delay_min`.
        max: f64,
    },
}

impl std::fmt::Display for ParallelBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelBuildError::Build(e) => write!(f, "{e}"),
            ParallelBuildError::DiameterTrackingUnsupported => {
                f.write_str("diameter tracking is only supported on the sequential engine")
            }
            ParallelBuildError::EventLogUnsupported => {
                f.write_str("the structured event log is only supported on the sequential engine")
            }
            ParallelBuildError::NoLookahead => f.write_str(
                "scenario has no positive minimum transit latency: no conservative window exists",
            ),
            ParallelBuildError::WindowTooWide { requested, max } => write!(
                f,
                "window {requested} exceeds the lookahead bound {max} (minimum transit latency)"
            ),
        }
    }
}

impl std::error::Error for ParallelBuildError {}

impl From<BuildError> for ParallelBuildError {
    fn from(e: BuildError) -> Self {
        ParallelBuildError::Build(e)
    }
}

/// Builder for [`ParallelSimulation`]: wraps a fully configured
/// [`SimBuilder`] and adds the sharding knobs.
#[derive(Debug)]
pub struct ParallelSimBuilder {
    inner: SimBuilder,
    shards: usize,
    partition: Partition,
    window_override: Option<f64>,
}

impl ParallelSimBuilder {
    /// Wraps a configured sequential builder. Defaults: 1 shard,
    /// contiguous partition, model-derived window.
    #[must_use]
    pub fn new(inner: SimBuilder) -> Self {
        ParallelSimBuilder {
            inner,
            shards: 1,
            partition: Partition::Contiguous,
            window_override: None,
        }
    }

    /// Number of shards (worker parallelism). Clamped to the node count
    /// at build time.
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Partitioning strategy.
    #[must_use]
    pub fn partition(mut self, p: Partition) -> Self {
        self.partition = p;
        self
    }

    /// Overrides the synchronization window width (seconds).
    ///
    /// Only narrowing is allowed: build fails with
    /// [`ParallelBuildError::WindowTooWide`] if the override exceeds the
    /// scenario's minimum transit latency, because a wider window is not
    /// a conservative lookahead and would break determinism.
    #[must_use]
    pub fn lookahead_override(mut self, window: f64) -> Self {
        self.window_override = Some(window);
        self
    }

    /// Builds the sharded engine.
    ///
    /// # Errors
    ///
    /// Everything [`SimBuilder::build`] rejects, plus the parallel-only
    /// conditions documented on [`ParallelBuildError`].
    pub fn build(self) -> Result<ParallelSimulation, ParallelBuildError> {
        if self.inner.track_diameter {
            return Err(ParallelBuildError::DiameterTrackingUnsupported);
        }
        if self.inner.log_capacity > 0 {
            return Err(ParallelBuildError::EventLogUnsupported);
        }
        let mut sim = self.inner.build()?;
        let n = sim.nodes.len();
        let shards = self.shards.min(n);

        // Model-derived lookahead: the smallest minimum transit latency
        // over the scenario's whole edge universe (§3.1 lower bound).
        let lookahead = sim
            .edge_info
            .values()
            .map(|info| info.params.delay_min)
            .fold(f64::INFINITY, f64::min);
        let window = match self.window_override {
            Some(w) if w > lookahead => {
                return Err(ParallelBuildError::WindowTooWide {
                    requested: w,
                    max: lookahead,
                });
            }
            Some(w) => w,
            None => lookahead,
        };
        let window = if shards == 1 { f64::INFINITY } else { window };
        if window.is_nan() || window <= 0.0 {
            return Err(ParallelBuildError::NoLookahead);
        }

        let ranges = match self.partition {
            Partition::Contiguous => contiguous_ranges(n, shards),
            Partition::DegreeBalanced => {
                let mut degree = vec![0u64; n];
                for key in sim.edge_info.keys() {
                    degree[key.lo().index()] += 1;
                    degree[key.hi().index()] += 1;
                }
                balanced_ranges(&degree, shards)
            }
        };
        let starts: Vec<usize> = ranges.iter().map(|r| r.start).collect();
        let mut shard_states: Vec<Shard> = ranges
            .into_iter()
            .enumerate()
            .map(|(i, range)| Shard {
                index: i,
                range,
                queue: EventQueue::new(),
                seq: (i as u64 + 1) << SEQ_NAMESPACE_SHIFT,
                stats: SimStats::default(),
                flood_buf: Vec::new(),
                outbox: Vec::new(),
                tel: LocalCounters::default(),
            })
            .collect();

        // Deal the build-time events out by owner, preserving their
        // original (time, seq) keys: the master keeps ticks and scripted
        // edge transitions; each shard gets its nodes' local events.
        let mut master: EventQueue<Event> = EventQueue::new();
        let mut built = std::mem::replace(&mut sim.queue, EventQueue::new());
        while let Some((t, seq, ev)) = built.pop_keyed() {
            match owning_node(&ev) {
                None => master.schedule_keyed(t, seq, ev),
                Some(u) => shard_states[owner(&starts, u)]
                    .queue
                    .schedule_keyed(t, seq, ev),
            }
        }
        sim.queue = master;
        // Arm the redirect seam: node-local events spawned by master-side
        // handlers now surface in `sim.redirect` for routing.
        sim.redirect = Some(Vec::new());

        Ok(ParallelSimulation {
            sim,
            shards: shard_states,
            starts,
            window,
        })
    }
}

/// One shard: a contiguous node range, its event queue, its namespaced
/// sequence counter, and private scratch.
#[derive(Debug)]
struct Shard {
    index: usize,
    range: Range<usize>,
    queue: EventQueue<Event>,
    seq: u64,
    stats: SimStats,
    flood_buf: Vec<(NodeId, EdgeParams)>,
    outbox: Vec<(usize, SimTime, u64, Event)>,
    /// Telemetry counter block this shard accumulates into (when enabled);
    /// folded into the master sink by `merge_stats`, like `stats`.
    tel: LocalCounters,
}

/// Read-only state shared by all workers during a drain round.
struct SharedCtx<'a> {
    params: &'a Params,
    message_mode: bool,
    edge_info: &'a HashMap<EdgeKey, EdgeInfo>,
    graph: &'a DynamicGraph,
    refresh: f64,
    starts: &'a [usize],
    /// Whether a telemetry sink is installed (workers can't touch the
    /// sink itself — they count into their shard's block instead).
    telemetry: bool,
}

/// One worker's disjoint mutable state for a drain round: its shard plus
/// the matching slices of the node array and hot columns.
struct Work<'a> {
    shard: &'a mut Shard,
    nodes: &'a mut [NodeState],
    stable_until: &'a mut [f64],
    m_jump_sensitive: &'a mut [bool],
    delay_rng: &'a mut [StdRng],
}

/// Splits one column into per-shard `&mut` slices along `ranges`
/// (contiguous, ascending, starting at 0).
fn split_ranges<'a, T>(mut rest: &'a mut [T], ranges: &[Range<usize>]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(ranges.len());
    let mut offset = 0;
    for r in ranges {
        let (head, tail) = rest.split_at_mut(r.end - offset);
        out.push(head);
        rest = tail;
        offset = r.end;
    }
    out
}

/// Drains every event inside the segment (`< cut` when `strict`, else
/// `≤ cut`) from one shard, running the shared node-local handlers with a
/// [`ShardSink`]. Runs on a worker thread.
fn drain_one(work: Work<'_>, shared: &SharedCtx<'_>, cut: SimTime, strict: bool) {
    let Work {
        shard,
        nodes,
        stable_until,
        m_jump_sensitive,
        delay_rng,
    } = work;
    let Shard {
        index,
        range,
        queue,
        seq,
        stats,
        flood_buf,
        outbox,
        tel,
    } = shard;
    loop {
        match queue.next_time() {
            Some(t) if t < cut || (!strict && t == cut) => {}
            _ => break,
        }
        let (t, _seq, ev) = queue.pop_keyed().expect("peeked");
        stats.events += 1;
        let mut sink = ShardSink {
            queue: &mut *queue,
            starts: shared.starts,
            shard: *index,
            seq: &mut *seq,
            outbox: &mut *outbox,
        };
        let mut ctx = LocalCtx {
            range: range.clone(),
            nodes: &mut *nodes,
            stable_until: &mut *stable_until,
            m_jump_sensitive: &mut *m_jump_sensitive,
            delay_rng: &mut *delay_rng,
            stats: &mut *stats,
            sink: &mut sink,
            flood_buf: &mut *flood_buf,
            params: shared.params,
            message_mode: shared.message_mode,
            edge_info: shared.edge_info,
            graph: shared.graph,
            diameter: None,
            log: None,
            refresh: shared.refresh,
            tel: if shared.telemetry {
                Some(&mut *tel)
            } else {
                None
            },
        };
        ctx.handle(t, ev);
    }
}

/// The sharded engine. Observation goes through `Deref<Target =
/// Simulation>`: snapshots, change log, stats, and node accessors all
/// read the master state, which is fully synchronized whenever no
/// `run_until` call is in progress.
#[derive(Debug)]
pub struct ParallelSimulation {
    sim: Simulation,
    shards: Vec<Shard>,
    starts: Vec<usize>,
    window: f64,
}

impl std::ops::Deref for ParallelSimulation {
    type Target = Simulation;

    fn deref(&self) -> &Simulation {
        &self.sim
    }
}

impl ParallelSimulation {
    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The synchronization window width in seconds (`INFINITY` for a
    /// single shard, which needs no cross-shard rendezvous).
    #[must_use]
    pub fn window(&self) -> f64 {
        self.window
    }

    /// Runs until simulated time `t` (inclusive), bit-identically to
    /// [`Simulation::run_until`] on the same configuration and seed.
    pub fn run_until(&mut self, target: SimTime) {
        assert!(target >= self.sim.now, "cannot run backwards to {target:?}");
        loop {
            // Conservative segment bound: nothing at or before `cut` can
            // still be affected by an unexecuted event elsewhere.
            let master_next = self.sim.queue.next_time();
            let earliest = self
                .shards
                .iter_mut()
                .filter_map(|s| s.queue.next_time())
                .fold(None, |acc: Option<SimTime>, t| {
                    Some(acc.map_or(t, |a| a.min(t)))
                });
            let mut cut = target;
            if let Some(m) = master_next {
                cut = cut.min(m);
            }
            if self.window.is_finite() {
                if let Some(e) = earliest {
                    cut = cut.min(SimTime::from_secs(e.as_secs() + self.window));
                }
            }
            if let Some(sink) = self.sim.telemetry.as_deref_mut() {
                sink.on_segment_cut(cut.as_secs());
            }

            // 1. Shard events strictly before the cut, in parallel.
            //    Events exactly *at* the cut are boundary events: the cut
            //    is capped at the next master event, so a scripted edge
            //    transition can coincide with a same-instant delivery or
            //    flood there, and those must not run before the master's
            //    earlier-keyed events.
            self.drain_shards(cut, true);
            // 2. The boundary instant itself: master events and shard
            //    events at exactly the cut, interleaved in ascending
            //    sequence order — the order the sequential engine's single
            //    queue pops them. This pins the §3.1 closed-interval
            //    semantics at window barriers: an edge up exactly at a send
            //    time delivers, a removal exactly at a delivery instant
            //    drops (scripted transitions carry build-time keys, which
            //    sort before every dynamically spawned event).
            // 3. Node-local events the master spawned (leader checks from
            //    edge-ups) go to their owners; redirected events land at or
            //    after the cut, so only another boundary pass can run any
            //    that landed inside this segment.
            loop {
                self.boundary_merge(cut);
                if !self.route_redirects(cut) {
                    break;
                }
            }
            if cut >= target {
                break;
            }
            self.sim.now = cut;
        }
        self.sim.now = target;
        self.merge_stats();
        self.sim.advance_all(target);
    }

    /// [`run_until`](ParallelSimulation::run_until) with a plain seconds
    /// argument.
    pub fn run_until_secs(&mut self, secs: f64) {
        self.run_until(SimTime::from_secs(secs));
    }

    /// Injects a clock fault (see [`Simulation::inject_clock_offset`]).
    /// Shards are quiescent between `run_until` calls, so the master may
    /// mutate node state directly.
    pub fn inject_clock_offset(&mut self, u: NodeId, offset: f64) {
        self.sim.inject_clock_offset(u, offset);
    }

    /// Installs a scripted estimate corruption (see
    /// [`Simulation::inject_estimate_bias`]).
    ///
    /// # Panics
    ///
    /// Panics unless `bias` is finite and within `[-1, 1]`.
    pub fn inject_estimate_bias(&mut self, u: NodeId, bias: f64) {
        self.sim.inject_estimate_bias(u, bias);
    }

    /// Installs a telemetry sink (see [`Simulation::set_telemetry`]).
    /// Master-side hooks report through it directly; shard workers count
    /// into per-shard blocks that are folded in at stats merges.
    pub fn set_telemetry(&mut self, sink: Box<dyn TelemetrySink>) {
        self.sim.set_telemetry(sink);
    }

    /// Removes the telemetry sink (shard counter blocks were already
    /// flushed by the stats merge at the end of the last `run_until`).
    pub fn take_telemetry(&mut self) -> Option<Box<dyn TelemetrySink>> {
        self.sim.take_telemetry()
    }

    /// Pending events across the master queue and every shard queue. At
    /// quiescence (between `run_until` calls) the pending multiset is
    /// engine-invariant, so this gauge matches the sequential engine's.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.sim.queue.len() + self.shards.iter().map(|s| s.queue.len()).sum::<usize>()
    }

    /// Runs drain rounds until every shard's next event is outside the
    /// segment: each round drains all shards in parallel, then exchanges
    /// mailbox deliveries at the barrier; only an exchanged event landing
    /// back inside the segment (possible exactly at the lookahead bound on
    /// zero-jitter edges) forces another round. With `strict` the segment
    /// is `t < cut` — events exactly at the cut stay queued for the
    /// boundary merge, which orders them against same-instant master
    /// events; without it the segment is `t ≤ cut`.
    fn drain_shards(&mut self, cut: SimTime, strict: bool) {
        let inside = |t: SimTime| if strict { t < cut } else { t <= cut };
        loop {
            let active: Vec<bool> = self
                .shards
                .iter_mut()
                .map(|s| matches!(s.queue.next_time(), Some(t) if inside(t)))
                .collect();
            let busy = active.iter().filter(|&&a| a).count();
            if busy == 0 {
                return;
            }
            self.drain_round(&active, cut, strict);
            if let Some(sink) = self.sim.telemetry.as_deref_mut() {
                sink.on_barrier_round(busy, active.len() - busy);
            }
            // Barrier: exchange cross-shard deliveries.
            let mut moved: Vec<(usize, SimTime, u64, Event)> = Vec::new();
            for s in &mut self.shards {
                moved.append(&mut s.outbox);
            }
            if !moved.is_empty() {
                if let Some(sink) = self.sim.telemetry.as_deref_mut() {
                    sink.on_mailbox(moved.len());
                }
            }
            let mut exchanged_in_window = false;
            for (dest, t, seq, ev) in moved {
                exchanged_in_window |= inside(t);
                self.shards[dest].queue.schedule_keyed(t, seq, ev);
            }
            if !exchanged_in_window {
                return;
            }
        }
    }

    /// Executes every event scheduled exactly at `cut` — master and shard
    /// alike — in ascending sequence order, i.e. exactly the order the
    /// sequential engine's single queue would pop them. Shard events run
    /// on the calling thread against the full node range, but keep their
    /// owning shard's sink, sequence counter, stats, per-node RNG rows,
    /// and telemetry block, so spawned keys and per-shard counters are
    /// indistinguishable from a parallel drain. Cross-shard deliveries
    /// spawned here (which land strictly later — the builder guarantees a
    /// positive lookahead) are exchanged before returning.
    fn boundary_merge(&mut self, cut: SimTime) {
        loop {
            let master = self
                .sim
                .queue
                .next_key()
                .filter(|&(t, _)| t == cut)
                .map(|(_, seq)| seq);
            let shard = self
                .shards
                .iter_mut()
                .filter_map(|s| {
                    let (t, seq) = s.queue.next_key()?;
                    (t == cut).then_some((seq, s.index))
                })
                .min();
            match (master, shard) {
                (None, None) => break,
                (Some(_), None) => self.pop_master_at(cut),
                (None, Some((_, i))) => self.pop_shard_at(i, cut),
                (Some(m), Some((s, i))) => {
                    if m < s {
                        self.pop_master_at(cut);
                    } else {
                        self.pop_shard_at(i, cut);
                    }
                }
            }
        }
        let mut moved: Vec<(usize, SimTime, u64, Event)> = Vec::new();
        for s in &mut self.shards {
            moved.append(&mut s.outbox);
        }
        if !moved.is_empty() {
            if let Some(sink) = self.sim.telemetry.as_deref_mut() {
                sink.on_mailbox(moved.len());
            }
            for (dest, t, seq, ev) in moved {
                debug_assert!(t > cut, "boundary sends land after the cut");
                self.shards[dest].queue.schedule_keyed(t, seq, ev);
            }
        }
    }

    /// Pops and executes the master queue's earliest event (at `cut`).
    fn pop_master_at(&mut self, cut: SimTime) {
        let (when, ev) = self.sim.queue.pop().expect("peeked");
        debug_assert_eq!(when, cut);
        self.sim.now = when;
        self.sim.stats.events += 1;
        self.sim.handle(when, ev);
    }

    /// Pops and executes shard `index`'s earliest event (at `cut`) on the
    /// calling thread, with the shard's own sink, stats, and counters.
    fn pop_shard_at(&mut self, index: usize, cut: SimTime) {
        let sim = &mut self.sim;
        let Shard {
            index: _,
            range: _,
            queue,
            seq,
            stats,
            flood_buf,
            outbox,
            tel,
        } = &mut self.shards[index];
        let (t, _seq, ev) = queue.pop_keyed().expect("peeked");
        debug_assert_eq!(t, cut);
        stats.events += 1;
        let mut sink = ShardSink {
            queue: &mut *queue,
            starts: &self.starts,
            shard: index,
            seq: &mut *seq,
            outbox: &mut *outbox,
        };
        let mut ctx = LocalCtx {
            range: 0..sim.nodes.len(),
            nodes: &mut sim.nodes,
            stable_until: &mut sim.hot.stable_until,
            m_jump_sensitive: &mut sim.hot.m_jump_sensitive,
            delay_rng: &mut sim.hot.delay_rng,
            stats: &mut *stats,
            sink: &mut sink,
            flood_buf: &mut *flood_buf,
            params: &sim.params,
            message_mode: matches!(sim.mode, crate::EstimateMode::Messages),
            edge_info: &sim.edge_info,
            graph: &sim.graph,
            diameter: None,
            log: None,
            refresh: sim.refresh,
            tel: if sim.telemetry.is_some() {
                Some(&mut *tel)
            } else {
                None
            },
        };
        ctx.handle(t, ev);
    }

    /// One parallel round: every active shard drains on its own thread
    /// (the first active one on the calling thread), with disjoint
    /// `split_at_mut` borrows of the node array and hot columns.
    fn drain_round(&mut self, active: &[bool], cut: SimTime, strict: bool) {
        let sim = &mut self.sim;
        let shared = SharedCtx {
            params: &sim.params,
            message_mode: matches!(sim.mode, crate::EstimateMode::Messages),
            edge_info: &sim.edge_info,
            graph: &sim.graph,
            refresh: sim.refresh,
            starts: &self.starts,
            telemetry: sim.telemetry.is_some(),
        };
        let ranges: Vec<Range<usize>> = self.shards.iter().map(|s| s.range.clone()).collect();
        let node_cols = split_ranges(&mut sim.nodes, &ranges);
        let su_cols = split_ranges(&mut sim.hot.stable_until, &ranges);
        let mj_cols = split_ranges(&mut sim.hot.m_jump_sensitive, &ranges);
        let dr_cols = split_ranges(&mut sim.hot.delay_rng, &ranges);
        let mut works: Vec<Option<Work<'_>>> = Vec::with_capacity(self.shards.len());
        for ((((shard, nodes), stable_until), m_jump_sensitive), delay_rng) in self
            .shards
            .iter_mut()
            .zip(node_cols)
            .zip(su_cols)
            .zip(mj_cols)
            .zip(dr_cols)
        {
            let is_active = active[shard.index];
            let w = Work {
                shard,
                nodes,
                stable_until,
                m_jump_sensitive,
                delay_rng,
            };
            works.push(is_active.then_some(w));
        }
        let mut iter = works.into_iter().flatten();
        let first = iter.next().expect("at least one active shard");
        let rest: Vec<Work<'_>> = iter.collect();
        if rest.is_empty() {
            drain_one(first, &shared, cut, strict);
        } else {
            let shared = &shared;
            std::thread::scope(|scope| {
                for w in rest {
                    scope.spawn(move || drain_one(w, shared, cut, strict));
                }
                drain_one(first, shared, cut, strict);
            });
        }
    }

    /// Routes master-spawned node-local events to their owning shards
    /// with owner-namespaced keys, in spawn order. Returns whether any
    /// landed at or before `cut`.
    fn route_redirects(&mut self, cut: SimTime) -> bool {
        let buf = self
            .sim
            .redirect
            .as_mut()
            .expect("parallel engine always arms the redirect seam");
        if buf.is_empty() {
            return false;
        }
        let drained: Vec<(SimTime, Event)> = std::mem::take(buf);
        let mut in_window = false;
        for (t, ev) in drained {
            let u = owning_node(&ev).expect("redirected events are node-local");
            let shard = &mut self.shards[owner(&self.starts, u)];
            let seq = shard.seq;
            shard.seq += 1;
            shard.queue.schedule_keyed(t, seq, ev);
            in_window |= t <= cut;
        }
        in_window
    }

    /// Folds every shard's counters into the master stats (shard
    /// accumulators reset to zero), so the `Deref`'d
    /// [`Simulation::stats`] is exact at every observation point.
    fn merge_stats(&mut self) {
        for s in &mut self.shards {
            let st = std::mem::take(&mut s.stats);
            if let Some(sink) = self.sim.telemetry.as_deref_mut() {
                let tel = std::mem::take(&mut s.tel);
                sink.on_local(s.index, &tel);
                sink.on_shard_drained(s.index, st.events);
            }
            let total = &mut self.sim.stats;
            total.messages_sent += st.messages_sent;
            total.messages_delivered += st.messages_delivered;
            total.messages_dropped += st.messages_dropped;
            total.ticks += st.ticks;
            total.events += st.events;
            total.mode_evaluations += st.mode_evaluations;
            total.handshakes_offered += st.handshakes_offered;
            total.insertions_scheduled += st.insertions_scheduled;
        }
    }
}

/// Engine-invariant gauges read at a quiescent instant — the streaming
/// snapshot hook the per-sample observation loops use instead of
/// materializing a full [`ClockSnapshot`](crate::ClockSnapshot). Every
/// field is deterministic and identical across the sequential and the
/// sharded engine at any shard count (the telemetry trace contract leans
/// on this), and reading them allocates nothing, so observers stay
/// bounded-memory at 10⁵ nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineGauges {
    /// The current instant, seconds.
    pub t: f64,
    /// `max_u L_u − min_u L_u` over all logical clocks.
    pub global_skew: f64,
    /// Pending events across every queue the engine owns.
    pub queue_depth: usize,
    /// Nodes whose stability horizon has expired (the next tick sweep's
    /// work).
    pub dirty_nodes: usize,
    /// Total events processed so far.
    pub events: u64,
}

/// A uniform driving interface over the sequential and sharded engines,
/// so campaign/bench/conformance code is generic in which one it runs.
pub trait Engine {
    /// Runs until `secs` simulated seconds (inclusive).
    fn run_until_secs(&mut self, secs: f64);

    /// Reads the engine-invariant [`EngineGauges`] at the current
    /// (quiescent) instant, allocation-free.
    fn gauges(&self) -> EngineGauges {
        let sim = self.as_sim();
        EngineGauges {
            t: sim.now().as_secs(),
            global_skew: sim.global_skew_now(),
            queue_depth: self.pending_events(),
            dirty_nodes: sim.dirty_nodes(),
            events: sim.stats().events,
        }
    }
    /// Injects a clock fault at the current instant.
    fn inject_clock_offset(&mut self, u: NodeId, offset: f64);
    /// Installs a scripted estimate corruption at the current instant.
    fn inject_estimate_bias(&mut self, u: NodeId, bias: f64);
    /// The master simulation state, for observation.
    fn as_sim(&self) -> &Simulation;
    /// Installs a telemetry sink (post-build, either engine).
    fn set_telemetry(&mut self, sink: Box<dyn TelemetrySink>);
    /// Removes the telemetry sink, flushing pending counters into it.
    fn take_telemetry(&mut self) -> Option<Box<dyn TelemetrySink>>;
    /// Pending events across every queue this engine owns (an
    /// engine-invariant gauge at quiescent instants).
    fn pending_events(&self) -> usize;
}

impl Engine for Simulation {
    fn run_until_secs(&mut self, secs: f64) {
        Simulation::run_until_secs(self, secs);
    }

    fn inject_clock_offset(&mut self, u: NodeId, offset: f64) {
        Simulation::inject_clock_offset(self, u, offset);
    }

    fn inject_estimate_bias(&mut self, u: NodeId, bias: f64) {
        Simulation::inject_estimate_bias(self, u, bias);
    }

    fn as_sim(&self) -> &Simulation {
        self
    }

    fn set_telemetry(&mut self, sink: Box<dyn TelemetrySink>) {
        Simulation::set_telemetry(self, sink);
    }

    fn take_telemetry(&mut self) -> Option<Box<dyn TelemetrySink>> {
        Simulation::take_telemetry(self)
    }

    fn pending_events(&self) -> usize {
        Simulation::pending_events(self)
    }
}

impl Engine for ParallelSimulation {
    fn run_until_secs(&mut self, secs: f64) {
        ParallelSimulation::run_until_secs(self, secs);
    }

    fn inject_clock_offset(&mut self, u: NodeId, offset: f64) {
        ParallelSimulation::inject_clock_offset(self, u, offset);
    }

    fn inject_estimate_bias(&mut self, u: NodeId, bias: f64) {
        ParallelSimulation::inject_estimate_bias(self, u, bias);
    }

    fn as_sim(&self) -> &Simulation {
        self
    }

    fn set_telemetry(&mut self, sink: Box<dyn TelemetrySink>) {
        ParallelSimulation::set_telemetry(self, sink);
    }

    fn take_telemetry(&mut self) -> Option<Box<dyn TelemetrySink>> {
        ParallelSimulation::take_telemetry(self)
    }

    fn pending_events(&self) -> usize {
        ParallelSimulation::pending_events(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Payload;
    use gcs_net::Topology;
    use gcs_sim::DriftModel;

    fn builder(seed: u64) -> SimBuilder {
        let params = Params::builder().rho(0.01).mu(0.1).build().unwrap();
        SimBuilder::new(params)
            .topology(Topology::ring(4))
            .drift(DriftModel::TwoBlock)
            .seed(seed)
    }

    /// A flood whose bounds no organic run could produce, so whether it
    /// was delivered is visible in the receiver's state.
    fn poison() -> Payload {
        Payload::Flood {
            logical: 1.0e6,
            max_est: 1.0e6,
            min_lb: 0.0,
            max_ub: 2.0e6,
        }
    }

    /// §3.1 boundary, removal side: an edge removal scheduled at exactly a
    /// delivery instant sorts first (scripted transitions carry build-time
    /// keys, below every dynamic key), so the message drops — and the
    /// sharded engine must reproduce that at its window barrier, where the
    /// removal is a master event and the delivery a shard event. Before
    /// the boundary merge, the shard drained its side of the instant
    /// first and delivered through the removed edge.
    #[test]
    fn removal_at_the_delivery_instant_drops_in_both_engines() {
        let cut = SimTime::from_secs(1.7717);
        let sent = SimTime::from_secs(1.7);
        let dyn_seq = (1u64 << SEQ_NAMESPACE_SHIFT) | 7;
        let down = || Event::EdgeDown {
            from: NodeId(1),
            to: NodeId(0),
        };
        let deliver = || Event::Deliver {
            src: NodeId(0),
            dst: NodeId(1),
            sent_at: sent,
            payload: poison(),
        };

        let mut seq_sim = builder(11).build().unwrap();
        let mut par = ParallelSimBuilder::new(builder(11))
            .shards(2)
            .build()
            .unwrap();
        seq_sim.run_until_secs(1.0);
        par.run_until_secs(1.0);

        seq_sim.queue.schedule_keyed(cut, 1_000, down());
        seq_sim.queue.schedule_keyed(cut, dyn_seq, deliver());
        par.sim.queue.schedule_keyed(cut, 1_000, down());
        let shard = owner(&par.starts, 1);
        par.shards[shard]
            .queue
            .schedule_keyed(cut, dyn_seq, deliver());

        let dropped_before = seq_sim.stats().messages_dropped;
        seq_sim.run_until_secs(2.5);
        par.run_until_secs(2.5);

        assert!(
            seq_sim.stats().messages_dropped > dropped_before,
            "the colliding delivery must be dropped"
        );
        assert!(
            seq_sim.nodes[1].max_estimate() < 1.0e5,
            "sequential engine delivered through a removed edge"
        );
        assert!(
            par.nodes[1].max_estimate() < 1.0e5,
            "sharded engine delivered through a removed edge"
        );
        assert_eq!(seq_sim.stats(), par.stats());
        assert_eq!(seq_sim.snapshot().logical, par.snapshot().logical);
    }

    /// §3.1 boundary, insertion side: a message sent at exactly the
    /// instant the receiver discovered the sender is deliverable — the
    /// presence interval is closed on the left — identically in both
    /// engines (here across the shard boundary).
    #[test]
    fn send_at_the_discovery_instant_delivers_in_both_engines() {
        let at = SimTime::from_secs(0.006);
        let sent = SimTime::from_secs(0.0);
        let dyn_seq = (1u64 << SEQ_NAMESPACE_SHIFT) | 7;
        let deliver = || Event::Deliver {
            src: NodeId(2),
            dst: NodeId(1),
            sent_at: sent,
            payload: poison(),
        };

        let mut seq_sim = builder(17).build().unwrap();
        seq_sim.queue.schedule_keyed(at, dyn_seq, deliver());
        let mut par = ParallelSimBuilder::new(builder(17))
            .shards(2)
            .build()
            .unwrap();
        let shard = owner(&par.starts, 1);
        par.shards[shard]
            .queue
            .schedule_keyed(at, dyn_seq, deliver());

        seq_sim.run_until_secs(1.0);
        par.run_until_secs(1.0);

        assert!(
            seq_sim.nodes[1].max_estimate() >= 1.0e6,
            "the boundary send must be delivered"
        );
        assert_eq!(seq_sim.stats(), par.stats());
        assert_eq!(seq_sim.snapshot().logical, par.snapshot().logical);
        assert_eq!(
            seq_sim.nodes[1].max_estimate().to_bits(),
            par.nodes[1].max_estimate().to_bits()
        );
    }
}
