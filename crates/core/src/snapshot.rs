//! Read-only views of a simulation: instantaneous [`ClockSnapshot`]s and
//! sampled [`Trace`]s.

use gcs_net::NodeId;

use crate::triggers::Mode;

/// All clocks at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct ClockSnapshot {
    /// Simulated real time (seconds).
    pub time: f64,
    /// Logical clock `L_u` per node.
    pub logical: Vec<f64>,
    /// Hardware clock `H_u` per node.
    pub hardware: Vec<f64>,
    /// Max estimate `M_u` per node.
    pub max_estimates: Vec<f64>,
    /// Mode per node.
    pub modes: Vec<Mode>,
}

impl ClockSnapshot {
    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.logical.len()
    }

    /// The global skew `G(t) = max_u L_u − min_u L_v` (Definition 3.2).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot is empty.
    #[must_use]
    pub fn global_skew(&self) -> f64 {
        let max = self
            .logical
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let min = self.logical.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max.is_finite() && min.is_finite(), "empty snapshot");
        max - min
    }

    /// `|L_u − L_v|`.
    ///
    /// # Panics
    ///
    /// Panics if a node is out of range.
    #[must_use]
    pub fn skew(&self, u: NodeId, v: NodeId) -> f64 {
        (self.logical[u.index()] - self.logical[v.index()]).abs()
    }

    /// The largest logical clock.
    #[must_use]
    pub fn max_logical(&self) -> f64 {
        self.logical
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The smallest logical clock.
    #[must_use]
    pub fn min_logical(&self) -> f64 {
        self.logical.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// How many nodes are currently in fast mode.
    #[must_use]
    pub fn fast_count(&self) -> usize {
        self.modes.iter().filter(|m| **m == Mode::Fast).count()
    }
}

/// A time series of snapshots sampled at a fixed cadence.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    samples: Vec<ClockSnapshot>,
}

impl Trace {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace {
            samples: Vec::new(),
        }
    }

    /// Appends a snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's time precedes the previous sample's.
    pub fn push(&mut self, snap: ClockSnapshot) {
        if let Some(last) = self.samples.last() {
            assert!(snap.time >= last.time, "trace samples must be time-ordered");
        }
        self.samples.push(snap);
    }

    /// The recorded samples, in time order.
    #[must_use]
    pub fn samples(&self) -> &[ClockSnapshot] {
        &self.samples
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Largest global skew over all samples.
    #[must_use]
    pub fn max_global_skew(&self) -> f64 {
        self.samples
            .iter()
            .map(ClockSnapshot::global_skew)
            .fold(0.0, f64::max)
    }

    /// Largest `|L_u − L_v|` over all samples.
    #[must_use]
    pub fn max_skew_between(&self, u: NodeId, v: NodeId) -> f64 {
        self.samples
            .iter()
            .map(|s| s.skew(u, v))
            .fold(0.0, f64::max)
    }

    /// The first sample time at which `|L_u − L_v| ≤ bound` *and it stays*
    /// at or below the bound for the rest of the trace. `None` if never.
    #[must_use]
    pub fn settles_below(&self, u: NodeId, v: NodeId, bound: f64) -> Option<f64> {
        let mut settle: Option<f64> = None;
        for s in &self.samples {
            if s.skew(u, v) <= bound {
                settle.get_or_insert(s.time);
            } else {
                settle = None;
            }
        }
        settle
    }

    /// `(time, global_skew)` series for reporting.
    #[must_use]
    pub fn global_skew_series(&self) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .map(|s| (s.time, s.global_skew()))
            .collect()
    }
}

impl FromIterator<ClockSnapshot> for Trace {
    fn from_iter<I: IntoIterator<Item = ClockSnapshot>>(iter: I) -> Self {
        let mut t = Trace::new();
        for s in iter {
            t.push(s);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(time: f64, logical: Vec<f64>) -> ClockSnapshot {
        let n = logical.len();
        ClockSnapshot {
            time,
            hardware: logical.clone(),
            max_estimates: logical.clone(),
            logical,
            modes: vec![Mode::Slow; n],
        }
    }

    #[test]
    fn skews() {
        let s = snap(1.0, vec![1.0, 3.0, 2.0]);
        assert!((s.global_skew() - 2.0).abs() < 1e-15);
        assert!((s.skew(NodeId(0), NodeId(1)) - 2.0).abs() < 1e-15);
        assert_eq!(s.max_logical(), 3.0);
        assert_eq!(s.min_logical(), 1.0);
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.fast_count(), 0);
    }

    #[test]
    fn trace_statistics() {
        let t: Trace = vec![
            snap(0.0, vec![0.0, 0.0]),
            snap(1.0, vec![0.0, 0.5]),
            snap(2.0, vec![0.0, 0.2]),
            snap(3.0, vec![0.0, 0.1]),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.len(), 4);
        assert!((t.max_global_skew() - 0.5).abs() < 1e-15);
        assert!((t.max_skew_between(NodeId(0), NodeId(1)) - 0.5).abs() < 1e-15);
        let series = t.global_skew_series();
        assert_eq!(series.len(), 4);
        assert_eq!(series[1], (1.0, 0.5));
    }

    #[test]
    fn settles_below_requires_staying_below() {
        let t: Trace = vec![
            snap(0.0, vec![0.0, 1.0]),
            snap(1.0, vec![0.0, 0.1]), // dips below...
            snap(2.0, vec![0.0, 0.6]), // ...but bounces back
            snap(3.0, vec![0.0, 0.2]),
            snap(4.0, vec![0.0, 0.1]),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.settles_below(NodeId(0), NodeId(1), 0.3), Some(3.0));
        assert_eq!(t.settles_below(NodeId(0), NodeId(1), 0.05), None);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn trace_rejects_disorder() {
        let mut t = Trace::new();
        t.push(snap(2.0, vec![0.0]));
        t.push(snap(1.0, vec![0.0]));
    }
}
