//! The estimate layer (§3.1, inequality (1)).
//!
//! Node `u` is provided with an estimate `L̃ᵥᵤ` of each neighbour `v`'s
//! logical clock, accurate to the edge's uncertainty `ε`:
//! `|L_v(t) − L̃ᵥᵤ(t)| ≤ ε_{u,v}`.
//!
//! Two interchangeable implementations:
//!
//! * **Oracle** — the simulator computes `L_v(t)` exactly and perturbs it
//!   according to an [`ErrorModel`] (never exceeding `ε`). This matches the
//!   abstraction the paper reasons through and enables the *adversarial*
//!   estimate choices that lower-bound constructions need.
//! * **Messages** — estimates come from the periodic floods: the receiver
//!   stores the credited clock sample and dead-reckons it forward at its own
//!   hardware rate. The advertised uncertainty is then
//!   [`Params::message_epsilon`], derived from the delay jitter, refresh
//!   period, drift, and `µ`.

use crate::params::Params;
use gcs_net::EdgeParams;

/// How the oracle layer perturbs true clock values, always within `±ε`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorModel {
    /// Estimates are exact (`L̃ = L_v`); `ε` is still advertised, so the
    /// algorithm behaves as if errors were possible.
    #[default]
    None,
    /// A per-directed-edge constant bias drawn uniformly from `[−ε, ε]` at
    /// discovery time. Satisfies inequality (1) with a worst-case-style
    /// persistent error.
    RandomBias,
    /// Adversarial "hiding": the estimate is `L_v` clamped towards the
    /// observer's own clock, `L̃ = clamp(L_u, L_v − ε, L_v + ε)`. This makes
    /// up to `ε` of true skew per edge invisible — the constructive form of
    /// the indistinguishability argument behind the §8 lower bound.
    Hide,
}

impl ErrorModel {
    /// Applies the model. `own` is the observer's logical clock, `truth` the
    /// neighbour's, `bias` the slot's stored bias, `epsilon` the edge's `ε`.
    #[must_use]
    pub fn apply(self, own: f64, truth: f64, bias: f64, epsilon: f64) -> f64 {
        match self {
            ErrorModel::None => truth,
            ErrorModel::RandomBias => truth + bias.clamp(-epsilon, epsilon),
            ErrorModel::Hide => own.clamp(truth - epsilon, truth + epsilon),
        }
    }
}

/// Which estimate layer implementation a simulation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateMode {
    /// On-demand perturbed truth; `ε` taken from the edge parameters.
    Oracle(ErrorModel),
    /// Periodic floods + dead reckoning; `ε` derived via
    /// [`Params::message_epsilon`].
    Messages,
}

impl Default for EstimateMode {
    fn default() -> Self {
        EstimateMode::Oracle(ErrorModel::None)
    }
}

impl EstimateMode {
    /// The uncertainty `ε` this layer advertises for an edge (the value the
    /// algorithm plugs into eq. 9 for `κ`).
    #[must_use]
    pub fn advertised_epsilon(self, params: &Params, edge: EdgeParams, refresh_period: f64) -> f64 {
        match self {
            EstimateMode::Oracle(_) => edge.epsilon,
            EstimateMode::Messages => params.message_epsilon(edge, refresh_period),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_exact() {
        assert_eq!(ErrorModel::None.apply(0.0, 5.0, 9.9, 0.1), 5.0);
    }

    #[test]
    fn random_bias_respects_epsilon() {
        // Bias beyond epsilon is clamped.
        assert_eq!(ErrorModel::RandomBias.apply(0.0, 5.0, 1.0, 0.1), 5.1);
        assert_eq!(ErrorModel::RandomBias.apply(0.0, 5.0, -1.0, 0.1), 4.9);
        assert_eq!(ErrorModel::RandomBias.apply(0.0, 5.0, 0.05, 0.1), 5.05);
    }

    #[test]
    fn hide_clamps_toward_observer() {
        // Observer behind the truth: estimate pulled down to truth - eps.
        assert_eq!(ErrorModel::Hide.apply(3.0, 5.0, 0.0, 0.5), 4.5);
        // Observer ahead: estimate pulled up to truth + eps.
        assert_eq!(ErrorModel::Hide.apply(9.0, 5.0, 0.0, 0.5), 5.5);
        // Observer within eps of truth: estimate equals observer (skew fully
        // hidden).
        assert_eq!(ErrorModel::Hide.apply(5.2, 5.0, 0.0, 0.5), 5.2);
    }

    #[test]
    fn hide_never_exceeds_epsilon() {
        for own in [-10.0, 0.0, 4.9, 5.0, 5.1, 20.0] {
            let est = ErrorModel::Hide.apply(own, 5.0, 0.0, 0.25);
            assert!((est - 5.0).abs() <= 0.25 + 1e-15);
        }
    }

    #[test]
    fn advertised_epsilon_dispatches() {
        let p = Params::builder().rho(0.01).mu(0.1).build().unwrap();
        let e = EdgeParams::new(0.003, 0.01, 0.001, 0.01);
        let oracle = EstimateMode::Oracle(ErrorModel::None);
        assert_eq!(oracle.advertised_epsilon(&p, e, 0.1), 0.003);
        let msgs = EstimateMode::Messages;
        assert!((msgs.advertised_epsilon(&p, e, 0.1) - p.message_epsilon(e, 0.1)).abs() < 1e-15);
    }
}
