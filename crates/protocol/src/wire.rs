//! Length-prefixed wire frames for the `gcs-node` socket daemon.
//!
//! Pure bytes in, bytes out — the sans-IO counterpart of a real
//! transport. A frame on the wire is
//!
//! ```text
//! [u32 LE payload length][u8 kind][payload]
//! ```
//!
//! with the kind byte counted in the length. Three kinds exist:
//!
//! | kind | frame | payload |
//! |---|---|---|
//! | 1 | [`Frame::Hello`] | `first: u64 LE`, `count: u64 LE` — the sender hosts node IDs `[first, first+count)` |
//! | 2 | [`Frame::Flood`] | `src, dst: u64 LE`, then `sent_at, logical, max_est, min_lb, max_ub` as `f64::to_bits` LE |
//! | 3 | [`Frame::Shutdown`] | empty — the sender is leaving; close the connection |
//!
//! All floats travel as raw IEEE-754 bits, so a value survives the wire
//! bit-exactly — the same property the simulation's trace seals rely on.
//! [`Frame::decode`] works on a growing receive buffer: it either
//! consumes exactly one frame, reports that more bytes are needed, or
//! rejects the stream as corrupt (oversized length prefix, unknown kind,
//! payload length not matching the kind).

use gcs_net::NodeId;
use gcs_sim::SimTime;

use crate::flood::FloodMsg;

/// Largest payload length this protocol ever produces; anything bigger
/// in a length prefix means the stream is corrupt or not ours, and is
/// rejected before any allocation.
pub const MAX_PAYLOAD: u32 = 64;

const KIND_HELLO: u8 = 1;
const KIND_FLOOD: u8 = 2;
const KIND_SHUTDOWN: u8 = 3;

const HELLO_LEN: u32 = 1 + 16;
const FLOOD_LEN: u32 = 1 + 56;
const SHUTDOWN_LEN: u32 = 1;

/// One protocol frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Frame {
    /// Connection preamble: the sender hosts node IDs
    /// `[first, first + count)`.
    Hello {
        /// First hosted node ID.
        first: u64,
        /// Number of hosted nodes.
        count: u64,
    },
    /// One flood message from `src` to `dst` (the §3.1 send instant
    /// travels with it).
    Flood {
        /// Sending node.
        src: NodeId,
        /// Receiving node.
        dst: NodeId,
        /// Send instant on the sender's run clock.
        sent_at: SimTime,
        /// The flood body.
        msg: FloodMsg,
    },
    /// Graceful goodbye.
    Shutdown,
}

/// Why a byte stream could not be decoded as frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversize(u32),
    /// The kind byte is not a known frame kind.
    UnknownKind(u8),
    /// The payload length does not match the kind's fixed layout.
    BadLength {
        /// The offending kind byte.
        kind: u8,
        /// The length the prefix claimed.
        len: u32,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversize(n) => {
                write!(
                    f,
                    "frame length {n} exceeds the protocol maximum {MAX_PAYLOAD}"
                )
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadLength { kind, len } => {
                write!(f, "frame kind {kind} cannot have payload length {len}")
            }
        }
    }
}

impl std::error::Error for WireError {}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn get_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
}

fn get_f64(buf: &[u8], at: usize) -> f64 {
    f64::from_bits(get_u64(buf, at))
}

impl Frame {
    /// Appends this frame's encoding (length prefix included) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Frame::Hello { first, count } => {
                out.extend_from_slice(&HELLO_LEN.to_le_bytes());
                out.push(KIND_HELLO);
                put_u64(out, first);
                put_u64(out, count);
            }
            Frame::Flood {
                src,
                dst,
                sent_at,
                msg,
            } => {
                out.extend_from_slice(&FLOOD_LEN.to_le_bytes());
                out.push(KIND_FLOOD);
                put_u64(out, u64::from(src.0));
                put_u64(out, u64::from(dst.0));
                put_f64(out, sent_at.as_secs());
                put_f64(out, msg.logical);
                put_f64(out, msg.max_est);
                put_f64(out, msg.min_lb);
                put_f64(out, msg.max_ub);
            }
            Frame::Shutdown => {
                out.extend_from_slice(&SHUTDOWN_LEN.to_le_bytes());
                out.push(KIND_SHUTDOWN);
            }
        }
    }

    /// This frame's encoding as a fresh buffer.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + FLOOD_LEN as usize);
        self.encode(&mut out);
        out
    }

    /// Decodes one frame from the front of `buf`.
    ///
    /// Returns `Ok(None)` when `buf` holds only a partial frame (read
    /// more bytes and retry), `Ok(Some((frame, consumed)))` on success —
    /// the caller drops `consumed` bytes from the front — and an error
    /// when the stream cannot be ours.
    ///
    /// # Errors
    ///
    /// See [`WireError`]; a corrupt stream is not recoverable and the
    /// connection should be dropped.
    pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, WireError> {
        if buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversize(len));
        }
        let total = 4 + len as usize;
        if buf.len() < total {
            return Ok(None);
        }
        if len == 0 {
            return Err(WireError::BadLength { kind: 0, len });
        }
        let kind = buf[4];
        let frame = match (kind, len) {
            (KIND_HELLO, HELLO_LEN) => Frame::Hello {
                first: get_u64(buf, 5),
                count: get_u64(buf, 13),
            },
            (KIND_FLOOD, FLOOD_LEN) => {
                let node = |at| {
                    let raw = get_u64(buf, at);
                    NodeId(u32::try_from(raw).unwrap_or(u32::MAX))
                };
                Frame::Flood {
                    src: node(5),
                    dst: node(13),
                    sent_at: SimTime::from_secs(get_f64(buf, 21)),
                    msg: FloodMsg {
                        logical: get_f64(buf, 29),
                        max_est: get_f64(buf, 37),
                        min_lb: get_f64(buf, 45),
                        max_ub: get_f64(buf, 53),
                    },
                }
            }
            (KIND_SHUTDOWN, SHUTDOWN_LEN) => Frame::Shutdown,
            (KIND_HELLO | KIND_FLOOD | KIND_SHUTDOWN, _) => {
                return Err(WireError::BadLength { kind, len })
            }
            (other, _) => return Err(WireError::UnknownKind(other)),
        };
        Ok(Some((frame, total)))
    }
}

/// A streaming frame decoder: feed received bytes in, take decoded
/// frames out. Keeps at most one partial frame buffered.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// A reader with an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends freshly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, if one is buffered.
    ///
    /// # Errors
    ///
    /// Propagates [`WireError`] from [`Frame::decode`]; the stream is
    /// corrupt and the connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        match Frame::decode(&self.buf)? {
            Some((frame, consumed)) => {
                self.buf.drain(..consumed);
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flood() -> Frame {
        Frame::Flood {
            src: NodeId(3),
            dst: NodeId(4),
            sent_at: SimTime::from_secs(1.25),
            msg: FloodMsg {
                logical: 1.2499,
                max_est: 1.2625,
                min_lb: 0.5,
                max_ub: 2.75,
            },
        }
    }

    #[test]
    fn frames_round_trip_bit_exactly() {
        for frame in [
            Frame::Hello { first: 4, count: 2 },
            flood(),
            Frame::Shutdown,
        ] {
            let bytes = frame.to_bytes();
            let (back, consumed) = Frame::decode(&bytes).unwrap().unwrap();
            assert_eq!(back, frame);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let bytes = flood().to_bytes();
        for cut in 0..bytes.len() {
            assert_eq!(Frame::decode(&bytes[..cut]).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        // Oversized length prefix.
        let huge = 1_000_000u32.to_le_bytes();
        assert_eq!(Frame::decode(&huge), Err(WireError::Oversize(1_000_000)));
        // Unknown kind.
        let mut bad = vec![];
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.push(99);
        assert_eq!(Frame::decode(&bad), Err(WireError::UnknownKind(99)));
        // Known kind, wrong payload length.
        let mut short = vec![];
        short.extend_from_slice(&2u32.to_le_bytes());
        short.push(KIND_FLOOD);
        short.push(0);
        assert_eq!(
            Frame::decode(&short),
            Err(WireError::BadLength {
                kind: KIND_FLOOD,
                len: 2
            })
        );
        // Zero-length frame (no kind byte at all).
        let zero = 0u32.to_le_bytes();
        assert_eq!(
            Frame::decode(&zero),
            Err(WireError::BadLength { kind: 0, len: 0 })
        );
    }

    #[test]
    fn reader_reassembles_a_fragmented_stream() {
        let mut stream = Vec::new();
        let frames = [
            Frame::Hello { first: 0, count: 3 },
            flood(),
            Frame::Shutdown,
        ];
        for f in &frames {
            f.encode(&mut stream);
        }
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        // Feed one byte at a time: every frame must still come out whole.
        for b in stream {
            reader.extend(&[b]);
            while let Some(f) = reader.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
    }
}
