//! Algorithm parameters and constants (§4.3.1 of the paper).
//!
//! The paper constrains its parameters as follows:
//!
//! * `ρ ∈ (0, 1)` — hardware clock drift bound (eq. before §3.1),
//! * `µ ≤ 1/10` (eq. 7) and `µ > 2ρ/(1−ρ)` so that `σ > 1` (eq. 8),
//! * `σ = (1−ρ)µ/(2ρ)` — the base of the gradient logarithm (eq. 8),
//! * `κ_e > 4(ε_e + µτ_e)` — edge weights (eq. 9),
//! * `δ_e ∈ (0, κ_e/2 − 2ε_e − 2µτ_e)` — slow-trigger slack (§4.3),
//! * `ι > 0` — the separation constant of the max-estimate condition
//!   (Definition 4.4, footnote 5),
//! * `B` — the convenience constant of the dynamic-estimate analysis
//!   (eq. 12).
//!
//! [`Params`] is validated at construction via [`ParamsBuilder`]; the
//! experiments that intentionally *violate* a constraint (ablation A3
//! sweeps `κ` below the proven threshold) use
//! [`ParamsBuilder::allow_unproven`].

use std::fmt;

use gcs_net::EdgeParams;

/// Errors returned by [`ParamsBuilder::build`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParamsError {
    /// `ρ` outside `(0, 1)`.
    RhoOutOfRange(f64),
    /// `µ` violates eq. (7) (`µ ≤ 1/10`) or positivity.
    MuOutOfRange(f64),
    /// `σ = (1−ρ)µ/2ρ ≤ 1`, i.e. `µ ≤ 2ρ/(1−ρ)`: fast mode cannot outrun
    /// drift (§4.3.1).
    SigmaNotAboveOne {
        /// The offending σ.
        sigma: f64,
    },
    /// `κ` scale ≤ 4 violates eq. (9).
    KappaScaleTooSmall(f64),
    /// `δ` fraction outside `(0, 1)`.
    DeltaFracOutOfRange(f64),
    /// `ι ≤ 0`.
    IotaNotPositive(f64),
    /// A tuning knob was not positive.
    NotPositive {
        /// Name of the offending knob.
        name: &'static str,
        /// Its value.
        value: f64,
    },
}

impl fmt::Display for ParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamsError::RhoOutOfRange(r) => write!(f, "rho must be in (0, 1), got {r}"),
            ParamsError::MuOutOfRange(m) => {
                write!(f, "mu must be in (0, 1/10] (eq. 7 of the paper), got {m}")
            }
            ParamsError::SigmaNotAboveOne { sigma } => write!(
                f,
                "sigma = (1-rho)*mu/(2*rho) must exceed 1, got {sigma}; increase mu or decrease rho"
            ),
            ParamsError::KappaScaleTooSmall(c) => write!(
                f,
                "kappa_scale must exceed 4 (eq. 9: kappa > 4(eps + mu*tau)), got {c}"
            ),
            ParamsError::DeltaFracOutOfRange(d) => {
                write!(f, "delta_frac must be in (0, 1), got {d}")
            }
            ParamsError::IotaNotPositive(i) => write!(f, "iota must be positive, got {i}"),
            ParamsError::NotPositive { name, value } => {
                write!(f, "{name} must be positive, got {value}")
            }
        }
    }
}

impl std::error::Error for ParamsError {}

/// How newly appearing edges are brought into the neighbour level sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InsertionStrategy {
    /// The paper's main contribution: the Listing 1 handshake followed by
    /// the staged, dyadically aligned level unlocking of Listing 2.
    Staged,
    /// The simpler strategy of \[16\] the paper compares against in §5.5:
    /// join all levels immediately with an inflated weight `κ₀ = 2·G̃`
    /// that halves every `halving` logical units until the final `κ`.
    /// No handshake or coordination is needed, but the decay must be slow
    /// enough for skew to drain — the source of the §5.5 overhead.
    DecayingWeight {
        /// Logical-clock distance per weight halving.
        halving: f64,
    },
}

/// Validated algorithm parameters.
///
/// Construct via [`Params::builder`]. All getters are cheap.
///
/// # Example
///
/// ```
/// use gcs_protocol::Params;
///
/// let p = Params::builder().rho(0.01).mu(0.1).build()?;
/// assert!(p.sigma() > 1.0);
/// assert!(p.beta() > 1.0); // fastest logical rate (1+rho)(1+mu)
/// # Ok::<(), gcs_protocol::ParamsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    rho: f64,
    mu: f64,
    kappa_scale: f64,
    delta_frac: f64,
    iota: f64,
    g_tilde: Option<f64>,
    dynamic_estimates: bool,
    insertion_scale: f64,
    b_constant: Option<f64>,
    tick: Option<f64>,
    refresh_period: Option<f64>,
    max_levels: u32,
    unproven: bool,
    insertion_strategy: InsertionStrategy,
}

impl Params {
    /// Starts building a parameter set. Defaults: `ρ = 10⁻⁴`, `µ = 0.05`,
    /// `κ` scale 4.5, `δ` fraction 0.5.
    #[must_use]
    pub fn builder() -> ParamsBuilder {
        ParamsBuilder::default()
    }

    /// Drift bound `ρ`.
    #[must_use]
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Fast-mode boost `µ`.
    #[must_use]
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The gradient logarithm base `σ = (1−ρ)µ/(2ρ)` (eq. 8).
    #[must_use]
    pub fn sigma(&self) -> f64 {
        (1.0 - self.rho) * self.mu / (2.0 * self.rho)
    }

    /// Minimum logical clock rate `α = 1 − ρ` (§3).
    #[must_use]
    pub fn alpha(&self) -> f64 {
        1.0 - self.rho
    }

    /// Maximum logical clock rate `β = (1+ρ)(1+µ)` (§3).
    #[must_use]
    pub fn beta(&self) -> f64 {
        (1.0 + self.rho) * (1.0 + self.mu)
    }

    /// The max-estimate separation constant `ι` (Definition 4.4).
    #[must_use]
    pub fn iota(&self) -> f64 {
        self.iota
    }

    /// The static global-skew estimate `G̃`, if configured. The simulation
    /// builder derives one from the scenario when absent.
    #[must_use]
    pub fn g_tilde(&self) -> Option<f64> {
        self.g_tilde
    }

    /// Whether edges are inserted with the node-local, time-dependent
    /// global-skew estimates of §7 (eq. 11) instead of the static `G̃`
    /// (eq. 10).
    #[must_use]
    pub fn dynamic_estimates(&self) -> bool {
        self.dynamic_estimates
    }

    /// Multiplier applied to the insertion duration `I` (ablation A2;
    /// 1.0 = the paper's value).
    #[must_use]
    pub fn insertion_scale(&self) -> f64 {
        self.insertion_scale
    }

    /// The `B` constant of eq. (12). The paper's proven range is
    /// `µ/2ρ ≥ B ≥ 320·2⁷/(1−ρ)²`; since the lower end is astronomically
    /// conservative (the paper itself conjectures single-digit constants,
    /// §5.5), the default is `max(4, µ/2ρ)` capped at the proven upper end.
    #[must_use]
    pub fn b_constant(&self) -> f64 {
        self.b_constant
            .unwrap_or_else(|| (self.mu / (2.0 * self.rho)).max(4.0))
    }

    /// Trigger-evaluation period in seconds, if configured explicitly.
    #[must_use]
    pub fn tick(&self) -> Option<f64> {
        self.tick
    }

    /// Flood/estimate refresh period in *hardware* seconds, if configured.
    #[must_use]
    pub fn refresh_period(&self) -> Option<f64> {
        self.refresh_period
    }

    /// Safety cap on the trigger-level scan.
    #[must_use]
    pub fn max_levels(&self) -> u32 {
        self.max_levels
    }

    /// Whether constraint checking was relaxed (ablations only).
    #[must_use]
    pub fn is_unproven(&self) -> bool {
        self.unproven
    }

    /// Edge weight `κ_e = kappa_scale · (ε_e + µ·τ_e)` (eq. 9).
    #[must_use]
    pub fn kappa(&self, edge: EdgeParams, epsilon: f64) -> f64 {
        self.kappa_scale * (epsilon + self.mu * edge.tau)
    }

    /// Slow-trigger slack `δ_e = delta_frac · (κ_e/2 − 2ε_e − 2µτ_e)`
    /// (§4.3, constraint before Definition 4.6).
    ///
    /// With relaxed (`allow_unproven`) parameters the proven-positive width
    /// can be ≤ 0; the result is then clamped to a small positive fraction
    /// of `κ` so the algorithm still runs (and misbehaves measurably, which
    /// is the point of ablation A3).
    #[must_use]
    pub fn delta(&self, edge: EdgeParams, epsilon: f64) -> f64 {
        self.delta_for_kappa(self.kappa(edge, epsilon), edge, epsilon)
    }

    /// [`delta`](Params::delta) for an explicit (possibly inflated) weight —
    /// used by the decaying-weight insertion strategy, whose effective `κ`
    /// varies over time.
    #[must_use]
    pub fn delta_for_kappa(&self, kappa: f64, edge: EdgeParams, epsilon: f64) -> f64 {
        let width = kappa / 2.0 - 2.0 * epsilon - 2.0 * self.mu * edge.tau;
        if width > 0.0 {
            self.delta_frac * width
        } else {
            1e-3 * kappa
        }
    }

    /// The configured edge-insertion strategy.
    #[must_use]
    pub fn insertion_strategy(&self) -> InsertionStrategy {
        self.insertion_strategy
    }

    /// The handshake wait `∆` of Listing 1:
    /// `∆ = (1+ρ)(1+µ)(T+τ)/(1−ρ) + τ`.
    #[must_use]
    pub fn handshake_delta(&self, edge: EdgeParams) -> f64 {
        self.beta() * (edge.delay_bound() + edge.tau) / self.alpha() + edge.tau
    }

    /// The static insertion duration `I(G̃)` of eq. (10):
    /// `I = (20(1+µ)/(1−ρ) + 56µ + (8+56µ)/σ) · G̃/µ`, scaled by
    /// [`insertion_scale`](Params::insertion_scale).
    #[must_use]
    pub fn insertion_duration_static(&self, g_tilde: f64) -> f64 {
        let factor = 20.0 * (1.0 + self.mu) / (1.0 - self.rho)
            + 56.0 * self.mu
            + (8.0 + 56.0 * self.mu) / self.sigma();
        self.insertion_scale * factor * g_tilde / self.mu
    }

    /// The dynamic insertion duration `I(G̃_{u,v})` of eq. (11):
    /// `I = 2^⌈log₂ ℓ⌉` with
    /// `ℓ = (1+ρ)(1+µ)(∆ + 2τ) + 8B·G̃/µ`, scaled by `insertion_scale`
    /// before dyadic rounding (the rounding is what Lemma 7.1's alignment
    /// argument needs, so it is preserved under scaling).
    #[must_use]
    pub fn insertion_duration_dynamic(&self, edge: EdgeParams, g_tilde: f64) -> f64 {
        let ell = self.beta() * (self.handshake_delta(edge) + 2.0 * edge.tau)
            + 8.0 * self.b_constant() * g_tilde / self.mu;
        let scaled = self.insertion_scale * ell;
        2f64.powi(scaled.log2().ceil() as i32)
    }

    /// The insertion duration actually used for an edge, dispatching on
    /// [`dynamic_estimates`](Params::dynamic_estimates).
    #[must_use]
    pub fn insertion_duration(&self, edge: EdgeParams, g_tilde: f64) -> f64 {
        if self.dynamic_estimates {
            self.insertion_duration_dynamic(edge, g_tilde)
        } else {
            self.insertion_duration_static(g_tilde)
        }
    }

    /// Estimate uncertainty `ε` of the message-based estimate layer, derived
    /// from the edge parameters and the refresh period `P` (see
    /// `estimate` module docs): receive error
    /// `(1+ρ)(1+µ)T − (1−ρ)·delay_min` plus dead-reckoning divergence
    /// `(µ + ρµ + 2ρ) · (P/(1−ρ) + T)`.
    #[must_use]
    pub fn message_epsilon(&self, edge: EdgeParams, refresh_period: f64) -> f64 {
        let recv_err = self.beta() * edge.delay_bound() - self.alpha() * edge.delay_min;
        let window = refresh_period / self.alpha() + edge.delay_bound();
        let divergence_rate = self.mu + self.rho * self.mu + 2.0 * self.rho;
        recv_err + divergence_rate * window
    }

    /// Extra slack to allow on measured skew bounds due to evaluating the
    /// (continuous-time) triggers every `dt` seconds: two ticks of maximal
    /// relative clock movement.
    #[must_use]
    pub fn discretization_slack(&self, dt: f64) -> f64 {
        2.0 * dt * (self.beta() - self.alpha())
    }
}

/// Builder for [`Params`]; see [`Params::builder`].
#[derive(Debug, Clone)]
pub struct ParamsBuilder {
    rho: f64,
    mu: f64,
    kappa_scale: f64,
    delta_frac: f64,
    iota: Option<f64>,
    g_tilde: Option<f64>,
    dynamic_estimates: bool,
    insertion_scale: f64,
    b_constant: Option<f64>,
    tick: Option<f64>,
    refresh_period: Option<f64>,
    max_levels: u32,
    allow_unproven: bool,
    insertion_strategy: InsertionStrategy,
}

impl Default for ParamsBuilder {
    fn default() -> Self {
        ParamsBuilder {
            rho: 1e-4,
            mu: 0.05,
            kappa_scale: 4.5,
            delta_frac: 0.5,
            iota: None,
            g_tilde: None,
            dynamic_estimates: false,
            insertion_scale: 1.0,
            b_constant: None,
            tick: None,
            refresh_period: None,
            max_levels: 64,
            allow_unproven: false,
            insertion_strategy: InsertionStrategy::Staged,
        }
    }
}

impl ParamsBuilder {
    /// Sets the drift bound `ρ`.
    pub fn rho(&mut self, rho: f64) -> &mut Self {
        self.rho = rho;
        self
    }

    /// Sets the fast-mode boost `µ`.
    pub fn mu(&mut self, mu: f64) -> &mut Self {
        self.mu = mu;
        self
    }

    /// Sets the `κ` scale `c` in `κ = c(ε + µτ)`; the paper needs `c > 4`.
    pub fn kappa_scale(&mut self, c: f64) -> &mut Self {
        self.kappa_scale = c;
        self
    }

    /// Sets `δ` as a fraction of its permissible range.
    pub fn delta_frac(&mut self, f: f64) -> &mut Self {
        self.delta_frac = f;
        self
    }

    /// Sets the max-estimate separation `ι` explicitly (default: a small
    /// fraction of the smallest `κ`, chosen by the simulation builder).
    pub fn iota(&mut self, iota: f64) -> &mut Self {
        self.iota = Some(iota);
        self
    }

    /// Sets the static global-skew estimate `G̃`.
    pub fn g_tilde(&mut self, g: f64) -> &mut Self {
        self.g_tilde = Some(g);
        self
    }

    /// Enables §7 dynamic global-skew estimates for edge insertion.
    pub fn dynamic_estimates(&mut self, on: bool) -> &mut Self {
        self.dynamic_estimates = on;
        self
    }

    /// Scales the insertion duration `I` (ablation A2).
    pub fn insertion_scale(&mut self, s: f64) -> &mut Self {
        self.insertion_scale = s;
        self
    }

    /// Overrides the `B` constant of eq. (12).
    pub fn b_constant(&mut self, b: f64) -> &mut Self {
        self.b_constant = Some(b);
        self
    }

    /// Sets the trigger-evaluation period (seconds).
    pub fn tick(&mut self, dt: f64) -> &mut Self {
        self.tick = Some(dt);
        self
    }

    /// Sets the flood refresh period (hardware seconds).
    pub fn refresh_period(&mut self, p: f64) -> &mut Self {
        self.refresh_period = Some(p);
        self
    }

    /// Caps the trigger-level scan.
    pub fn max_levels(&mut self, levels: u32) -> &mut Self {
        self.max_levels = levels;
        self
    }

    /// Disables the paper's parameter constraints (`µ ≤ 1/10`, `σ > 1`,
    /// `κ` scale > 4). Only the basic sanity checks remain. Intended for
    /// ablation experiments that measure what breaks.
    pub fn allow_unproven(&mut self) -> &mut Self {
        self.allow_unproven = true;
        self
    }

    /// Selects the edge-insertion strategy (default: the paper's staged
    /// insertion; see [`InsertionStrategy`]).
    pub fn insertion_strategy(&mut self, strategy: InsertionStrategy) -> &mut Self {
        self.insertion_strategy = strategy;
        self
    }

    /// Validates and produces the [`Params`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParamsError`] describing the first violated constraint.
    pub fn build(&self) -> Result<Params, ParamsError> {
        if !(self.rho > 0.0 && self.rho < 1.0) {
            return Err(ParamsError::RhoOutOfRange(self.rho));
        }
        if self.mu <= 0.0 || (!self.allow_unproven && self.mu > 0.1 + 1e-12) {
            return Err(ParamsError::MuOutOfRange(self.mu));
        }
        let sigma = (1.0 - self.rho) * self.mu / (2.0 * self.rho);
        if !self.allow_unproven && sigma <= 1.0 {
            return Err(ParamsError::SigmaNotAboveOne { sigma });
        }
        if !self.allow_unproven && self.kappa_scale <= 4.0 {
            return Err(ParamsError::KappaScaleTooSmall(self.kappa_scale));
        }
        if self.kappa_scale <= 0.0 {
            return Err(ParamsError::NotPositive {
                name: "kappa_scale",
                value: self.kappa_scale,
            });
        }
        if !(self.delta_frac > 0.0 && self.delta_frac < 1.0) {
            return Err(ParamsError::DeltaFracOutOfRange(self.delta_frac));
        }
        if let Some(iota) = self.iota {
            if iota <= 0.0 {
                return Err(ParamsError::IotaNotPositive(iota));
            }
        }
        let halving = match self.insertion_strategy {
            InsertionStrategy::Staged => None,
            InsertionStrategy::DecayingWeight { halving } => Some(halving),
        };
        for (name, v) in [
            ("insertion_scale", Some(self.insertion_scale)),
            ("g_tilde", self.g_tilde),
            ("b_constant", self.b_constant),
            ("tick", self.tick),
            ("refresh_period", self.refresh_period),
            ("halving", halving),
        ] {
            if let Some(v) = v {
                if !(v > 0.0 && v.is_finite()) {
                    return Err(ParamsError::NotPositive { name, value: v });
                }
            }
        }
        Ok(Params {
            rho: self.rho,
            mu: self.mu,
            kappa_scale: self.kappa_scale,
            delta_frac: self.delta_frac,
            // A placeholder; the simulation builder replaces a missing iota
            // with a scenario-derived value before running.
            iota: self.iota.unwrap_or(f64::NAN),
            g_tilde: self.g_tilde,
            dynamic_estimates: self.dynamic_estimates,
            insertion_scale: self.insertion_scale,
            b_constant: self.b_constant,
            tick: self.tick,
            refresh_period: self.refresh_period,
            max_levels: self.max_levels,
            unproven: self.allow_unproven,
            insertion_strategy: self.insertion_strategy,
        })
    }
}

impl Params {
    /// Returns a copy with `ι` filled in (used by the simulation builder
    /// when the user did not choose one).
    #[doc(hidden)]
    #[must_use]
    pub fn with_iota_default(mut self, iota: f64) -> Self {
        if self.iota.is_nan() {
            self.iota = iota;
        }
        self
    }

    /// Returns a copy with the static `G̃` filled in.
    #[doc(hidden)]
    #[must_use]
    pub fn with_g_tilde_default(mut self, g: f64) -> Self {
        if self.g_tilde.is_none() {
            self.g_tilde = Some(g);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(rho: f64, mu: f64) -> Params {
        Params::builder().rho(rho).mu(mu).build().unwrap()
    }

    #[test]
    fn defaults_build() {
        let p = Params::builder().build().unwrap();
        assert!(p.sigma() > 1.0);
        assert!(p.alpha() < 1.0 && p.beta() > 1.0);
        assert!(!p.dynamic_estimates());
    }

    #[test]
    fn sigma_matches_eq8() {
        let p = params(0.01, 0.1);
        assert!((p.sigma() - 0.99 * 0.1 / 0.02).abs() < 1e-12);
    }

    #[test]
    fn rejects_mu_above_tenth() {
        let err = Params::builder().rho(0.001).mu(0.2).build().unwrap_err();
        assert!(matches!(err, ParamsError::MuOutOfRange(_)));
    }

    #[test]
    fn rejects_sigma_below_one() {
        let err = Params::builder().rho(0.05).mu(0.05).build().unwrap_err();
        assert!(matches!(err, ParamsError::SigmaNotAboveOne { .. }));
    }

    #[test]
    fn allow_unproven_relaxes() {
        let p = Params::builder()
            .rho(0.05)
            .mu(0.05)
            .kappa_scale(2.0)
            .allow_unproven()
            .build()
            .unwrap();
        assert!(p.is_unproven());
        assert!(p.sigma() <= 1.0);
    }

    #[test]
    fn rejects_small_kappa_scale() {
        let err = Params::builder().kappa_scale(3.0).build().unwrap_err();
        assert!(matches!(err, ParamsError::KappaScaleTooSmall(_)));
    }

    #[test]
    fn kappa_and_delta_satisfy_paper_constraints() {
        let p = params(0.01, 0.1);
        let e = EdgeParams::new(0.002, 0.01, 0.001, 0.01);
        let eps = e.epsilon;
        let kappa = p.kappa(e, eps);
        assert!(kappa > 4.0 * (eps + p.mu() * e.tau), "eq. (9)");
        let delta = p.delta(e, eps);
        assert!(delta > 0.0);
        assert!(
            delta < kappa / 2.0 - 2.0 * eps - 2.0 * p.mu() * e.tau,
            "delta within its permissible range"
        );
    }

    #[test]
    fn handshake_delta_matches_listing1() {
        let p = params(0.01, 0.1);
        let e = EdgeParams::new(0.002, 0.01, 0.001, 0.02);
        let expect = (1.01 * 1.1) * (0.02 + 0.01) / 0.99 + 0.01;
        assert!((p.handshake_delta(e) - expect).abs() < 1e-12);
    }

    #[test]
    fn static_insertion_duration_matches_eq10() {
        let p = params(0.01, 0.1);
        let factor = 20.0 * 1.1 / 0.99 + 5.6 + (8.0 + 5.6) / p.sigma();
        assert!((p.insertion_duration_static(2.0) - factor * 2.0 / 0.1).abs() < 1e-9);
    }

    #[test]
    fn dynamic_insertion_duration_is_dyadic() {
        let p = Params::builder()
            .rho(0.01)
            .mu(0.1)
            .dynamic_estimates(true)
            .build()
            .unwrap();
        let e = EdgeParams::default();
        let i = p.insertion_duration(e, 1.0);
        let log = i.log2();
        assert!(
            (log - log.round()).abs() < 1e-9,
            "I = {i} is not a power of 2"
        );
        // Larger estimates never shrink the duration.
        assert!(p.insertion_duration(e, 4.0) >= i);
    }

    #[test]
    fn insertion_scale_scales() {
        let mut b = Params::builder();
        b.rho(0.01).mu(0.1);
        let p1 = b.build().unwrap();
        b.insertion_scale(0.5);
        let p2 = b.build().unwrap();
        assert!(
            (p2.insertion_duration_static(1.0) - 0.5 * p1.insertion_duration_static(1.0)).abs()
                < 1e-9
        );
    }

    #[test]
    fn message_epsilon_grows_with_refresh_period() {
        let p = params(0.01, 0.1);
        let e = EdgeParams::default();
        assert!(p.message_epsilon(e, 0.1) < p.message_epsilon(e, 0.5));
        assert!(p.message_epsilon(e, 0.01) > 0.0);
    }

    #[test]
    fn b_constant_default_respects_floor() {
        let p = params(1e-4, 0.05);
        assert!(p.b_constant() >= 4.0);
        assert!((p.b_constant() - 0.05 / 2e-4).abs() < 1e-9);
    }

    #[test]
    fn error_display_is_informative() {
        let err = Params::builder().rho(2.0).build().unwrap_err();
        assert!(err.to_string().contains("rho"));
    }

    #[test]
    fn discretization_slack_scales_with_dt() {
        let p = params(0.01, 0.1);
        assert!((p.discretization_slack(0.02) - 2.0 * p.discretization_slack(0.01)).abs() < 1e-15);
    }
}
