//! Per-neighbour algorithm state: discovery, handshake progress, and the
//! level-set membership of §4.2.
//!
//! The paper's neighbour sets `N⁰ᵤ ⊇ N¹ᵤ ⊇ N²ᵤ ⊇ …` are *not* stored
//! explicitly. As §4.3.2 notes, the insertion times
//! `T_s = T₀ + (1 − 2^{1−s})·I` (Listing 2) mean membership is a pure
//! function of the node's current logical clock value: `v ∈ N^sᵤ(t)` iff
//! `L_u(t) ≥ T_s`. [`InsertState::level_at`] inverts that formula in closed
//! form, so an edge's unlocked level costs O(1) to query and no per-level
//! events are ever scheduled.

use gcs_sim::SimTime;

/// A neighbour's unlocked level: `v ∈ N^sᵤ` for all `1 ≤ s ≤ level`
/// (`N⁰ᵤ` membership is implied by the slot existing at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unlocked up to this finite level (0 = only in `N⁰ᵤ`).
    Finite(u32),
    /// Member of `N^sᵤ` for every `s` (insertion complete, or an initial
    /// edge — the paper initializes `N^sᵤ(0) = N_u(0)` for all `s`).
    Infinite,
}

impl Level {
    /// Whether the neighbour is in `N^sᵤ` for the given `s ≥ 1`.
    #[must_use]
    pub fn includes(self, s: u32) -> bool {
        match self {
            Level::Finite(l) => s <= l,
            Level::Infinite => true,
        }
    }

    /// The finite level, capped at `cap` for `Infinite`.
    #[must_use]
    pub fn capped(self, cap: u32) -> u32 {
        match self {
            Level::Finite(l) => l.min(cap),
            Level::Infinite => cap,
        }
    }
}

/// Progress of the Listing 1 handshake for one directed neighbour slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InsertState {
    /// Edge present since time 0: member of all levels by initialization.
    Initial,
    /// Discovered; the leader is waiting out its `∆` period (or the
    /// follower is waiting for the leader's `insertedge` message).
    Pending,
    /// The follower received `insertedge(L_ins, G̃)` and is waiting the
    /// mandated `T + τ` before applying it.
    FollowerWait {
        /// Logical insertion anchor from the message.
        l_ins: f64,
        /// Global-skew estimate from the message.
        g_tilde: f64,
        /// The follower's logical clock at receipt — the back edge of the
        /// Listing 1 line 13 continuity window.
        l_at_receive: f64,
    },
    /// Insertion times computed: `T_s = t0 + (1 − 2^{1−s}) · i`.
    Scheduled {
        /// `T₀` — the dyadically aligned logical start time.
        t0: f64,
        /// `I` — the insertion duration (logical units).
        i: f64,
    },
    /// The *simultaneous insertion* strategy the paper compares against in
    /// §5.5 (from \[16\]): the edge joins **every** level immediately, but
    /// with an inflated weight `κ(l) = max(κ_final, κ₀ · 2^{−(l−l₀)/h})`
    /// that decays geometrically with the local logical clock. No handshake
    /// is needed — each endpoint runs its own decay from its own discovery
    /// time (they disagree by at most the clock advance over `τ`).
    Decaying {
        /// Local logical clock at discovery (`l₀`).
        l0: f64,
        /// Initial inflated weight `κ₀` (typically `2·G̃`).
        kappa0: f64,
    },
}

impl InsertState {
    /// The unlocked level at logical clock value `l`.
    ///
    /// Inverts `T_s ≤ l` where `T_s = t0 + (1 − 2^{1−s})·i`:
    /// the largest `s` with `s ≤ 1 + log₂(i / (t0 + i − l))`.
    #[must_use]
    pub fn level_at(&self, l: f64) -> Level {
        match *self {
            InsertState::Initial | InsertState::Decaying { .. } => Level::Infinite,
            InsertState::Pending | InsertState::FollowerWait { .. } => Level::Finite(0),
            InsertState::Scheduled { t0, i } => {
                if l < t0 {
                    Level::Finite(0)
                } else if l >= t0 + i {
                    Level::Infinite
                } else {
                    let s = 1.0 + (i / (t0 + i - l)).log2();
                    // Guard against the float boundary: T_s must truly be <= l.
                    let mut s = s.floor() as u32;
                    while s > 0 && Self::t_s(t0, i, s) > l {
                        s -= 1;
                    }
                    Level::Finite(s)
                }
            }
        }
    }

    /// The insertion time `T_s` for `s ≥ 1` (Listing 2, line 5).
    #[must_use]
    pub fn t_s(t0: f64, i: f64, s: u32) -> f64 {
        t0 + (1.0 - 2f64.powi(1 - s as i32)) * i
    }

    /// The limit `T_∞ = T₀ + I` after which all levels are unlocked.
    #[must_use]
    pub fn t_infinity(t0: f64, i: f64) -> f64 {
        t0 + i
    }

    /// The decayed weight of a [`Decaying`](InsertState::Decaying) edge at
    /// logical clock value `l`, with final weight `kappa_final` and
    /// halving distance `halving` (logical units). For other states the
    /// final weight is returned unchanged.
    #[must_use]
    pub fn effective_kappa(&self, l: f64, kappa_final: f64, halving: f64) -> f64 {
        match *self {
            InsertState::Decaying { l0, kappa0 } => {
                let decayed = kappa0 * 2f64.powf(-((l - l0).max(0.0)) / halving);
                decayed.max(kappa_final)
            }
            _ => kappa_final,
        }
    }

    /// Whether a decaying edge has reached its final weight (trivially true
    /// for staged states once fully inserted).
    #[must_use]
    pub fn decay_complete(&self, l: f64, kappa_final: f64, halving: f64) -> bool {
        self.effective_kappa(l, kappa_final, halving) <= kappa_final * (1.0 + 1e-9)
    }
}

/// The `T₀` of Listing 2 line 3: the smallest integer multiple of `I` that
/// is `≥ L_ins`.
#[must_use]
pub fn align_t0(l_ins: f64, i: f64) -> f64 {
    assert!(i > 0.0, "insertion duration must be positive");
    (l_ins / i).ceil() * i
}

/// Everything a node tracks about one discovered neighbour.
#[derive(Debug, Clone)]
pub struct EdgeSlot {
    /// Real time the edge (this direction) was discovered.
    pub discovered_at: SimTime,
    /// This node's logical clock value at discovery — used for the
    /// logical-window continuity checks of Listing 1 (lines 6 and 13).
    pub discovered_l: f64,
    /// Handshake / insertion progress.
    pub insert: InsertState,
    /// Latest received clock estimate (message mode): the credited logical
    /// value and this node's hardware clock at receipt, for dead reckoning.
    pub estimate: Option<EstimateEntry>,
    /// Oracle-mode estimate bias for this directed edge, fixed at discovery
    /// (`RandomBias` error model).
    pub oracle_bias: f64,
    /// Monotone counter distinguishing re-discoveries of the same edge, so
    /// that handshake events scheduled for an earlier incarnation are
    /// ignored (the `T_s := ⊥` resets of Listing 1 line 18).
    pub generation: u64,
}

/// A received clock sample for dead reckoning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateEntry {
    /// Credited logical value of the neighbour at receipt.
    pub value: f64,
    /// Receiver's hardware clock at receipt.
    pub hw_at_recv: f64,
}

impl EdgeSlot {
    /// A slot for an edge discovered at runtime.
    #[must_use]
    pub fn discovered(at: SimTime, logical: f64, generation: u64) -> Self {
        EdgeSlot {
            discovered_at: at,
            discovered_l: logical,
            insert: InsertState::Pending,
            estimate: None,
            oracle_bias: 0.0,
            generation,
        }
    }

    /// A slot for an edge present at time 0 (all levels unlocked).
    #[must_use]
    pub fn initial() -> Self {
        EdgeSlot {
            discovered_at: SimTime::ZERO,
            discovered_l: 0.0,
            insert: InsertState::Initial,
            estimate: None,
            oracle_bias: 0.0,
            generation: 0,
        }
    }

    /// Dead-reckoned estimate of the neighbour's logical clock given the
    /// receiver's current hardware clock value (message mode).
    #[must_use]
    pub fn reckoned_estimate(&self, hw_now: f64) -> Option<f64> {
        self.estimate.map(|e| e.value + (hw_now - e.hw_at_recv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_inclusion() {
        assert!(Level::Infinite > Level::Finite(u32::MAX));
        assert!(Level::Finite(3).includes(3));
        assert!(Level::Finite(3).includes(1));
        assert!(!Level::Finite(3).includes(4));
        assert!(Level::Infinite.includes(1_000_000));
        assert_eq!(Level::Infinite.capped(7), 7);
        assert_eq!(Level::Finite(3).capped(7), 3);
    }

    #[test]
    fn initial_edges_are_fully_inserted() {
        assert_eq!(InsertState::Initial.level_at(0.0), Level::Infinite);
    }

    #[test]
    fn pending_edges_are_level_zero() {
        assert_eq!(InsertState::Pending.level_at(100.0), Level::Finite(0));
    }

    #[test]
    fn scheduled_levels_match_t_s_formula() {
        let (t0, i) = (100.0, 64.0);
        let st = InsertState::Scheduled { t0, i };
        // T_1 = t0, T_2 = t0 + I/2, T_3 = t0 + 3I/4, ...
        assert_eq!(st.level_at(99.9), Level::Finite(0));
        assert_eq!(st.level_at(100.0), Level::Finite(1));
        assert_eq!(st.level_at(100.0 + 31.9), Level::Finite(1));
        assert_eq!(st.level_at(100.0 + 32.0), Level::Finite(2));
        assert_eq!(st.level_at(100.0 + 48.0), Level::Finite(3));
        assert_eq!(st.level_at(100.0 + 56.0), Level::Finite(4));
        assert_eq!(st.level_at(164.0), Level::Infinite);
    }

    #[test]
    fn level_at_agrees_with_t_s_for_many_points() {
        let (t0, i) = (37.0, 13.0);
        let st = InsertState::Scheduled { t0, i };
        for k in 0..2000 {
            let l = 30.0 + k as f64 * 0.01;
            match st.level_at(l) {
                Level::Finite(s) => {
                    if s > 0 {
                        assert!(InsertState::t_s(t0, i, s) <= l + 1e-12, "level {s} at {l}");
                    }
                    assert!(
                        InsertState::t_s(t0, i, s + 1) > l - 1e-9,
                        "level should be {} at {l}",
                        s + 1
                    );
                }
                Level::Infinite => assert!(l >= InsertState::t_infinity(t0, i) - 1e-12),
            }
        }
    }

    #[test]
    fn t_s_converges_to_t_infinity() {
        let (t0, i) = (0.0, 32.0);
        assert_eq!(InsertState::t_s(t0, i, 1), 0.0);
        assert!((InsertState::t_s(t0, i, 20) - 32.0).abs() < 1e-3);
        assert_eq!(InsertState::t_infinity(t0, i), 32.0);
    }

    #[test]
    fn decaying_edges_are_in_all_levels_immediately() {
        let st = InsertState::Decaying {
            l0: 10.0,
            kappa0: 1.0,
        };
        assert_eq!(st.level_at(10.0), Level::Infinite);
    }

    #[test]
    fn effective_kappa_halves_per_halving_distance() {
        let st = InsertState::Decaying {
            l0: 100.0,
            kappa0: 1.0,
        };
        let kf = 0.01;
        let h = 5.0;
        assert!((st.effective_kappa(100.0, kf, h) - 1.0).abs() < 1e-12);
        assert!((st.effective_kappa(105.0, kf, h) - 0.5).abs() < 1e-12);
        assert!((st.effective_kappa(110.0, kf, h) - 0.25).abs() < 1e-12);
        // Floors at the final weight and reports completion.
        assert_eq!(st.effective_kappa(100.0 + 5.0 * 60.0, kf, h), kf);
        assert!(st.decay_complete(100.0 + 5.0 * 60.0, kf, h));
        assert!(!st.decay_complete(101.0, kf, h));
        // Before discovery (clock behind l0): no decay yet.
        assert!((st.effective_kappa(90.0, kf, h) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn staged_states_use_the_final_weight() {
        assert_eq!(InsertState::Initial.effective_kappa(5.0, 0.02, 1.0), 0.02);
        assert_eq!(InsertState::Pending.effective_kappa(5.0, 0.02, 1.0), 0.02);
        assert!(InsertState::Initial.decay_complete(0.0, 0.02, 1.0));
    }

    #[test]
    fn align_t0_is_next_multiple() {
        assert_eq!(align_t0(10.0, 4.0), 12.0);
        assert_eq!(align_t0(12.0, 4.0), 12.0);
        assert_eq!(align_t0(12.1, 4.0), 16.0);
    }

    #[test]
    fn reckoned_estimate_advances_with_hardware() {
        let mut slot = EdgeSlot::discovered(SimTime::from_secs(1.0), 5.0, 1);
        assert_eq!(slot.reckoned_estimate(10.0), None);
        slot.estimate = Some(EstimateEntry {
            value: 42.0,
            hw_at_recv: 10.0,
        });
        assert_eq!(slot.reckoned_estimate(10.0), Some(42.0));
        assert_eq!(slot.reckoned_estimate(12.5), Some(44.5));
    }
}
