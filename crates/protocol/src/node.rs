//! Per-node algorithm state: the logical clock, the max-estimate `M_u` of
//! Condition 4.3, and the `[W_u, P_u]` global-skew bracket used for the
//! dynamic estimates `G̃_u(t)` of §7.
//!
//! All four quantities are piecewise linear between simulation events and
//! integrated exactly:
//!
//! * `L_u` advances at `mult · h_u` where `mult ∈ {1, 1+µ}` (Listing 3),
//! * `M_u` advances at `(1−ρ)/(1+ρ) · h_u` and is clamped to `≥ L_u`; this
//!   realizes both update rules of Condition 4.3 (when `M_u = L_u` the clamp
//!   makes it track the logical clock exactly),
//! * `W_u` (lower bound on the network's *minimum* logical clock) advances
//!   at `(1−ρ)/(1+ρ) · h_u ≤ 1−ρ`, never exceeding `L_u`,
//! * `P_u` (upper bound on the network's *maximum* logical clock) advances
//!   at `(1+ρ)(1+µ)/(1−ρ) · h_u ≥ (1+ρ)(1+µ)`, never below `M_u`.
//!
//! `G̃_u(t) := P_u − W_u` then satisfies inequality (5): it upper-bounds the
//! true global skew at all times.
//!
//! # Anchored integration
//!
//! The state is stored as an *anchor* — the exact values at the last
//! discontinuity (rate change, mode switch, flood merge, corruption) — plus
//! a cache of the values at the last queried instant. [`advance_to`] only
//! refreshes the cache: it evaluates each piecewise-linear segment in closed
//! form from the anchor and never rewrites it. Two consequences the engine
//! relies on:
//!
//! * **Query-invariance.** Advancing a node at extra intermediate instants
//!   (eager `advance_all` per event, observation sampling, debug checks)
//!   does not perturb any future value by even an ulp — the trajectory is a
//!   pure function of the anchor sequence, which only events determine.
//!   Lazy and eager advancement are therefore *bit-identical*.
//! * **O(1) advancement.** A node untouched for a thousand ticks catches up
//!   with the same handful of multiply-adds as one advanced every tick.
//!
//! [`advance_to`]: NodeState::advance_to

use gcs_net::{EdgeParams, NodeId};
use gcs_sim::SimTime;

use crate::edge_state::EdgeSlot;
use crate::params::Params;
use crate::triggers::Mode;

/// Cached per-edge derived quantities.
#[derive(Debug, Clone, Copy)]
pub struct EdgeInfo {
    /// Raw model parameters of the edge.
    pub params: EdgeParams,
    /// The uncertainty `ε` advertised by the configured estimate layer.
    pub epsilon: f64,
    /// Edge weight `κ` (eq. 9).
    pub kappa: f64,
    /// Slow-trigger slack `δ`.
    pub delta: f64,
}

/// Everything a node tracks about one discovered neighbour, plus the cached
/// per-edge derived constants (`ε`, `κ`, `δ`, delays) of the connecting
/// edge — so the per-tick mode evaluation never touches the engine's
/// edge-info map.
#[derive(Debug, Clone)]
pub struct NeighborEntry {
    /// The neighbour's id.
    pub id: NodeId,
    /// Cached `EdgeInfo` of the undirected edge to this neighbour.
    pub info: EdgeInfo,
    /// Discovery/handshake/estimate state of this directed slot.
    pub slot: EdgeSlot,
}

/// A node's discovered-neighbour table (`N⁰ᵤ`): a flat vector sorted by
/// neighbour id. Degrees are small and topology changes are rare compared
/// to trigger evaluations, so a sorted slab beats a tree on every hot
/// operation (linear scans for views, binary search for lookups) while
/// iterating in the same deterministic ascending order.
#[derive(Debug, Clone, Default)]
pub struct NeighborTable {
    entries: Vec<NeighborEntry>,
}

impl NeighborTable {
    /// Number of discovered neighbours.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no neighbour has been discovered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn position(&self, v: NodeId) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&v, |e| e.id)
    }

    /// Whether `v` has been discovered.
    #[must_use]
    pub fn contains(&self, v: NodeId) -> bool {
        self.position(v).is_ok()
    }

    /// The slot for neighbour `v`, if discovered.
    #[must_use]
    pub fn get(&self, v: NodeId) -> Option<&EdgeSlot> {
        self.position(v).ok().map(|i| &self.entries[i].slot)
    }

    /// Mutable access to the slot for neighbour `v`.
    pub fn get_mut(&mut self, v: NodeId) -> Option<&mut EdgeSlot> {
        match self.position(v) {
            Ok(i) => Some(&mut self.entries[i].slot),
            Err(_) => None,
        }
    }

    /// The full entry (slot + cached edge info) for neighbour `v`.
    #[must_use]
    pub fn entry(&self, v: NodeId) -> Option<&NeighborEntry> {
        self.position(v).ok().map(|i| &self.entries[i])
    }

    /// Mutable access to the full entry for neighbour `v` (one search for
    /// callers that read the cached info *and* write the slot).
    pub fn entry_mut(&mut self, v: NodeId) -> Option<&mut NeighborEntry> {
        match self.position(v) {
            Ok(i) => Some(&mut self.entries[i]),
            Err(_) => None,
        }
    }

    /// Inserts (or replaces) the slot for `v`, keeping the table sorted.
    pub fn insert(&mut self, v: NodeId, info: EdgeInfo, slot: EdgeSlot) {
        match self.position(v) {
            Ok(i) => self.entries[i] = NeighborEntry { id: v, info, slot },
            Err(i) => self.entries.insert(i, NeighborEntry { id: v, info, slot }),
        }
    }

    /// Removes the slot for `v`; returns whether it existed.
    pub fn remove(&mut self, v: NodeId) -> bool {
        match self.position(v) {
            Ok(i) => {
                self.entries.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Iterates over all entries in ascending neighbour order.
    pub fn iter(&self) -> std::slice::Iter<'_, NeighborEntry> {
        self.entries.iter()
    }

    /// Iterates over the discovered neighbour ids in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|e| e.id)
    }
}

impl<'a> IntoIterator for &'a NeighborTable {
    type Item = &'a NeighborEntry;
    type IntoIter = std::slice::Iter<'a, NeighborEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// The full state of one node.
#[derive(Debug, Clone)]
pub struct NodeState {
    id: NodeId,
    mode: Mode,
    hw_rate: f64,
    /// Instant of the last discontinuity; all clocks are linear since then.
    anchor: SimTime,
    hw_at_anchor: f64,
    logical_at_anchor: f64,
    max_est_at_anchor: f64,
    min_lb_at_anchor: f64,
    max_ub_at_anchor: f64,
    fast_at_anchor: f64,
    /// Last queried instant; the `cur_*` caches hold the values there.
    now: SimTime,
    cur_hw: f64,
    cur_logical: f64,
    cur_max_est: f64,
    cur_min_lb: f64,
    cur_max_ub: f64,
    cur_fast: f64,
    /// Scripted estimate corruption (chaos experiments): when set, every
    /// neighbour estimate this node reads is pushed by `bias · ε` and
    /// clamped back into the advertised `±ε` envelope, so inequality (1)
    /// still holds. `None` until a fault script installs one.
    scripted_bias: Option<f64>,
    /// Discovered neighbours (`N⁰ᵤ`) with their handshake/estimate state.
    pub slots: NeighborTable,
}

impl NodeState {
    /// A node at time 0 with all clocks zero, in slow mode.
    #[must_use]
    pub fn new(id: NodeId, hw_rate: f64) -> Self {
        assert!(
            hw_rate.is_finite() && hw_rate > 0.0,
            "clock rate must be finite and positive, got {hw_rate}"
        );
        NodeState {
            id,
            mode: Mode::Slow,
            hw_rate,
            anchor: SimTime::ZERO,
            hw_at_anchor: 0.0,
            logical_at_anchor: 0.0,
            max_est_at_anchor: 0.0,
            min_lb_at_anchor: 0.0,
            max_ub_at_anchor: 0.0,
            fast_at_anchor: 0.0,
            now: SimTime::ZERO,
            cur_hw: 0.0,
            cur_logical: 0.0,
            cur_max_est: 0.0,
            cur_min_lb: 0.0,
            cur_max_ub: 0.0,
            cur_fast: 0.0,
            scripted_bias: None,
            slots: NeighborTable::default(),
        }
    }

    /// Node id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Logical clock `L_u` (as of the last advance).
    #[must_use]
    pub fn logical(&self) -> f64 {
        self.cur_logical
    }

    /// Hardware clock `H_u`.
    #[must_use]
    pub fn hardware(&self) -> f64 {
        self.cur_hw
    }

    /// Current hardware rate `h_u`.
    #[must_use]
    pub fn hw_rate(&self) -> f64 {
        self.hw_rate
    }

    /// Current mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Max estimate `M_u` (Condition 4.3).
    #[must_use]
    pub fn max_estimate(&self) -> f64 {
        self.cur_max_est
    }

    /// Lower bound `W_u` on the minimum logical clock in the network.
    #[must_use]
    pub fn min_lower_bound(&self) -> f64 {
        self.cur_min_lb
    }

    /// Upper bound `P_u` on the maximum logical clock in the network.
    #[must_use]
    pub fn max_upper_bound(&self) -> f64 {
        self.cur_max_ub
    }

    /// The node-local global-skew estimate `G̃_u(t) = P_u − W_u` (§7).
    #[must_use]
    pub fn g_estimate(&self) -> f64 {
        (self.cur_max_ub - self.cur_min_lb).max(0.0)
    }

    /// Total real seconds this node has spent in fast mode — a proxy for
    /// the extra energy/rate budget the algorithm consumed.
    #[must_use]
    pub fn fast_secs(&self) -> f64 {
        self.cur_fast
    }

    /// Time of the last advance.
    #[must_use]
    pub fn last_update(&self) -> SimTime {
        self.now
    }

    /// The logical clock value at `t`, computed from the anchor without
    /// mutating anything — bit-identical to what [`advance_to`] +
    /// [`logical`] would report, letting read-only observers (the view
    /// builder reading *neighbour* clocks) avoid dirtying node state.
    ///
    /// [`advance_to`]: NodeState::advance_to
    /// [`logical`]: NodeState::logical
    #[must_use]
    pub fn logical_at(&self, t: SimTime, params: &Params) -> f64 {
        if t == self.now {
            return self.cur_logical;
        }
        let dt = t.as_secs() - self.anchor.as_secs();
        let h_delta = self.hw_rate * dt;
        self.logical_at_anchor + self.mode.multiplier(params.mu()) * h_delta
    }

    /// Refreshes the cached clock values at `t` by evaluating each
    /// piecewise-linear segment in closed form from the anchor. Pure with
    /// respect to future values: extra intermediate calls change nothing
    /// (see the module docs), so advancement can be as lazy or as eager as
    /// the caller likes.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the last advance.
    pub fn advance_to(&mut self, t: SimTime, params: &Params) {
        if t == self.now {
            return;
        }
        assert!(
            t >= self.now,
            "cannot advance {} backwards from {:?} to {t:?}",
            self.id,
            self.now
        );
        let dt = t.as_secs() - self.anchor.as_secs();
        let h_delta = self.hw_rate * dt;
        self.cur_hw = self.hw_at_anchor + h_delta;
        self.cur_logical = self.logical_at_anchor + self.mode.multiplier(params.mu()) * h_delta;

        let rho = params.rho();
        let conservative = (1.0 - rho) / (1.0 + rho);
        // (4): M_u >= L_u; combined with the conservative rate this yields
        // exactly the two-case update rule of Condition 4.3.
        self.cur_max_est = (self.max_est_at_anchor + conservative * h_delta).max(self.cur_logical);
        // W_u lower-bounds the network minimum, which is <= L_u (the min is
        // mathematically a no-op — W never outruns L — but keeps the
        // invariant robust).
        self.cur_min_lb = (self.min_lb_at_anchor + conservative * h_delta).min(self.cur_logical);
        // The network maximum advances at most at rate 1+rho: a node holding
        // the maximum is in slow mode (Theorem 5.6's argument holds for all
        // policies built on the max-estimate rule), so growing P at
        // (1+rho)/(1-rho) * h >= 1+rho keeps it an upper bound. Brief
        // fast-mode episodes of a *newly* maximal node (bounded by one
        // trigger-evaluation tick) are absorbed by the invariant tolerance.
        let aggressive = (1.0 + rho) / (1.0 - rho);
        self.cur_max_ub = (self.max_ub_at_anchor + aggressive * h_delta).max(self.cur_max_est);

        self.cur_fast = self.fast_at_anchor + if self.mode == Mode::Fast { dt } else { 0.0 };
        self.now = t;
    }

    /// Moves the anchor to the current instant, materializing the cached
    /// values. Every discontinuity (rate change, mode switch, merge,
    /// corruption) must re-anchor first; the caller must have advanced the
    /// node to the discontinuity's time.
    fn reanchor(&mut self) {
        self.anchor = self.now;
        self.hw_at_anchor = self.cur_hw;
        self.logical_at_anchor = self.cur_logical;
        self.max_est_at_anchor = self.cur_max_est;
        self.min_lb_at_anchor = self.cur_min_lb;
        self.max_ub_at_anchor = self.cur_max_ub;
        self.fast_at_anchor = self.cur_fast;
    }

    /// Re-applies the invariant clamps to the anchor values (after a merge
    /// or corruption) and refreshes the caches (anchor time == now here).
    fn clamp_and_commit(&mut self) {
        if self.max_est_at_anchor < self.logical_at_anchor {
            self.max_est_at_anchor = self.logical_at_anchor;
        }
        if self.min_lb_at_anchor > self.logical_at_anchor {
            self.min_lb_at_anchor = self.logical_at_anchor;
        }
        if self.max_ub_at_anchor < self.max_est_at_anchor {
            self.max_ub_at_anchor = self.max_est_at_anchor;
        }
        self.cur_hw = self.hw_at_anchor;
        self.cur_logical = self.logical_at_anchor;
        self.cur_max_est = self.max_est_at_anchor;
        self.cur_min_lb = self.min_lb_at_anchor;
        self.cur_max_ub = self.max_ub_at_anchor;
        self.cur_fast = self.fast_at_anchor;
    }

    /// Changes the hardware rate (caller must advance to the change time
    /// first).
    pub fn set_hw_rate(&mut self, rate: f64) {
        assert!(
            rate.is_finite() && rate > 0.0,
            "clock rate must be finite and positive, got {rate}"
        );
        self.reanchor();
        self.hw_rate = rate;
    }

    /// Switches mode (caller must advance to the switch time first).
    /// Setting the current mode again is a no-op and does not re-anchor.
    pub fn set_mode(&mut self, mode: Mode) {
        if mode != self.mode {
            self.reanchor();
            self.mode = mode;
        }
    }

    /// Merges a received max estimate (already credited for minimum
    /// transit). Returns whether `M_u` actually moved — the engine uses
    /// this to keep its dirty-node bookkeeping precise.
    pub fn merge_max_estimate(&mut self, candidate: f64) -> bool {
        self.reanchor();
        let changed = candidate > self.max_est_at_anchor;
        if changed {
            self.max_est_at_anchor = candidate;
        }
        self.clamp_and_commit();
        changed
    }

    /// Merges a full flood `(M, W, P)` triple in one re-anchor — the
    /// per-delivery hot path. Equivalent to calling the three single-bound
    /// merges in sequence (the interleaved clamps commute; see the unit
    /// test). Returns whether `M_u` moved.
    pub fn merge_flood_bounds(&mut self, max_est: f64, min_lb: f64, max_ub: f64) -> bool {
        // All three bounds already dominated: nothing changes, so skip the
        // re-anchor (the cached values equal the anchored segment at `now`,
        // making the comparison against them exact).
        if max_est <= self.cur_max_est && min_lb <= self.cur_min_lb && max_ub >= self.cur_max_ub {
            return false;
        }
        self.reanchor();
        let changed = max_est > self.max_est_at_anchor;
        if changed {
            self.max_est_at_anchor = max_est;
        }
        if min_lb > self.min_lb_at_anchor {
            self.min_lb_at_anchor = min_lb;
        }
        if max_ub < self.max_ub_at_anchor {
            self.max_ub_at_anchor = max_ub;
        }
        self.clamp_and_commit();
        changed
    }

    /// Merges a received minimum-clock lower bound.
    pub fn merge_min_lower_bound(&mut self, candidate: f64) {
        self.reanchor();
        if candidate > self.min_lb_at_anchor {
            self.min_lb_at_anchor = candidate;
        }
        self.clamp_and_commit();
    }

    /// Merges a received maximum-clock upper bound (already padded for
    /// maximal in-transit growth).
    pub fn merge_max_upper_bound(&mut self, candidate: f64) {
        self.reanchor();
        if candidate < self.max_ub_at_anchor {
            self.max_ub_at_anchor = candidate;
        }
        self.clamp_and_commit();
    }

    /// Overwrites the logical clock (fault injection / corruption
    /// experiments), keeping the derived bounds consistent.
    pub fn corrupt_logical(&mut self, value: f64) {
        assert!(value.is_finite(), "clock value must be finite");
        self.reanchor();
        self.logical_at_anchor = value;
        self.clamp_and_commit();
    }

    /// The scripted estimate corruption currently installed, if any
    /// (in units of the per-edge `ε`, always within `[-1, 1]`).
    #[must_use]
    pub fn scripted_bias(&self) -> Option<f64> {
        self.scripted_bias
    }

    /// Installs a scripted estimate corruption (the engine's
    /// `Simulation::inject_estimate_bias` routes here).
    ///
    /// # Panics
    ///
    /// Panics unless `bias` is finite and within `[-1, 1]` — the scripted
    /// adversary may pick any direction, but never more error than the
    /// estimate layer advertises.
    pub fn corrupt_estimates(&mut self, bias: f64) {
        assert!(
            bias.is_finite() && (-1.0..=1.0).contains(&bias),
            "estimate bias must be within [-1, 1], got {bias}"
        );
        self.scripted_bias = Some(bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::builder().rho(0.01).mu(0.1).build().unwrap()
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn slow_mode_tracks_hardware() {
        let p = params();
        let mut n = NodeState::new(NodeId(0), 1.01);
        n.advance_to(t(10.0), &p);
        assert!((n.logical() - 10.1).abs() < 1e-12);
        assert!((n.hardware() - 10.1).abs() < 1e-12);
    }

    #[test]
    fn fast_mode_multiplies_rate() {
        let p = params();
        let mut n = NodeState::new(NodeId(0), 1.0);
        n.set_mode(Mode::Fast);
        n.advance_to(t(10.0), &p);
        assert!((n.logical() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn max_estimate_tracks_logical_when_equal() {
        // Node alone at the maximum: M must advance with L (Condition 4.3).
        let p = params();
        let mut n = NodeState::new(NodeId(0), 1.0);
        n.advance_to(t(100.0), &p);
        assert!((n.max_estimate() - n.logical()).abs() < 1e-12);
    }

    #[test]
    fn max_estimate_rate_is_conservative_when_ahead() {
        let p = params();
        let mut n = NodeState::new(NodeId(0), 1.0);
        assert!(n.merge_max_estimate(1000.0));
        n.advance_to(t(10.0), &p);
        let expected = 1000.0 + (0.99 / 1.01) * 10.0;
        assert!((n.max_estimate() - expected).abs() < 1e-9);
        assert!(n.max_estimate() >= n.logical());
    }

    #[test]
    fn bracket_brackets_in_isolation() {
        let p = params();
        let mut n = NodeState::new(NodeId(0), 1.0);
        for k in 1..=50 {
            n.advance_to(t(f64::from(k)), &p);
            assert!(n.min_lower_bound() <= n.logical() + 1e-12);
            assert!(n.max_upper_bound() >= n.max_estimate() - 1e-12);
            assert!(n.g_estimate() >= 0.0);
        }
        // The bracket widens over time when no floods arrive.
        assert!(n.g_estimate() > 0.0);
    }

    #[test]
    fn merges_move_bounds_monotonically() {
        let p = params();
        let mut n = NodeState::new(NodeId(0), 1.0);
        n.advance_to(t(1.0), &p);
        let g0 = n.g_estimate();
        n.merge_min_lower_bound(0.9); // tighter floor
        n.merge_max_upper_bound(1.5); // tighter ceiling
        assert!(n.g_estimate() <= g0);
        // Merging weaker information changes nothing.
        let g1 = n.g_estimate();
        n.merge_min_lower_bound(-5.0);
        n.merge_max_upper_bound(100.0);
        assert_eq!(n.g_estimate(), g1);
    }

    #[test]
    fn merge_max_estimate_respects_clamp() {
        let p = params();
        let mut n = NodeState::new(NodeId(0), 1.0);
        n.advance_to(t(5.0), &p);
        assert!(!n.merge_max_estimate(2.0)); // below L: clamp keeps M = L
        assert!((n.max_estimate() - n.logical()).abs() < 1e-12);
        assert!(n.merge_max_estimate(7.0));
        assert!((n.max_estimate() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn corrupt_logical_keeps_invariants() {
        let p = params();
        let mut n = NodeState::new(NodeId(0), 1.0);
        n.advance_to(t(5.0), &p);
        n.corrupt_logical(50.0);
        assert!(n.max_estimate() >= 50.0);
        n.corrupt_logical(-3.0);
        assert!(n.min_lower_bound() <= -3.0);
    }

    #[test]
    fn advance_is_idempotent_at_same_time() {
        let p = params();
        let mut n = NodeState::new(NodeId(0), 1.0);
        n.advance_to(t(3.0), &p);
        let l = n.logical();
        n.advance_to(t(3.0), &p);
        assert_eq!(n.logical(), l);
    }

    #[test]
    fn advancement_is_query_invariant_bitwise() {
        // The same trajectory of discontinuities, queried on two different
        // grids, yields bit-identical values at shared instants — the
        // property the engine's lazy advancement rests on.
        let p = params();
        let mut lazy = NodeState::new(NodeId(0), 1.003);
        let mut eager = NodeState::new(NodeId(0), 1.003);
        let script = |n: &mut NodeState, chatty: bool| {
            if chatty {
                n.advance_to(t(0.25), &p);
                n.advance_to(t(0.7), &p);
            }
            n.advance_to(t(1.0), &p);
            n.set_mode(Mode::Fast);
            if chatty {
                for k in 0..40 {
                    n.advance_to(t(1.0 + 0.05 * f64::from(k)), &p);
                }
            }
            n.advance_to(t(3.0), &p);
            n.merge_max_estimate(5.0);
            if chatty {
                n.advance_to(t(3.5), &p);
            }
            n.advance_to(t(4.0), &p);
            n.set_hw_rate(0.997);
            n.advance_to(t(10.0), &p);
        };
        script(&mut lazy, false);
        script(&mut eager, true);
        assert_eq!(lazy.logical().to_bits(), eager.logical().to_bits());
        assert_eq!(lazy.hardware().to_bits(), eager.hardware().to_bits());
        assert_eq!(
            lazy.max_estimate().to_bits(),
            eager.max_estimate().to_bits()
        );
        assert_eq!(
            lazy.min_lower_bound().to_bits(),
            eager.min_lower_bound().to_bits()
        );
        assert_eq!(
            lazy.max_upper_bound().to_bits(),
            eager.max_upper_bound().to_bits()
        );
        assert_eq!(lazy.fast_secs().to_bits(), eager.fast_secs().to_bits());
    }

    #[test]
    fn merge_flood_bounds_matches_sequential_merges() {
        let p = params();
        for (cm, cw, cp) in [
            (5.0, 0.5, 9.0),
            (0.1, 3.0, 0.2),
            (2.0, 2.0, 2.0),
            (-1.0, -1.0, 100.0),
        ] {
            let mut a = NodeState::new(NodeId(0), 1.0);
            let mut b = NodeState::new(NodeId(0), 1.0);
            for n in [&mut a, &mut b] {
                n.advance_to(t(1.0), &p);
                n.merge_max_estimate(1.5);
                n.advance_to(t(2.0), &p);
            }
            let fused = a.merge_flood_bounds(cm, cw, cp);
            let seq = b.merge_max_estimate(cm);
            b.merge_min_lower_bound(cw);
            b.merge_max_upper_bound(cp);
            assert_eq!(fused, seq);
            a.advance_to(t(5.0), &p);
            b.advance_to(t(5.0), &p);
            assert_eq!(a.max_estimate().to_bits(), b.max_estimate().to_bits());
            assert_eq!(a.min_lower_bound().to_bits(), b.min_lower_bound().to_bits());
            assert_eq!(a.max_upper_bound().to_bits(), b.max_upper_bound().to_bits());
        }
    }

    #[test]
    fn neighbor_table_stays_sorted_and_searchable() {
        use crate::edge_state::EdgeSlot;
        use gcs_net::EdgeParams;
        let info = EdgeInfo {
            params: EdgeParams::default(),
            epsilon: 0.002,
            kappa: 0.0135,
            delta: 0.001,
        };
        let mut table = NeighborTable::default();
        for v in [5u32, 1, 9, 3] {
            table.insert(NodeId(v), info, EdgeSlot::initial());
        }
        assert_eq!(table.len(), 4);
        let ids: Vec<NodeId> = table.ids().collect();
        assert_eq!(ids, vec![NodeId(1), NodeId(3), NodeId(5), NodeId(9)]);
        assert!(table.contains(NodeId(3)));
        assert!(table.get(NodeId(9)).is_some());
        assert!(table.get(NodeId(2)).is_none());
        assert!(table.entry(NodeId(5)).is_some());
        assert!(table.remove(NodeId(3)));
        assert!(!table.remove(NodeId(3)));
        assert_eq!(table.len(), 3);
        assert!(table.get_mut(NodeId(1)).is_some());
        // Re-inserting an existing id replaces in place.
        table.insert(NodeId(1), info, EdgeSlot::discovered(t(1.0), 2.0, 7));
        assert_eq!(table.len(), 3);
        assert_eq!(table.get(NodeId(1)).unwrap().generation, 7);
    }
}
