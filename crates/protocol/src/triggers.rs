//! The fast / slow mode triggers (Definitions 4.5–4.7) and the mode
//! selection logic of Listing 3, plus the [`ModePolicy`] abstraction that
//! lets baseline algorithms reuse the same node substrate.
//!
//! The triggers quantify over integer levels `s ∈ ℕ`. As discussed in
//! DESIGN.md, `s = 0` must be excluded (otherwise a node holding the global
//! maximum could be forced into fast mode, contradicting Theorem 5.6's
//! proof), so the scan ranges over `s ≥ 1`. The scan terminates at the first
//! level at which no neighbour can satisfy the existential clause anymore —
//! skews are bounded by the global skew, so this is a small number.

use std::fmt;

use crate::edge_state::Level;

/// The two logical clock rates of the algorithm (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Rate `h_u(t)` (multiplier 1).
    #[default]
    Slow,
    /// Rate `(1+µ) · h_u(t)`.
    Fast,
}

impl Mode {
    /// The logical-rate multiplier (`1` or `1 + µ`).
    #[must_use]
    pub fn multiplier(self, mu: f64) -> f64 {
        match self {
            Mode::Slow => 1.0,
            Mode::Fast => 1.0 + mu,
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::Slow => f.write_str("slow"),
            Mode::Fast => f.write_str("fast"),
        }
    }
}

/// What a node can see about one neighbour when deciding its mode.
///
/// All quantities are in logical-clock units except `tau` (real seconds).
#[derive(Debug, Clone, Copy)]
pub struct NeighborView {
    /// The estimate `L̃ᵥᵤ(t)`, if one is available. Estimates are always
    /// available for neighbours at level ≥ 1 (the handshake takes longer
    /// than the first flood); a `None` blocks the universal clauses
    /// conservatively.
    pub estimate: Option<f64>,
    /// Edge weight `κ` (eq. 9).
    pub kappa: f64,
    /// Estimate uncertainty `ε`.
    pub epsilon: f64,
    /// Detection delay `τ` (seconds).
    pub tau: f64,
    /// Slow-trigger slack `δ`.
    pub delta: f64,
    /// Unlocked level: the neighbour is in `N^sᵤ` for `1 ≤ s ≤ level`.
    pub level: Level,
}

/// Everything a [`ModePolicy`] may consult.
#[derive(Debug, Clone, Copy)]
pub struct NodeView<'a> {
    /// Own logical clock `L_u(t)`.
    pub logical: f64,
    /// Max estimate `M_u(t)` (Condition 4.3).
    pub max_estimate: f64,
    /// Current mode (policies may keep it in the hysteresis region).
    pub current_mode: Mode,
    /// The `ι` separation constant (Definition 4.4).
    pub iota: f64,
    /// Fast-mode boost `µ`.
    pub mu: f64,
    /// Drift bound `ρ`.
    pub rho: f64,
    /// All discovered neighbours (the paper's `N⁰ᵤ`), in neighbour order.
    pub neighbors: &'a [NeighborView],
}

impl NodeView<'_> {
    /// Upper bound on the level scan: beyond this `s`, no neighbour can
    /// satisfy either existential clause.
    fn scan_limit(&self, max_levels: u32) -> u32 {
        let mut hi = 0u32;
        for n in self.neighbors {
            let Some(est) = n.estimate else { continue };
            let diff = (est - self.logical).abs() + n.epsilon + n.delta + n.kappa;
            let s = (diff / n.kappa).ceil();
            if s.is_finite() && s > 0.0 {
                hi = hi.max(s as u32);
            }
        }
        hi.min(max_levels)
    }
}

/// The fast-mode trigger of Definition 4.5: there is a level `s ≥ 1` such
/// that some `w ∈ N^sᵤ` satisfies `L̃ʷᵤ − L_u ≥ s·κ − ε` while every
/// `v ∈ N^sᵤ` satisfies `L_u − L̃ᵛᵤ ≤ s·κ + 2µτ + ε`.
#[must_use]
pub fn fast_trigger(view: &NodeView<'_>, max_levels: u32) -> bool {
    let limit = view.scan_limit(max_levels);
    for s in 1..=limit {
        let mut exists_ahead = false;
        let mut all_within = true;
        for n in view.neighbors {
            if !n.level.includes(s) {
                continue;
            }
            let sf = f64::from(s);
            match n.estimate {
                Some(est) => {
                    if est - view.logical >= sf * n.kappa - n.epsilon {
                        exists_ahead = true;
                    }
                    if view.logical - est > sf * n.kappa + 2.0 * view.mu * n.tau + n.epsilon {
                        all_within = false;
                        break;
                    }
                }
                // Unknown neighbour state blocks the universal clause.
                None => {
                    all_within = false;
                    break;
                }
            }
        }
        if exists_ahead && all_within {
            return true;
        }
    }
    false
}

/// The slow-mode trigger of Definition 4.6: there is a level `s ≥ 1` such
/// that some `w ∈ N^sᵤ` satisfies `L_u − L̃ʷᵤ ≥ (s+½)κ − δ − ε` while every
/// `v ∈ N^sᵤ` satisfies `L̃ᵛᵤ − L_u ≤ (s+½)κ + δ + ε + µ(1+ρ)τ`.
#[must_use]
pub fn slow_trigger(view: &NodeView<'_>, max_levels: u32) -> bool {
    let limit = view.scan_limit(max_levels);
    for s in 1..=limit {
        let mut exists_behind = false;
        let mut all_within = true;
        for n in view.neighbors {
            if !n.level.includes(s) {
                continue;
            }
            let sh = f64::from(s) + 0.5;
            match n.estimate {
                Some(est) => {
                    if view.logical - est >= sh * n.kappa - n.delta - n.epsilon {
                        exists_behind = true;
                    }
                    if est - view.logical
                        > sh * n.kappa + n.delta + n.epsilon + view.mu * (1.0 + view.rho) * n.tau
                    {
                        all_within = false;
                        break;
                    }
                }
                None => {
                    all_within = false;
                    break;
                }
            }
        }
        if exists_behind && all_within {
            return true;
        }
    }
    false
}

/// A decision-stability certificate: how far the decision inputs can move
/// before the mode just decided could possibly change.
///
/// All margins are in logical-clock units. The engine converts them into a
/// real-time horizon using the worst-case relative drift rates and skips
/// re-evaluating the node until the horizon expires or an event touches its
/// inputs — the decisions stay *bit-identical* to a full per-tick pass
/// because a node is only skipped while no compared quantity can have
/// crossed a threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StabilityCert {
    /// Minimum distance of any `L̃ᵥᵤ − L_u` difference to any trigger
    /// threshold (over both triggers, all clauses, all levels, all
    /// neighbours). `INFINITY` when no neighbour constrains the decision.
    pub estimate_margin: f64,
    /// How far `M_u − L_u` may *drift* (it only shrinks between merges)
    /// before the decision could change. `INFINITY` when the decision does
    /// not depend on it: a trigger fired, or the decision is `Slow`, which
    /// shrinking `m` can only re-confirm (via the `L = M` branch).
    pub m_margin: f64,
    /// Whether a discontinuous *upward* jump of `M_u` (a flood merge) can
    /// change the decision: true exactly when the decision was `Slow` with
    /// neither trigger firing — a merge lifting `M_u − L_u` to `≥ ι` then
    /// flips the node fast. The engine checks the lifted value against `ι`
    /// at each merge; jumps below `ι` land in the hysteresis band and keep
    /// the slow decision.
    pub m_jump_sensitive: bool,
}

/// A rule choosing a node's mode each evaluation step.
///
/// `A_OPT` implements Listing 3; the baseline crates provide alternatives
/// over the same [`NodeView`].
pub trait ModePolicy: fmt::Debug + Send {
    /// Decides the node's mode for the current instant.
    fn decide(&self, view: &NodeView<'_>) -> Mode;

    /// Short, stable policy name for reports.
    fn name(&self) -> &'static str;

    /// An optional [`StabilityCert`] for the decision just made. Policies
    /// that return `None` (the default) are re-evaluated every tick;
    /// policies that can bound their thresholds let the engine skip
    /// re-evaluations without changing any decision.
    fn stability(&self, _view: &NodeView<'_>, _decided: Mode) -> Option<StabilityCert> {
        None
    }

    /// Decision and certificate in one call — the engine's tick path.
    /// The default composes [`decide`](ModePolicy::decide) and
    /// [`stability`](ModePolicy::stability); policies whose two answers
    /// share work (like `A_OPT`'s trigger scans) override it.
    fn decide_and_certify(&self, view: &NodeView<'_>) -> (Mode, Option<StabilityCert>) {
        let mode = self.decide(view);
        let cert = self.stability(view, mode);
        (mode, cert)
    }
}

/// The paper's mode logic (Listing 3):
///
/// 1. slow trigger ⇒ slow,
/// 2. else fast trigger ⇒ fast,
/// 3. else `L_u = M_u` ⇒ slow (slow max-estimate trigger),
/// 4. else `L_u ≤ M_u − ι` ⇒ fast (fast max-estimate trigger),
/// 5. else keep the current mode (the free region; footnote 6).
#[derive(Debug, Clone, Copy, Default)]
pub struct AoptPolicy {
    max_levels: u32,
}

impl AoptPolicy {
    /// Creates the policy with the given level-scan cap.
    #[must_use]
    pub fn new(max_levels: u32) -> Self {
        AoptPolicy { max_levels }
    }
}

impl AoptPolicy {
    fn cap(&self) -> u32 {
        if self.max_levels == 0 {
            64
        } else {
            self.max_levels
        }
    }
}

impl ModePolicy for AoptPolicy {
    fn decide(&self, view: &NodeView<'_>) -> Mode {
        let cap = self.cap();
        if slow_trigger(view, cap) {
            Mode::Slow
        } else if fast_trigger(view, cap) {
            Mode::Fast
        } else if view.logical >= view.max_estimate {
            // M_u is clamped to be >= L_u, so >= means equality.
            Mode::Slow
        } else if view.logical <= view.max_estimate - view.iota {
            Mode::Fast
        } else {
            view.current_mode
        }
    }

    fn name(&self) -> &'static str {
        "aopt"
    }

    fn stability(&self, view: &NodeView<'_>, decided: Mode) -> Option<StabilityCert> {
        let cap = self.cap();
        let triggered = slow_trigger(view, cap) || fast_trigger(view, cap);
        Some(self.certify(view, triggered, decided))
    }

    /// Decision and certificate sharing one pair of trigger scans — the
    /// tick-path entry point (the default would scan the triggers twice).
    fn decide_and_certify(&self, view: &NodeView<'_>) -> (Mode, Option<StabilityCert>) {
        let cap = self.cap();
        let st = slow_trigger(view, cap);
        let ft = !st && fast_trigger(view, cap);
        let mode = if st {
            Mode::Slow
        } else if ft {
            Mode::Fast
        } else if view.logical >= view.max_estimate {
            Mode::Slow
        } else if view.logical <= view.max_estimate - view.iota {
            Mode::Fast
        } else {
            view.current_mode
        };
        (mode, Some(self.certify(view, st || ft, mode)))
    }
}

impl AoptPolicy {
    /// Listing 3's decision is a pure function of (a) the comparison of
    /// each `d = L̃ᵥᵤ − L_u` against the four per-level threshold families
    /// of Definitions 4.5/4.6, (b) the comparison of `m = M_u − L_u`
    /// against `0` and `ι`, (c) neighbour level membership, and (d) the
    /// current mode. (c) and (d) only change at events or level unlocks
    /// (the engine bounds those separately); this certificate bounds (a)
    /// and (b). Each threshold family is an arithmetic progression with
    /// step `κ`, so the distance to the nearest threshold over all levels
    /// `1..=cap` is a constant-time nearest-integer computation.
    fn certify(&self, view: &NodeView<'_>, triggered: bool, decided: Mode) -> StabilityCert {
        let cap = f64::from(self.cap());
        let mut estimate_margin = f64::INFINITY;
        for n in view.neighbors {
            // A neighbour without an estimate blocks the universal clauses
            // until a delivery provides one — an event, not a drift.
            let Some(est) = n.estimate else { continue };
            let d = est - view.logical;
            let inv_kappa = 1.0 / n.kappa;
            // FC exists:   d        >= s*k - eps
            let y1 = (d + n.epsilon) * inv_kappa;
            // FC forall:  -d        >  s*k + 2*mu*tau + eps
            let y2 = (-d - (2.0 * view.mu * n.tau + n.epsilon)) * inv_kappa;
            // SC exists:  -d        >= (s+1/2)*k - delta - eps
            let y3 = (-d + n.delta + n.epsilon) * inv_kappa - 0.5;
            // SC forall:   d        >  (s+1/2)*k + delta + eps + mu(1+rho)tau
            let y4 =
                (d - (n.delta + n.epsilon + view.mu * (1.0 + view.rho) * n.tau)) * inv_kappa - 0.5;
            for y in [y1, y2, y3, y4] {
                let nearest = y.round().clamp(1.0, cap);
                estimate_margin = estimate_margin.min((y - nearest).abs() * n.kappa);
            }
        }
        // Within `estimate_margin`, both trigger outcomes are pinned, so
        // the m-dependence of the decision can be analysed per branch.
        let (m_margin, m_jump_sensitive) = if triggered {
            // A trigger decided; m is not consulted at all.
            (f64::INFINITY, false)
        } else if decided == Mode::Fast {
            // Fast via the max-estimate branch or hysteresis: stays fast
            // while m > 0 (the band only keeps it fast), flips slow
            // exactly when the clamp closes m to 0. Upward jumps only
            // re-confirm fast.
            let m = view.max_estimate - view.logical;
            (m.max(0.0), false)
        } else {
            // Slow with no trigger: drift only shrinks m, which keeps the
            // slow decision (via L = M at the bottom); only an upward
            // merge jump reaching iota flips it.
            (f64::INFINITY, true)
        };
        StabilityCert {
            estimate_margin,
            m_margin,
            m_jump_sensitive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn neighbor(est: f64, level: Level) -> NeighborView {
        NeighborView {
            estimate: Some(est),
            kappa: 1.0,
            epsilon: 0.05,
            tau: 0.01,
            delta: 0.2,
            level,
        }
    }

    fn view<'a>(logical: f64, m: f64, neighbors: &'a [NeighborView]) -> NodeView<'a> {
        NodeView {
            logical,
            max_estimate: m,
            current_mode: Mode::Slow,
            iota: 0.01,
            mu: 0.1,
            rho: 0.01,
            neighbors,
        }
    }

    #[test]
    fn mode_multiplier() {
        assert_eq!(Mode::Slow.multiplier(0.1), 1.0);
        assert!((Mode::Fast.multiplier(0.1) - 1.1).abs() < 1e-15);
        assert_eq!(Mode::Slow.to_string(), "slow");
    }

    #[test]
    fn fast_trigger_fires_when_neighbor_far_ahead() {
        // Neighbour ahead by 2.0 >= 1*kappa - eps; nobody behind.
        let ns = [neighbor(12.0, Level::Infinite)];
        assert!(fast_trigger(&view(10.0, 12.0, &ns), 64));
    }

    #[test]
    fn fast_trigger_blocked_by_laggard() {
        // One neighbour ahead, but another is far behind: must not race away.
        let ns = [
            neighbor(12.0, Level::Infinite),
            neighbor(5.0, Level::Infinite),
        ];
        assert!(!fast_trigger(&view(10.0, 12.0, &ns), 64));
    }

    #[test]
    fn fast_trigger_uses_higher_level_when_laggard_is_shallow() {
        // The laggard is only in N^1; at level 3 the leader alone counts.
        let ns = [
            neighbor(14.0, Level::Infinite), // ahead by 4 >= 3*kappa - eps
            neighbor(8.0, Level::Finite(1)), // behind by 2, blocks level 1..=1
        ];
        assert!(fast_trigger(&view(10.0, 14.0, &ns), 64));
    }

    #[test]
    fn slow_trigger_fires_when_neighbor_far_behind() {
        let ns = [neighbor(8.0, Level::Infinite)];
        assert!(slow_trigger(&view(10.0, 10.0, &ns), 64));
    }

    #[test]
    fn slow_trigger_blocked_by_leader() {
        let ns = [
            neighbor(8.0, Level::Infinite),
            neighbor(13.0, Level::Infinite),
        ];
        assert!(!slow_trigger(&view(10.0, 13.0, &ns), 64));
    }

    #[test]
    fn triggers_ignore_level_zero_neighbors() {
        // A freshly discovered neighbour (level 0) is invisible to triggers.
        let ns = [neighbor(100.0, Level::Finite(0))];
        let v = view(10.0, 10.0, &ns);
        assert!(!fast_trigger(&v, 64));
        assert!(!slow_trigger(&v, 64));
    }

    #[test]
    fn missing_estimate_blocks_universal_clauses() {
        let mut unknown = neighbor(0.0, Level::Infinite);
        unknown.estimate = None;
        let ns = [neighbor(12.0, Level::Infinite), unknown];
        assert!(!fast_trigger(&view(10.0, 12.0, &ns), 64));
    }

    #[test]
    fn triggers_are_disjoint_on_random_states() {
        // Lemma 5.3: with kappa > 4(eps + mu*tau) and delta within range,
        // the two triggers can never fire together. Randomized check.
        use rand::Rng;
        let mut rng = gcs_sim::rng::stream(99, "trigger-disjoint", 0);
        for _ in 0..5000 {
            let deg = rng.gen_range(1..5);
            let ns: Vec<NeighborView> = (0..deg)
                .map(|_| {
                    let level = if rng.gen_bool(0.3) {
                        Level::Finite(rng.gen_range(0..6))
                    } else {
                        Level::Infinite
                    };
                    NeighborView {
                        estimate: Some(rng.gen_range(-20.0..20.0)),
                        kappa: 1.0,
                        epsilon: 0.05,
                        tau: 0.01,
                        delta: 0.2,
                        level,
                    }
                })
                .collect();
            let v = view(rng.gen_range(-20.0..20.0), 25.0, &ns);
            assert!(
                !(fast_trigger(&v, 64) && slow_trigger(&v, 64)),
                "triggers fired together: {v:?}"
            );
        }
    }

    #[test]
    fn aopt_policy_follows_listing3_order() {
        let p = AoptPolicy::new(64);
        // Slow trigger dominates.
        let behind = [neighbor(8.0, Level::Infinite)];
        assert_eq!(p.decide(&view(10.0, 20.0, &behind)), Mode::Slow);
        // Fast trigger next.
        let ahead = [neighbor(12.0, Level::Infinite)];
        assert_eq!(p.decide(&view(10.0, 20.0, &ahead)), Mode::Fast);
        // Max-estimate slow when L = M.
        assert_eq!(p.decide(&view(10.0, 10.0, &[])), Mode::Slow);
        // Max-estimate fast when far below M.
        assert_eq!(p.decide(&view(10.0, 11.0, &[])), Mode::Fast);
        // Hysteresis region keeps the current mode.
        let mut v = view(10.0, 10.005, &[]);
        v.current_mode = Mode::Fast;
        assert_eq!(p.decide(&v), Mode::Fast);
        v.current_mode = Mode::Slow;
        assert_eq!(p.decide(&v), Mode::Slow);
    }

    #[test]
    fn max_node_is_never_fast() {
        // Theorem 5.6 prerequisite: a node at the network maximum with
        // M = L must be slow regardless of neighbours behind it.
        let p = AoptPolicy::new(64);
        let ns = [
            neighbor(5.0, Level::Infinite),
            neighbor(9.9, Level::Infinite),
        ];
        assert_eq!(p.decide(&view(10.0, 10.0, &ns)), Mode::Slow);
    }
}
