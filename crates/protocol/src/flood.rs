//! The Condition 4.3 flood: what a node broadcasts, and how a receiver
//! merges an arrival into its own state.
//!
//! This module is the seam both engines and the socket daemon share. The
//! merge is written once here so every harness executes the *same float
//! expressions* in the same order — bit-identity across the sequential
//! engine, the sharded engine, and a replay of a recorded message
//! sequence through [`NodeCore`](crate::NodeCore) is a structural
//! property, not a test-enforced coincidence.

use gcs_net::transport;
use gcs_net::{EdgeParams, NodeId};

use crate::edge_state::EstimateEntry;
use crate::node::NodeState;

/// The body of one periodic flood message: the sender's clock sample plus
/// the three network-wide bounds of Condition 4.3 / §7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloodMsg {
    /// The sender's logical clock `L_v` at the send instant.
    pub logical: f64,
    /// The sender's max estimate `M_v`.
    pub max_est: f64,
    /// The sender's lower bound `W_v` on the network-wide minimum.
    pub min_lb: f64,
    /// The sender's upper bound `P_v` on the network-wide maximum.
    pub max_ub: f64,
}

/// What [`merge_flood`] changed on the receiving node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Whether any of the merged bounds actually moved (an upward `M`
    /// jump is the event that can flip a slow node fast, see
    /// [`m_jump_triggers_fast`]).
    pub m_moved: bool,
    /// Whether a clock sample was stored in the sender's neighbour slot
    /// (false when the sender is no longer a neighbour).
    pub estimate_written: bool,
}

/// Samples the sender's state into a flood message.
///
/// The caller must have advanced `node` to the send instant; the message
/// is a pure read of the four tracked quantities.
#[must_use]
pub fn flood_from(node: &NodeState) -> FloodMsg {
    FloodMsg {
        logical: node.logical(),
        max_est: node.max_estimate(),
        min_lb: node.min_lower_bound(),
        max_ub: node.max_upper_bound(),
    }
}

/// Merges one delivered flood message into the receiver's state:
/// Condition 4.3 with the min-transit credit, the `[W, P]` bracket merge,
/// and the per-neighbour clock-sample write that feeds the message-mode
/// estimate layer.
///
/// The caller owns time and must have advanced `node` to the delivery
/// instant; `edge` is the connecting edge's parameters and `rho`/`beta`
/// come from the run's [`Params`](crate::Params). The §3.1 delivery rule
/// is also the caller's job — this function assumes the message is
/// deliverable (though a concurrently removed neighbour slot degrades
/// gracefully to `estimate_written: false`).
pub fn merge_flood(
    node: &mut NodeState,
    src: NodeId,
    msg: FloodMsg,
    edge: EdgeParams,
    rho: f64,
    beta: f64,
) -> MergeOutcome {
    let credit = transport::min_transit_credit(edge, rho);
    let m_moved = node.merge_flood_bounds(
        msg.max_est + credit,
        msg.min_lb,
        msg.max_ub + beta * edge.delay_bound(),
    );
    let hw_now = node.hardware();
    let mut estimate_written = false;
    if let Some(slot) = node.slots.get_mut(src) {
        slot.estimate = Some(EstimateEntry {
            value: msg.logical + credit,
            hw_at_recv: hw_now,
        });
        estimate_written = true;
    }
    MergeOutcome {
        m_moved,
        estimate_written,
    }
}

/// Whether an upward `M` jump puts the node in fast-trigger territory.
///
/// An upward jump flips a slow-decided node only once the lifted gap
/// reaches `ι` (below that it lands in the hysteresis band, which keeps
/// the slow decision). The comparison is the *same float expression* as
/// the policy's fast branch (`L ≤ M − ι`) — an algebraically equivalent
/// rearrangement could disagree with it by an ulp right at the boundary.
#[must_use]
pub fn m_jump_triggers_fast(node: &NodeState, iota: f64) -> bool {
    node.logical() <= node.max_estimate() - iota
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge_state::EdgeSlot;
    use crate::node::EdgeInfo;
    use gcs_net::EdgeParams;
    use gcs_sim::SimTime;

    fn info(edge: EdgeParams) -> EdgeInfo {
        EdgeInfo {
            params: edge,
            epsilon: 0.002,
            kappa: 0.0135,
            delta: 0.001,
        }
    }

    fn node_with_neighbor(id: u32, peer: u32, edge: EdgeParams) -> NodeState {
        let mut node = NodeState::new(NodeId(id), 1.0);
        node.slots
            .insert(NodeId(peer), info(edge), EdgeSlot::initial());
        node
    }

    #[test]
    fn merge_applies_min_transit_credit_to_bounds_and_sample() {
        let edge = EdgeParams::new(0.002, 0.010, 0.004, 0.004);
        let rho = 0.01;
        let beta = (1.0 + rho) * (1.0 + 0.1);
        let mut node = node_with_neighbor(0, 1, edge);
        let msg = FloodMsg {
            logical: 7.0,
            max_est: 7.5,
            min_lb: 1.0,
            max_ub: 9.0,
        };
        let out = merge_flood(&mut node, NodeId(1), msg, edge, rho, beta);
        assert!(out.m_moved);
        assert!(out.estimate_written);
        let credit = transport::min_transit_credit(edge, rho);
        assert_eq!(node.max_estimate(), 7.5 + credit);
        let slot = node.slots.get(NodeId(1)).unwrap();
        assert_eq!(slot.estimate.unwrap().value, 7.0 + credit);
        // P merges by tightening and clamps at M from below; on a fresh
        // node the clamp wins.
        assert_eq!(node.max_upper_bound(), node.max_estimate());
    }

    #[test]
    fn merge_pads_the_upper_bound_with_beta_delay() {
        let edge = EdgeParams::new(0.002, 0.010, 0.004, 0.004);
        let rho = 0.01;
        let beta = (1.0 + rho) * (1.0 + 0.1);
        let p = crate::Params::builder().rho(rho).mu(0.1).build().unwrap();
        let mut node = node_with_neighbor(0, 1, edge);
        // Let P outrun M by drifting (P advances at the aggressive rate),
        // then tighten it with a message whose padded bound lands strictly
        // between M and the drifted P.
        node.advance_to(SimTime::from_secs(10.0), &p);
        assert!(node.max_upper_bound() > node.max_estimate());
        let target = 10.1;
        let msg = FloodMsg {
            logical: 0.0,
            max_est: 0.0, // dominated: M must not move
            min_lb: 0.0,
            max_ub: target - beta * edge.delay_bound(),
        };
        let out = merge_flood(&mut node, NodeId(1), msg, edge, rho, beta);
        assert!(!out.m_moved);
        assert_eq!(node.max_upper_bound(), target);
    }

    #[test]
    fn merge_from_unknown_sender_still_merges_bounds_but_writes_no_sample() {
        let edge = EdgeParams::new(0.002, 0.010, 0.004, 0.004);
        let mut node = NodeState::new(NodeId(0), 1.0);
        let msg = FloodMsg {
            logical: 3.0,
            max_est: 4.0,
            min_lb: 0.5,
            max_ub: 6.0,
        };
        let out = merge_flood(&mut node, NodeId(9), msg, edge, 0.01, 1.1);
        assert!(out.m_moved);
        assert!(!out.estimate_written);
        assert!(node.slots.is_empty());
    }

    #[test]
    fn dominated_message_moves_nothing() {
        let edge = EdgeParams::new(0.002, 0.010, 0.004, 0.004);
        let mut node = node_with_neighbor(0, 1, edge);
        let big = FloodMsg {
            logical: 7.0,
            max_est: 7.5,
            min_lb: 1.0,
            max_ub: 9.0,
        };
        merge_flood(&mut node, NodeId(1), big, edge, 0.01, 1.1);
        let dominated = FloodMsg {
            logical: 2.0,
            max_est: 1.0,
            min_lb: 0.5,
            max_ub: 1.5,
        };
        let out = merge_flood(&mut node, NodeId(1), dominated, edge, 0.01, 1.1);
        assert!(!out.m_moved);
        // The clock sample is still refreshed: newer is better even when
        // the advertised bounds are stale.
        assert!(out.estimate_written);
    }

    #[test]
    fn flood_from_samples_the_four_tracked_quantities() {
        let mut node = NodeState::new(NodeId(3), 1.0);
        let p = crate::Params::builder().rho(0.01).mu(0.1).build().unwrap();
        node.advance_to(SimTime::from_secs(2.0), &p);
        let msg = flood_from(&node);
        assert_eq!(msg.logical, node.logical());
        assert_eq!(msg.max_est, node.max_estimate());
        assert_eq!(msg.min_lb, node.min_lower_bound());
        assert_eq!(msg.max_ub, node.max_upper_bound());
    }

    #[test]
    fn m_jump_matches_the_fast_trigger_boundary() {
        let mut node = NodeState::new(NodeId(0), 1.0);
        let edge = EdgeParams::new(0.002, 0.010, 0.004, 0.004);
        let iota = 0.001;
        // Lift M exactly iota above L: boundary inclusive.
        let msg = FloodMsg {
            logical: 0.0,
            max_est: iota - transport::min_transit_credit(edge, 0.01),
            min_lb: 0.0,
            max_ub: iota,
        };
        merge_flood(&mut node, NodeId(1), msg, edge, 0.01, 1.1);
        assert!(m_jump_triggers_fast(&node, iota));
        assert!(!m_jump_triggers_fast(&node, iota + 1e-9));
    }
}
