//! `gcs-protocol` — the sans-IO per-node protocol core of the A_OPT
//! gradient clock synchronization algorithm (Kuhn, Lenzen, Locher,
//! Oshman; PODC 2010).
//!
//! Everything in this crate is a pure state machine: inputs are
//! timestamped inbound messages and local clock reads, outputs are
//! messages to send and mode decisions. There are no clocks, no RNG
//! draws, and no IO — the caller owns time and transport. Two harnesses
//! drive the same code:
//!
//! * the deterministic simulator in `gcs-core` (both the sequential and
//!   the sharded engine host their node-local handlers on this crate),
//! * the `gcs-node` socket daemon, which multiplexes many
//!   [`NodeCore`] virtual nodes over a real transport.
//!
//! # Paper-to-module map
//!
//! | Module | Paper concept |
//! |---|---|
//! | [`node`] | per-node clock/bound state (`L_u`, `M_u`, `[W_u, P_u]`) |
//! | [`triggers`] | fast/slow mode triggers (Defs 4.5–4.7, Listing 3) |
//! | [`edge_state`] | staged insertion levels (Listings 1–2, §5.5 decay) |
//! | [`estimate`] | the estimate layer and its advertised uncertainty `ε` |
//! | [`flood`] | Condition 4.3 max-estimate flood merge with min-transit credit |
//! | [`params`] | the paper's parameter soup (`ρ`, `µ`, `ι`, `κ`, `G̃`, …) |
//! | [`runtime`] | [`NodeCore`]: a complete virtual node for real transports |
//! | [`wire`] | length-prefixed frames carrying floods over real sockets |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edge_state;
pub mod estimate;
pub mod flood;
pub mod node;
pub mod params;
pub mod runtime;
pub mod triggers;
pub mod wire;

pub use estimate::{ErrorModel, EstimateMode};
pub use flood::{flood_from, m_jump_triggers_fast, merge_flood, FloodMsg, MergeOutcome};
pub use node::{EdgeInfo, NeighborEntry, NeighborTable, NodeState};
pub use params::{InsertionStrategy, Params, ParamsBuilder, ParamsError};
pub use runtime::NodeCore;
pub use triggers::{
    fast_trigger, slow_trigger, AoptPolicy, Mode, ModePolicy, NeighborView, NodeView, StabilityCert,
};
pub use wire::{Frame, FrameReader, WireError};
