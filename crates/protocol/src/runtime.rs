//! [`NodeCore`]: one complete virtual node as a sans-IO state machine,
//! plus the derivation of the run constants every harness must agree on.
//!
//! A `NodeCore` is what the `gcs-node` socket daemon multiplexes over a
//! real transport: the caller owns time (it passes explicit [`SimTime`]
//! instants read from whatever clock it trusts) and transport (it carries
//! the returned [`Send`]s and feeds received messages back in). The state
//! transitions are the same functions the simulation engines execute —
//! [`merge_flood`](crate::merge_flood) for arrivals, the
//! [`ModePolicy`] triggers for decisions — so a message sequence recorded
//! from a simulation replays through a `NodeCore` bit-for-bit (the
//! engine-side property test pins this).
//!
//! Scope: `NodeCore` runs the *message-mode* estimate layer (clock
//! samples carried by the floods themselves) over a static neighbour set
//! installed fully inserted at startup. The staged insertion handshake
//! and the oracle estimate layer need engine-side machinery (scripted
//! truth, generation-tracked rediscovery) and stay in `gcs-core` for now.

use std::collections::HashMap;

use gcs_net::{EdgeKey, EdgeParamsMap, NodeId};
use gcs_sim::SimTime;

use crate::edge_state::EdgeSlot;
use crate::estimate::EstimateMode;
use crate::flood::{flood_from, merge_flood, FloodMsg, MergeOutcome};
use crate::node::{EdgeInfo, NodeState};
use crate::params::{InsertionStrategy, Params};
use crate::triggers::{AoptPolicy, Mode, ModePolicy, NeighborView, NodeView};

/// One outbound message: the flood body to put on the wire for `dst`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Send {
    /// The sending node (the wire frame carries it for routing).
    pub src: NodeId,
    /// The neighbour to deliver to.
    pub dst: NodeId,
    /// The send instant (travels with the message for the §3.1 check).
    pub sent_at: SimTime,
    /// The flood body.
    pub msg: FloodMsg,
}

/// The constants a run derives from its parameters and edge universe:
/// what [`derive_run_config`] returns.
///
/// Both the simulation builder and the daemon call the same derivation,
/// so a daemon cluster configured like a scenario uses bit-identical
/// `ε`/`κ`/`ι`/`G̃` values — the conformance oracle's envelope is
/// comparable across harnesses.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Parameters with `ι` and the static `G̃` filled in.
    pub params: Params,
    /// The flood refresh period (hardware seconds).
    pub refresh: f64,
    /// The mode-evaluation tick interval (seconds).
    pub tick: f64,
    /// Cached per-edge derived quantities for the whole edge universe.
    pub edge_info: HashMap<EdgeKey, EdgeInfo>,
}

/// Derives the run constants — refresh period, per-edge `ε`/`κ`/`δ`,
/// `ι`, the static `G̃` default, and the tick interval — from validated
/// parameters, an estimate layer, per-edge model parameters, and the
/// scenario's edge universe. This is the exact computation
/// `SimBuilder::build` performs (it delegates here).
#[must_use]
pub fn derive_run_config(
    base: &Params,
    mode: EstimateMode,
    edge_params: &EdgeParamsMap,
    universe: &[EdgeKey],
    n: usize,
) -> RunConfig {
    let refresh = base
        .refresh_period()
        .unwrap_or_else(|| edge_params.max_delay_bound());

    let mut edge_info = HashMap::with_capacity(universe.len());
    let mut kappa_min = f64::INFINITY;
    let mut per_hop_max = 0.0f64;
    for &e in universe {
        let ep = edge_params.get(e);
        let epsilon = mode.advertised_epsilon(base, ep, refresh);
        let kappa = base.kappa(ep, epsilon);
        let delta = base.delta(ep, epsilon);
        kappa_min = kappa_min.min(kappa);
        let drift_window = refresh / base.alpha() + ep.delay_bound();
        let per_hop = epsilon
            + base.mu() * ep.tau
            + (2.0 * base.rho() + base.mu() * base.rho()) * drift_window;
        per_hop_max = per_hop_max.max(per_hop);
        edge_info.insert(
            e,
            EdgeInfo {
                params: ep,
                epsilon,
                kappa,
                delta,
            },
        );
    }
    if !kappa_min.is_finite() {
        // A universe without any edges: still runnable (clocks free-run).
        kappa_min = 1.0;
        per_hop_max = 1.0;
    }

    let iota = kappa_min / 8.0;
    // Conservative static estimate: four times the worst-case accumulated
    // per-hop uncertainty across the longest possible path.
    let g_tilde_default = 4.0 * n as f64 * per_hop_max + iota;
    let params = base
        .clone()
        .with_iota_default(iota)
        .with_g_tilde_default(g_tilde_default);

    let tick = params
        .tick()
        .unwrap_or_else(|| kappa_min / (8.0 * params.beta()));

    RunConfig {
        params,
        refresh,
        tick,
        edge_info,
    }
}

/// A complete virtual node: clock/bound state, neighbour table, flood
/// schedule, and mode policy — everything but time and transport.
#[derive(Debug)]
pub struct NodeCore {
    state: NodeState,
    params: Params,
    policy: Box<dyn ModePolicy>,
    refresh: f64,
    next_flood: SimTime,
    views: Vec<NeighborView>,
}

impl NodeCore {
    /// Creates a virtual node with the default [`AoptPolicy`].
    ///
    /// `params` must come out of [`derive_run_config`] (so `ι` and `G̃`
    /// are filled); `refresh` is the flood period in hardware seconds;
    /// `first_flood` schedules the initial broadcast (stagger these
    /// across a cluster so the network does not send in lockstep).
    #[must_use]
    pub fn new(
        id: NodeId,
        params: Params,
        refresh: f64,
        hw_rate: f64,
        first_flood: SimTime,
    ) -> Self {
        let policy = Box::new(AoptPolicy::new(params.max_levels()));
        NodeCore {
            state: NodeState::new(id, hw_rate),
            params,
            policy,
            refresh,
            next_flood: first_flood,
            views: Vec::new(),
        }
    }

    /// Read access to the tracked clock state.
    #[must_use]
    pub fn state(&self) -> &NodeState {
        &self.state
    }

    /// The run parameters this node decides under.
    #[must_use]
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The instant of the next scheduled flood.
    #[must_use]
    pub fn next_flood_at(&self) -> SimTime {
        self.next_flood
    }

    /// Installs `peer` as a fully inserted neighbour (the `N^s(0) = N(0)`
    /// startup case of §4.2: every configured edge is present and past
    /// its insertion schedule from the start).
    pub fn add_neighbor(&mut self, peer: NodeId, info: EdgeInfo) {
        self.state.slots.insert(peer, info, EdgeSlot::initial());
    }

    /// Drops `peer` from the neighbour table; returns whether it was
    /// present. Subsequent messages from it fail the delivery rule.
    pub fn remove_neighbor(&mut self, peer: NodeId) -> bool {
        self.state.slots.remove(peer)
    }

    /// Applies a hardware-clock rate change at `t` (the drift adversary,
    /// or a measured-frequency update from the host clock).
    pub fn set_hw_rate(&mut self, t: SimTime, rate: f64) {
        self.state.advance_to(t, &self.params);
        self.state.set_hw_rate(rate);
    }

    /// Feeds one received flood message in. Returns `None` if the §3.1
    /// delivery rule drops it (unknown sender, or the slot was discovered
    /// after the send), otherwise what the merge changed.
    pub fn on_message(
        &mut self,
        t: SimTime,
        src: NodeId,
        sent_at: SimTime,
        msg: FloodMsg,
    ) -> Option<MergeOutcome> {
        let edge = match self.state.slots.entry(src) {
            Some(entry) if entry.slot.discovered_at <= sent_at => entry.info.params,
            _ => return None,
        };
        self.state.advance_to(t, &self.params);
        Some(merge_flood(
            &mut self.state,
            src,
            msg,
            edge,
            self.params.rho(),
            self.params.beta(),
        ))
    }

    /// Emits any flood due at `t` into `out` (one [`Send`] per
    /// neighbour) and schedules the next one `refresh` hardware seconds
    /// later. Call this whenever the caller's clock passes
    /// [`next_flood_at`](NodeCore::next_flood_at).
    pub fn poll_sends(&mut self, t: SimTime, out: &mut Vec<Send>) {
        if t < self.next_flood {
            return;
        }
        self.state.advance_to(t, &self.params);
        let msg = flood_from(&self.state);
        for entry in self.state.slots.iter() {
            out.push(Send {
                src: self.state.id(),
                dst: entry.id,
                sent_at: t,
                msg,
            });
        }
        let dt = self.refresh / self.state.hw_rate();
        self.next_flood = t + gcs_sim::SimDuration::from_secs(dt);
    }

    /// Evaluates the mode triggers at `t` and applies the decision,
    /// returning the (possibly unchanged) mode. This is the tick-sweep
    /// body of the engines, without the incremental skipping — a polled
    /// node re-decides every call, which is always bit-identical to the
    /// certified skip (that is the certificates' soundness contract).
    pub fn evaluate(&mut self, t: SimTime) -> Mode {
        self.state.advance_to(t, &self.params);
        let mut views = std::mem::take(&mut self.views);
        self.fill_views(&mut views);
        let view = NodeView {
            logical: self.state.logical(),
            max_estimate: self.state.max_estimate(),
            current_mode: self.state.mode(),
            iota: self.params.iota(),
            mu: self.params.mu(),
            rho: self.params.rho(),
            neighbors: &views,
        };
        let mode = self.policy.decide(&view);
        self.state.set_mode(mode);
        self.views = views;
        mode
    }

    /// The message-mode neighbour views: the same per-entry computation
    /// as the engines' view fill, minus the oracle-layer branches (a
    /// `NodeCore` has no scripted truth to read).
    fn fill_views(&self, out: &mut Vec<NeighborView>) {
        out.clear();
        let logical = self.state.logical();
        let hw = self.state.hardware();
        for entry in self.state.slots.iter() {
            let info = &entry.info;
            let level = entry.slot.insert.level_at(logical);
            let (kappa, delta) = match self.params.insertion_strategy() {
                InsertionStrategy::Staged => (info.kappa, info.delta),
                InsertionStrategy::DecayingWeight { halving } => {
                    let k = entry
                        .slot
                        .insert
                        .effective_kappa(logical, info.kappa, halving);
                    (k, self.params.delta_for_kappa(k, info.params, info.epsilon))
                }
            };
            out.push(NeighborView {
                estimate: entry.slot.reckoned_estimate(hw),
                kappa,
                epsilon: info.epsilon,
                tau: info.params.tau,
                delta,
                level,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_net::EdgeParams;

    fn two_node_universe() -> (Vec<EdgeKey>, EdgeParamsMap) {
        let universe = vec![EdgeKey::new(NodeId(0), NodeId(1))];
        let map = EdgeParamsMap::uniform(EdgeParams::default());
        (universe, map)
    }

    fn config() -> RunConfig {
        let base = Params::builder().rho(0.01).mu(0.1).build().unwrap();
        let (universe, map) = two_node_universe();
        derive_run_config(&base, EstimateMode::Messages, &map, &universe, 2)
    }

    fn core(id: u32, cfg: &RunConfig, hw_rate: f64) -> NodeCore {
        let mut c = NodeCore::new(
            NodeId(id),
            cfg.params.clone(),
            cfg.refresh,
            hw_rate,
            SimTime::ZERO,
        );
        let info = cfg.edge_info[&EdgeKey::new(NodeId(0), NodeId(1))];
        c.add_neighbor(NodeId(1 - id), info);
        c
    }

    #[test]
    fn derive_fills_iota_and_g_tilde() {
        let cfg = config();
        assert!(cfg.params.iota() > 0.0);
        assert!(cfg.params.g_tilde().unwrap() > 0.0);
        assert!(cfg.refresh > 0.0 && cfg.tick > 0.0);
        assert_eq!(cfg.edge_info.len(), 1);
    }

    #[test]
    fn floods_carry_the_senders_bounds_and_respect_the_schedule() {
        let cfg = config();
        let mut a = core(0, &cfg, 1.0);
        let mut out = Vec::new();
        a.poll_sends(SimTime::from_secs(0.5), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, NodeId(1));
        assert_eq!(out[0].sent_at, SimTime::from_secs(0.5));
        // Not due again until a refresh period has elapsed.
        let before = out.len();
        a.poll_sends(SimTime::from_secs(0.5001), &mut out);
        assert_eq!(out.len(), before);
        a.poll_sends(a.next_flood_at(), &mut out);
        assert_eq!(out.len(), before + 1);
    }

    #[test]
    fn message_exchange_moves_the_receivers_estimate() {
        let cfg = config();
        let mut a = core(0, &cfg, 1.0 + cfg.params.rho());
        let mut b = core(1, &cfg, 1.0 - cfg.params.rho());
        let t1 = SimTime::from_secs(1.0);
        let mut out = Vec::new();
        a.poll_sends(t1, &mut out);
        let t2 = SimTime::from_secs(1.005);
        let outcome = b
            .on_message(t2, NodeId(0), out[0].sent_at, out[0].msg)
            .expect("deliverable");
        assert!(outcome.m_moved, "the faster sender lifts the receiver's M");
        assert!(outcome.estimate_written);
        assert!(b.state().slots.get(NodeId(0)).unwrap().estimate.is_some());
        let _ = b.evaluate(t2);
    }

    #[test]
    fn delivery_rule_drops_unknown_and_prediscovery_senders() {
        let cfg = config();
        let mut b = core(1, &cfg, 1.0);
        let msg = FloodMsg {
            logical: 1.0,
            max_est: 1.0,
            min_lb: 0.0,
            max_ub: 2.0,
        };
        // Unknown sender.
        assert!(b
            .on_message(SimTime::from_secs(1.0), NodeId(7), SimTime::ZERO, msg)
            .is_none());
        // Known sender, message sent before (re)discovery: drop. Reinstall
        // the neighbour with a later discovery instant to simulate churn.
        assert!(b.remove_neighbor(NodeId(0)));
        let info = cfg.edge_info[&EdgeKey::new(NodeId(0), NodeId(1))];
        b.state.slots.insert(
            NodeId(0),
            info,
            EdgeSlot::discovered(SimTime::from_secs(2.0), 0.0, 1),
        );
        assert!(b
            .on_message(
                SimTime::from_secs(2.5),
                NodeId(0),
                SimTime::from_secs(1.5),
                msg
            )
            .is_none());
        // Sent exactly at the discovery instant: the closed interval
        // includes the endpoint, so this delivers.
        assert!(b
            .on_message(
                SimTime::from_secs(2.5),
                NodeId(0),
                SimTime::from_secs(2.0),
                msg
            )
            .is_some());
    }
}
