//! Deterministic tracing and metrics for the gradient clock sync engines.
//!
//! This crate is the *instrumentation seam*: a [`TelemetrySink`] trait the
//! engines call at interesting moments (ticks, mode switches, edge
//! transitions, fault injections, shard drains, barrier rounds), plus a
//! concrete [`Recorder`] that turns those calls into
//!
//! 1. a **deterministic JSONL trace** with a running FNV-1a content hash —
//!    the replayable run log. Trace records are restricted to events whose
//!    order is identical in the sequential and parallel engines (master-side
//!    dispatch plus driver-side samples), so the same `(scenario, seed)`
//!    produces a **byte-identical** trace at every shard count; and
//! 2. a **metrics layer** of counters and power-of-two histograms
//!    (events per shard, barrier stalls, queue depth, evaluations per
//!    tick), summarized into a [`RunTelemetry`] value.
//!
//! Everything here is dependency-free and engine-agnostic: the engines see
//! only the trait. When no sink is installed the hooks cost one branch on a
//! `None` option — zero allocation, zero formatting.
//!
//! The crate also ships the reader half of the contract: [`trace_diff`]
//! finds the first divergent record between two traces, and
//! [`verify_trace`] recomputes the content hash of a trace file and checks
//! it against the hash recorded in the terminating `end` record.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

/// Node-local event counters, accumulated wherever node events are drained
/// (the sequential event loop, or each shard's calendar queue).
///
/// These are *order-free*: per-kind totals are identical across engines and
/// shard counts even though node-local execution order is not, so they are
/// folded into the run totals at merge points rather than traced per event.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LocalCounters {
    /// `Flood` events drained (periodic + triggered re-floods).
    pub floods: u64,
    /// `Deliver` events drained (message arrivals, before the §3.1 gate).
    pub deliveries: u64,
    /// `RateChange` events drained (hardware drift schedule points).
    pub rate_changes: u64,
    /// `LeaderCheck` events drained (baseline handshake probes).
    pub leader_checks: u64,
    /// `FollowerApply` events drained (baseline handshake applies).
    pub follower_applies: u64,
    /// Accepted flood payloads merged into receiver estimate bounds.
    pub flood_merges: u64,
    /// Flood merges that moved the receiver's max-estimate (`M`-jumps in
    /// the paper's terms: the fast-condition input actually changed).
    pub m_jumps: u64,
}

impl LocalCounters {
    /// Fold another counter block into this one.
    pub fn merge(&mut self, other: &LocalCounters) {
        self.floods += other.floods;
        self.deliveries += other.deliveries;
        self.rate_changes += other.rate_changes;
        self.leader_checks += other.leader_checks;
        self.follower_applies += other.follower_applies;
        self.flood_merges += other.flood_merges;
        self.m_jumps += other.m_jumps;
    }

    /// True when every counter is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == LocalCounters::default()
    }
}

/// The instrumentation seam. Engines hold an optional boxed sink and call
/// these hooks at well-defined sites; every method has an empty default so
/// a sink implements only what it cares about.
///
/// **Determinism contract**: the first four hooks (`on_tick`,
/// `on_mode_switch`, `on_edge`, `on_fault`) fire from master-side dispatch
/// in an order that is identical between the sequential and parallel
/// engines — sinks may emit trace records from them. The remaining hooks
/// fire at engine-dependent times (per `run_until` call, per segment, per
/// barrier round) and must only feed order-insensitive aggregates.
pub trait TelemetrySink: std::fmt::Debug {
    /// A tick sweep completed at time `t`, re-evaluating `evaluated` nodes.
    fn on_tick(&mut self, t: f64, evaluated: usize) {
        let _ = (t, evaluated);
    }
    /// Node `node` switched mode at time `t` (`fast` = entered fast mode).
    fn on_mode_switch(&mut self, t: f64, node: usize, fast: bool) {
        let _ = (t, node, fast);
    }
    /// Edge `from`–`to` appeared (`up`) or disappeared at time `t`.
    fn on_edge(&mut self, t: f64, from: usize, to: usize, up: bool) {
        let _ = (t, from, to, up);
    }
    /// A clock-offset fault of `amount` was injected into `node` at `t`.
    fn on_fault(&mut self, t: f64, node: usize, amount: f64) {
        let _ = (t, node, amount);
    }
    /// A scripted estimate-bias fault of `bias` (in units of the per-edge
    /// `ε`) was injected into `node` at `t`. Fires from master-side
    /// dispatch like `on_fault`, so sinks may trace it.
    fn on_est_fault(&mut self, t: f64, node: usize, bias: f64) {
        let _ = (t, node, bias);
    }
    /// Node-local counters accumulated by `shard` since the last flush.
    fn on_local(&mut self, shard: usize, counters: &LocalCounters) {
        let _ = (shard, counters);
    }
    /// `events` events were drained by `shard` since the last stats merge.
    fn on_shard_drained(&mut self, shard: usize, events: u64) {
        let _ = (shard, events);
    }
    /// The parallel engine opened a segment ending at `cut`.
    fn on_segment_cut(&mut self, cut: f64) {
        let _ = cut;
    }
    /// A barrier round ran with `active` busy shards and `stalled` shards
    /// that had no work below the cut this round.
    fn on_barrier_round(&mut self, active: usize, stalled: usize) {
        let _ = (active, stalled);
    }
    /// A barrier exchange moved `moved` cross-shard events between
    /// mailboxes.
    fn on_mailbox(&mut self, moved: usize) {
        let _ = moved;
    }
}

/// A sink that ignores everything — the explicit spelling of "disabled".
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {}

// ---------------------------------------------------------------------------
// Content hashing
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher. Chosen because it is trivially
/// portable, dependency-free, and byte-order independent — the trace hash
/// is a determinism fingerprint, not a cryptographic commitment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// Fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Current digest.
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64 of a byte slice.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.digest()
}

/// Render a digest in the `fnv1a64:%016x` form used by trace end records.
#[must_use]
pub fn hash_hex(digest: u64) -> String {
    format!("fnv1a64:{digest:016x}")
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Deterministic power-of-two histogram: bucket 0 holds zeros, bucket `i`
/// (for `i ≥ 1`) holds values in `[2^(i-1), 2^i)`. Counts are exact and
/// independent of observation order, so histograms are engine-invariant
/// wherever the observed multiset is.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Bucket index for a value.
    #[must_use]
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive lower bound of a bucket.
    #[must_use]
    pub fn bucket_lo(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Record one value.
    pub fn observe(&mut self, v: u64) {
        let b = Self::bucket_of(v);
        if self.counts.len() <= b {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Per-bucket counts (trailing zero buckets trimmed by construction).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Maximum observed value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }
}

/// Bounded-memory running summary of an `f64` series: count, min, max, and
/// mean via a running sum. This is the streaming-conformance counterpart of
/// retaining a whole trajectory — observers at 10⁵ nodes fold each sampled
/// value in and keep O(1) state, and because the fold is a plain
/// left-to-right sum over a deterministic sample order, the summary is
/// bit-identical across engines and shard counts wherever the observed
/// sequence is.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct StreamStats {
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
}

impl StreamStats {
    /// Fresh, empty summary.
    #[must_use]
    pub fn new() -> Self {
        StreamStats::default()
    }

    /// Fold one observation in. Non-finite values are counted into `count`
    /// but poison `min`/`max`/`mean` the way IEEE arithmetic dictates —
    /// callers gate on finiteness upstream.
    pub fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.sum += v;
        self.count += 1;
    }

    /// Number of observations folded in.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Running mean (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

/// One driver-side observation instant: gauges read at a quiescent point
/// (all events at-or-before `t` fully processed in either engine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Observation time in seconds.
    pub t: f64,
    /// Global skew (max−min logical clock) at `t`.
    pub global_skew: f64,
    /// Pending events across all queues (master + shards).
    pub queue_depth: usize,
    /// Nodes whose tick-sweep staleness bound has expired ("dirty set").
    pub dirty_nodes: usize,
    /// Cumulative events processed so far.
    pub events: u64,
}

#[derive(Debug, Default)]
struct TraceBuffer {
    text: String,
    records: u64,
    hash: Fnv1a,
}

impl TraceBuffer {
    fn push(&mut self, line: &str) {
        self.hash.update(line.as_bytes());
        self.hash.update(b"\n");
        self.text.push_str(line);
        self.text.push('\n');
        self.records += 1;
    }
}

/// A finished deterministic trace: full JSONL text (including the `end`
/// record), the record count, and the content hash the `end` record
/// carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceOutput {
    /// Complete JSONL text, one record per line, `end` record last.
    pub text: String,
    /// Number of records hashed (everything before the `end` record).
    pub records: u64,
    /// FNV-1a 64 digest over the hashed records (bytes including the
    /// trailing newline of each line).
    pub hash: u64,
}

impl TraceOutput {
    /// The digest in `fnv1a64:%016x` form.
    #[must_use]
    pub fn hash_hex(&self) -> String {
        hash_hex(self.hash)
    }
}

/// Everything a [`Recorder`] learned about one run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTelemetry {
    /// Node-local event counters, folded across shards.
    pub local: LocalCounters,
    /// Events drained per shard (empty for the sequential engine).
    pub per_shard_drained: Vec<u64>,
    /// Tick sweeps observed.
    pub ticks: u64,
    /// Mode switches observed.
    pub mode_switches: u64,
    /// Edge up/down transitions observed.
    pub edge_events: u64,
    /// Clock faults injected.
    pub faults: u64,
    /// Scripted estimate-bias faults injected.
    pub est_faults: u64,
    /// Parallel segments opened (0 for the sequential engine).
    pub segments: u64,
    /// Barrier rounds run (0 for the sequential engine).
    pub barrier_rounds: u64,
    /// Shard-rounds spent stalled at a barrier while peers drained.
    pub stalled_shard_rounds: u64,
    /// Cross-shard events moved through mailboxes at barriers.
    pub mailbox_events: u64,
    /// Nodes re-evaluated per tick sweep.
    pub eval_hist: Histogram,
    /// Pending-queue depth at each sample instant.
    pub queue_hist: Histogram,
    /// Driver-side observation series.
    pub samples: Vec<Sample>,
    /// The deterministic trace, when tracing was enabled.
    pub trace: Option<TraceOutput>,
}

/// The concrete sink: accumulates metrics always, and builds the
/// deterministic JSONL trace when constructed with [`Recorder::with_trace`].
#[derive(Debug, Default)]
pub struct Recorder {
    trace: Option<TraceBuffer>,
    local: LocalCounters,
    per_shard_drained: Vec<u64>,
    ticks: u64,
    mode_switches: u64,
    edge_events: u64,
    faults: u64,
    est_faults: u64,
    segments: u64,
    barrier_rounds: u64,
    stalled_shard_rounds: u64,
    mailbox_events: u64,
    eval_hist: Histogram,
    queue_hist: Histogram,
    samples: Vec<Sample>,
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl Recorder {
    /// Metrics-only recorder (no trace text is built).
    #[must_use]
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Recorder that additionally builds the JSONL trace.
    #[must_use]
    pub fn with_trace() -> Self {
        Recorder {
            trace: Some(TraceBuffer::default()),
            ..Recorder::default()
        }
    }

    /// Emit the run header record. Deliberately excludes engine identity
    /// (engine kind, thread/shard count): the trace must be byte-identical
    /// across engines, so anything engine-specific belongs in the metrics
    /// artifact, never in the trace.
    ///
    /// When `spec` is given (the canonical `.scn` text of the exact
    /// scenario driven, post-scaling), a `{"rec":"spec","scn":"..."}`
    /// record follows the run header — this is what makes the artifact
    /// *self-contained*: replay re-materializes the run from the trace
    /// alone, without the registry or any scenario file.
    pub fn begin_run(&mut self, scenario: &str, seed: u64, nodes: usize, spec: Option<&str>) {
        if self.trace.is_some() {
            let mut line =
                String::from("{\"rec\":\"run\",\"format\":\"gcs-trace/v1\",\"scenario\":\"");
            escape_into(&mut line, scenario);
            let _ = write!(line, "\",\"seed\":{seed},\"nodes\":{nodes}}}");
            if let Some(t) = &mut self.trace {
                t.push(&line);
            }
            if let Some(scn) = spec {
                let mut line = String::from("{\"rec\":\"spec\",\"scn\":\"");
                escape_into(&mut line, scn);
                line.push_str("\"}");
                if let Some(t) = &mut self.trace {
                    t.push(&line);
                }
            }
        }
    }

    /// Record a driver-side observation instant. This is called by the
    /// scenario driver (not through the trait): samples are taken at
    /// quiescent instants, so their position in the trace is deterministic.
    pub fn on_sample(&mut self, s: Sample) {
        self.queue_hist.observe(s.queue_depth as u64);
        self.samples.push(s);
        if let Some(t) = &mut self.trace {
            t.push(&format!(
                "{{\"rec\":\"sample\",\"t\":{},\"skew\":{},\"queue\":{},\"dirty\":{},\"events\":{}}}",
                s.t, s.global_skew, s.queue_depth, s.dirty_nodes, s.events
            ));
        }
    }

    /// Finish: seal the trace with its `end` record and return the
    /// collected metrics.
    #[must_use]
    pub fn finish(self) -> RunTelemetry {
        let trace = self.trace.map(|t| {
            let digest = t.hash.digest();
            let mut text = t.text;
            let _ = writeln!(
                text,
                "{{\"rec\":\"end\",\"records\":{},\"hash\":\"{}\"}}",
                t.records,
                hash_hex(digest)
            );
            TraceOutput {
                text,
                records: t.records,
                hash: digest,
            }
        });
        RunTelemetry {
            local: self.local,
            per_shard_drained: self.per_shard_drained,
            ticks: self.ticks,
            mode_switches: self.mode_switches,
            edge_events: self.edge_events,
            faults: self.faults,
            est_faults: self.est_faults,
            segments: self.segments,
            barrier_rounds: self.barrier_rounds,
            stalled_shard_rounds: self.stalled_shard_rounds,
            mailbox_events: self.mailbox_events,
            eval_hist: self.eval_hist,
            queue_hist: self.queue_hist,
            samples: self.samples,
            trace,
        }
    }
}

impl TelemetrySink for Recorder {
    fn on_tick(&mut self, t: f64, evaluated: usize) {
        self.ticks += 1;
        self.eval_hist.observe(evaluated as u64);
        // Quiet ticks (nothing re-evaluated) are histogrammed but not
        // traced: they dominate long steady-state runs and carry no
        // information beyond the tick period.
        if evaluated > 0 {
            if let Some(tr) = &mut self.trace {
                tr.push(&format!(
                    "{{\"rec\":\"tick\",\"t\":{t},\"eval\":{evaluated}}}"
                ));
            }
        }
    }

    fn on_mode_switch(&mut self, t: f64, node: usize, fast: bool) {
        self.mode_switches += 1;
        if let Some(tr) = &mut self.trace {
            let mode = if fast { "fast" } else { "slow" };
            tr.push(&format!(
                "{{\"rec\":\"mode\",\"t\":{t},\"node\":{node},\"mode\":\"{mode}\"}}"
            ));
        }
    }

    fn on_edge(&mut self, t: f64, from: usize, to: usize, up: bool) {
        self.edge_events += 1;
        if let Some(tr) = &mut self.trace {
            let op = if up { "up" } else { "down" };
            tr.push(&format!(
                "{{\"rec\":\"edge\",\"t\":{t},\"from\":{from},\"to\":{to},\"op\":\"{op}\"}}"
            ));
        }
    }

    fn on_fault(&mut self, t: f64, node: usize, amount: f64) {
        self.faults += 1;
        if let Some(tr) = &mut self.trace {
            tr.push(&format!(
                "{{\"rec\":\"fault\",\"t\":{t},\"node\":{node},\"amount\":{amount}}}"
            ));
        }
    }

    fn on_est_fault(&mut self, t: f64, node: usize, bias: f64) {
        self.est_faults += 1;
        if let Some(tr) = &mut self.trace {
            tr.push(&format!(
                "{{\"rec\":\"fault\",\"kind\":\"est\",\"t\":{t},\"node\":{node},\"bias\":{bias}}}"
            ));
        }
    }

    fn on_local(&mut self, _shard: usize, counters: &LocalCounters) {
        self.local.merge(counters);
    }

    fn on_shard_drained(&mut self, shard: usize, events: u64) {
        if self.per_shard_drained.len() <= shard {
            self.per_shard_drained.resize(shard + 1, 0);
        }
        self.per_shard_drained[shard] += events;
    }

    fn on_segment_cut(&mut self, _cut: f64) {
        self.segments += 1;
    }

    fn on_barrier_round(&mut self, _active: usize, stalled: usize) {
        self.barrier_rounds += 1;
        self.stalled_shard_rounds += stalled as u64;
    }

    fn on_mailbox(&mut self, moved: usize) {
        self.mailbox_events += moved as u64;
    }
}

/// A cloneable handle to a shared [`Recorder`], so the engine's boxed sink
/// and the scenario driver can feed the same recorder. The engine half is
/// handed out via [`SharedRecorder::sink`]; the driver half calls
/// [`SharedRecorder::on_sample`] from its observation loop.
#[derive(Debug, Clone)]
pub struct SharedRecorder(Rc<RefCell<Recorder>>);

impl SharedRecorder {
    /// New shared recorder; `trace` enables JSONL trace building.
    #[must_use]
    pub fn new(trace: bool) -> Self {
        let rec = if trace {
            Recorder::with_trace()
        } else {
            Recorder::new()
        };
        SharedRecorder(Rc::new(RefCell::new(rec)))
    }

    /// A boxed sink handle suitable for `Engine::set_telemetry`.
    #[must_use]
    pub fn sink(&self) -> Box<dyn TelemetrySink> {
        Box::new(self.clone())
    }

    /// Emit the run header (see [`Recorder::begin_run`]).
    pub fn begin_run(&self, scenario: &str, seed: u64, nodes: usize, spec: Option<&str>) {
        self.0.borrow_mut().begin_run(scenario, seed, nodes, spec);
    }

    /// Record a driver-side observation instant.
    pub fn on_sample(&self, s: Sample) {
        self.0.borrow_mut().on_sample(s);
    }

    /// Unwrap and finish. Panics if an engine sink handle is still alive —
    /// call `Engine::take_telemetry` (and drop the result) first.
    #[must_use]
    pub fn finish(self) -> RunTelemetry {
        Rc::try_unwrap(self.0)
            .expect("finish() requires all sink handles dropped (take_telemetry first)")
            .into_inner()
            .finish()
    }
}

impl TelemetrySink for SharedRecorder {
    fn on_tick(&mut self, t: f64, evaluated: usize) {
        self.0.borrow_mut().on_tick(t, evaluated);
    }
    fn on_mode_switch(&mut self, t: f64, node: usize, fast: bool) {
        self.0.borrow_mut().on_mode_switch(t, node, fast);
    }
    fn on_edge(&mut self, t: f64, from: usize, to: usize, up: bool) {
        self.0.borrow_mut().on_edge(t, from, to, up);
    }
    fn on_fault(&mut self, t: f64, node: usize, amount: f64) {
        self.0.borrow_mut().on_fault(t, node, amount);
    }
    fn on_est_fault(&mut self, t: f64, node: usize, bias: f64) {
        self.0.borrow_mut().on_est_fault(t, node, bias);
    }
    fn on_local(&mut self, shard: usize, counters: &LocalCounters) {
        self.0.borrow_mut().on_local(shard, counters);
    }
    fn on_shard_drained(&mut self, shard: usize, events: u64) {
        self.0.borrow_mut().on_shard_drained(shard, events);
    }
    fn on_segment_cut(&mut self, cut: f64) {
        self.0.borrow_mut().on_segment_cut(cut);
    }
    fn on_barrier_round(&mut self, active: usize, stalled: usize) {
        self.0.borrow_mut().on_barrier_round(active, stalled);
    }
    fn on_mailbox(&mut self, moved: usize) {
        self.0.borrow_mut().on_mailbox(moved);
    }
}

// ---------------------------------------------------------------------------
// Trace reading: diff and verification
// ---------------------------------------------------------------------------

/// First divergence between two traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDiff {
    /// 1-based line number of the first divergent record.
    pub line: usize,
    /// The line in the first trace (`None` if it ended early).
    pub a: Option<String>,
    /// The line in the second trace (`None` if it ended early).
    pub b: Option<String>,
}

/// Compare two traces line by line; `None` means byte-identical.
#[must_use]
pub fn trace_diff(a: &str, b: &str) -> Option<TraceDiff> {
    let mut la = a.lines();
    let mut lb = b.lines();
    let mut n = 0usize;
    loop {
        n += 1;
        match (la.next(), lb.next()) {
            (None, None) => return None,
            (x, y) if x == y => {}
            (x, y) => {
                return Some(TraceDiff {
                    line: n,
                    a: x.map(str::to_owned),
                    b: y.map(str::to_owned),
                })
            }
        }
    }
}

/// Verify a trace's `end` record: recompute the FNV-1a digest over every
/// line before it and check both the record count and the recorded hash.
/// Returns `(records, hash_hex)` on success.
///
/// # Errors
/// Returns a description of the mismatch (missing/malformed end record,
/// record count mismatch, or content hash mismatch).
pub fn verify_trace(text: &str) -> Result<(u64, String), String> {
    let mut hasher = Fnv1a::new();
    let mut records = 0u64;
    let mut end: Option<&str> = None;
    for line in text.lines() {
        if let Some(prev) = end {
            return Err(format!("trailing data after end record {prev:?}: {line:?}"));
        }
        if line.starts_with("{\"rec\":\"end\"") {
            end = Some(line);
        } else {
            hasher.update(line.as_bytes());
            hasher.update(b"\n");
            records += 1;
        }
    }
    let end = end.ok_or_else(|| "no end record found".to_owned())?;
    let want_records = format!("\"records\":{records}");
    if !end.contains(&want_records) {
        return Err(format!(
            "end record count mismatch: counted {records}, end record is {end}"
        ));
    }
    let digest = hash_hex(hasher.digest());
    if !end.contains(&format!("\"hash\":\"{digest}\"")) {
        return Err(format!(
            "content hash mismatch: recomputed {digest}, end record is {end}"
        ));
    }
    Ok((records, digest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Reference vectors from the FNV specification.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_lo(0), 0);
        assert_eq!(Histogram::bucket_lo(1), 1);
        assert_eq!(Histogram::bucket_lo(4), 8);
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 7, 8] {
            h.observe(v);
        }
        assert_eq!(h.counts(), &[1, 1, 2, 1, 1]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.sum(), 21);
        assert_eq!(h.max(), 8);
    }

    #[test]
    fn stream_stats_fold_is_exact_and_order_stable() {
        let empty = StreamStats::new();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);
        assert_eq!(empty.mean(), None);
        let mut s = StreamStats::new();
        for v in [2.0, -1.0, 4.0, -1.0] {
            s.observe(v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(4.0));
        assert_eq!(s.mean(), Some(1.0));
        // Same sequence folded again is bit-identical — the determinism
        // contract streaming conformance leans on.
        let mut t = StreamStats::new();
        for v in [2.0, -1.0, 4.0, -1.0] {
            t.observe(v);
        }
        assert_eq!(s, t);
    }

    #[test]
    fn recorder_builds_a_sealed_trace() {
        let mut r = Recorder::with_trace();
        r.begin_run("toy", 7, 3, None);
        r.on_tick(0.5, 0); // quiet tick: histogrammed, not traced
        r.on_tick(1.0, 2);
        r.on_mode_switch(1.0, 1, true);
        r.on_edge(2.0, 0, 2, false);
        r.on_fault(2.5, 0, 0.25);
        r.on_sample(Sample {
            t: 3.0,
            global_skew: 0.125,
            queue_depth: 9,
            dirty_nodes: 1,
            events: 42,
        });
        let out = r.finish();
        assert_eq!(out.ticks, 2);
        assert_eq!(out.eval_hist.total(), 2);
        let trace = out.trace.expect("trace enabled");
        // run + tick + mode + edge + fault + sample = 6 hashed records.
        assert_eq!(trace.records, 6);
        assert!(trace.text.ends_with('\n'));
        verify_trace(&trace.text).expect("end record verifies");
        assert!(trace.text.contains("\"rec\":\"mode\""));
        assert!(trace.text.contains("\"mode\":\"fast\""));
        assert!(!trace.text.contains("engine"));
    }

    #[test]
    fn shared_recorder_feeds_one_trace_from_both_halves() {
        let shared = SharedRecorder::new(true);
        shared.begin_run("toy", 0, 2, None);
        let mut sink = shared.sink();
        sink.on_tick(1.0, 1);
        shared.on_sample(Sample {
            t: 1.0,
            global_skew: 0.0,
            queue_depth: 0,
            dirty_nodes: 0,
            events: 1,
        });
        drop(sink);
        let out = shared.finish();
        let trace = out.trace.expect("trace enabled");
        assert_eq!(trace.records, 3);
    }

    #[test]
    fn spec_record_embeds_escaped_scenario_text() {
        let mut r = Recorder::with_trace();
        r.begin_run("toy", 7, 3, Some("scenario \"toy\"\nduration 5\n"));
        r.on_est_fault(1.5, 2, -1.0);
        let out = r.finish();
        assert_eq!(out.est_faults, 1);
        assert_eq!(out.faults, 0);
        let trace = out.trace.expect("trace enabled");
        // run + spec + est fault = 3 hashed records.
        assert_eq!(trace.records, 3);
        verify_trace(&trace.text).expect("end record verifies");
        let mut lines = trace.text.lines();
        assert!(lines.next().unwrap().starts_with("{\"rec\":\"run\""));
        let spec = lines.next().unwrap();
        assert_eq!(
            spec,
            "{\"rec\":\"spec\",\"scn\":\"scenario \\\"toy\\\"\\nduration 5\\n\"}"
        );
        let fault = lines.next().unwrap();
        assert_eq!(
            fault,
            "{\"rec\":\"fault\",\"kind\":\"est\",\"t\":1.5,\"node\":2,\"bias\":-1}"
        );
    }

    #[test]
    fn trace_diff_finds_first_divergence_and_length_mismatch() {
        let a = "x\ny\nz\n";
        assert_eq!(trace_diff(a, a), None);
        let d = trace_diff(a, "x\nQ\nz\n").expect("diverges");
        assert_eq!(d.line, 2);
        assert_eq!(d.a.as_deref(), Some("y"));
        assert_eq!(d.b.as_deref(), Some("Q"));
        let d = trace_diff(a, "x\ny\n").expect("short");
        assert_eq!(d.line, 3);
        assert_eq!(d.b, None);
    }

    #[test]
    fn verify_trace_catches_tampering() {
        let mut r = Recorder::with_trace();
        r.begin_run("toy", 1, 1, None);
        r.on_tick(1.0, 1);
        let trace = r.finish().trace.expect("trace");
        verify_trace(&trace.text).expect("clean trace verifies");
        let tampered = trace.text.replace("\"eval\":1", "\"eval\":2");
        assert!(verify_trace(&tampered).is_err());
        assert!(verify_trace("just a line\n").is_err());
    }

    #[test]
    fn local_counters_merge() {
        let mut a = LocalCounters {
            floods: 1,
            deliveries: 2,
            ..LocalCounters::default()
        };
        let b = LocalCounters {
            floods: 10,
            m_jumps: 3,
            ..LocalCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.floods, 11);
        assert_eq!(a.deliveries, 2);
        assert_eq!(a.m_jumps, 3);
        assert!(!a.is_empty());
        assert!(LocalCounters::default().is_empty());
    }
}
