//! Property tests of the scenario subsystem: exact `.scn` round-trips,
//! deterministic builds, the chunked executor vs the sequential path, and
//! exact campaign-artifact JSON round-trips.

use proptest::prelude::*;

use gcs_scenarios::campaign::{campaign_json, CampaignRow, ScenarioOutcome};
use gcs_scenarios::spec::Metric;
use gcs_scenarios::{campaign, format, registry, trend, Scale};

/// Every registry scenario serializes → parses → re-serializes
/// byte-identically (and value-identically).
#[test]
fn every_registry_scenario_round_trips_byte_identically() {
    for spec in registry::all() {
        let text = format::write(&spec);
        let parsed = format::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(parsed, spec, "value round-trip of {}", spec.name);
        let re = format::write(&parsed);
        assert_eq!(re, text, "byte round-trip of {}", spec.name);
    }
}

/// Turns arbitrary bits into a finite float (round-tripping must work for
/// *any* finite value, not just pretty ones).
fn finite(bits: u64) -> f64 {
    let v = f64::from_bits(bits);
    if v.is_finite() {
        v
    } else {
        1.0
    }
}

/// The chunked work-stealing executor must be invisible in the results: a
/// scenario × seed campaign fanned out through `parallel_map` returns
/// bit-identical outcomes to the same jobs run sequentially, in order.
#[test]
fn chunked_parallel_map_matches_the_sequential_path() {
    let specs: Vec<_> = ["line-worstcase", "ring-steady", "self-heal", "flash-join"]
        .iter()
        .map(|n| registry::find(n).expect("built-in").scaled(Scale::Tiny))
        .collect();
    let jobs: Vec<(usize, u64)> = (0..specs.len())
        .flat_map(|i| (0..4u64).map(move |s| (i, s)))
        .collect();
    let run = |(i, seed): (usize, u64)| campaign::run_scenario(&specs[i], seed).unwrap();
    let parallel = gcs_analysis::parallel_map(jobs.clone(), run);
    let sequential: Vec<ScenarioOutcome> = jobs.into_iter().map(run).collect();
    assert_eq!(
        parallel, sequential,
        "work-stealing changed a result or its order"
    );
}

/// `run_campaign` (which fans out through the executor) aggregates the
/// exact same outcomes the sequential per-seed runs produce.
#[test]
fn run_campaign_is_bit_identical_to_sequential_runs() {
    let specs = vec![
        registry::find("self-heal").unwrap().scaled(Scale::Tiny),
        registry::find("hypercube-log").unwrap().scaled(Scale::Tiny),
    ];
    let seeds = [0u64, 1, 2];
    let rows = campaign::run_campaign(&specs, &seeds).unwrap();
    for (spec, row) in specs.iter().zip(&rows) {
        for (&seed, outcome) in seeds.iter().zip(&row.outcomes) {
            let solo = campaign::run_scenario(spec, seed).unwrap();
            assert_eq!(&solo, outcome, "{} seed {seed} diverged", spec.name);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// `build(seed)` is deterministic: two runs from the same spec + seed
    /// produce identical skew trajectories (and every other outcome field).
    #[test]
    fn builds_are_deterministic(idx in any::<u64>(), seed in 0u64..1_000) {
        let specs = registry::all();
        let spec = specs[(idx as usize) % specs.len()].scaled(Scale::Tiny);
        let a = campaign::run_scenario(&spec, seed).unwrap();
        let b = campaign::run_scenario(&spec, seed).unwrap();
        prop_assert!(!a.trajectory.is_empty());
        prop_assert_eq!(&a.trajectory, &b.trajectory, "skew traces diverged for {}", spec.name);
        prop_assert_eq!(a, b);
    }

    /// The writer/parser pair is exact for arbitrary finite floats in the
    /// numeric fields, not only for the registry's round numbers.
    #[test]
    fn arbitrary_floats_round_trip(
        idx in any::<u64>(),
        rho_bits in any::<u64>(),
        warm_bits in any::<u64>(),
        g_bits in any::<u64>(),
    ) {
        let specs = registry::all();
        let mut spec = specs[(idx as usize) % specs.len()].clone();
        spec.rho = finite(rho_bits);
        spec.warmup = finite(warm_bits);
        spec.g_tilde = Some(finite(g_bits));
        // Round-tripping is a property of the format alone; the spec need
        // not be semantically valid.
        let text = format::write(&spec);
        let parsed = format::parse(&text).unwrap();
        prop_assert_eq!(&parsed, &spec);
        prop_assert_eq!(format::write(&parsed), text);
    }

    /// The parser never panics, whatever prefix of a canonical file it
    /// sees (canonical text is ASCII, so byte slicing is safe).
    #[test]
    fn parser_survives_truncation(idx in any::<u64>(), cut in 0usize..600) {
        let specs = registry::all();
        let text = format::write(&specs[(idx as usize) % specs.len()]);
        prop_assert!(text.is_ascii());
        let prefix = &text[..cut.min(text.len())];
        let _ = format::parse(prefix); // Ok or Err, never a panic.
    }

    /// The trend reader inverts the campaign writer bit-exactly — for
    /// *arbitrary* finite metric values, not just the pretty ones real
    /// runs produce (shortest round-trip float formatting + correctly
    /// rounded parsing).
    #[test]
    fn campaign_artifact_json_round_trips(
        seeds in proptest::collection::vec(any::<u64>(), 1..4),
        bits in proptest::collection::vec(any::<u64>(), 8),
        counts in proptest::collection::vec(any::<u64>(), 4),
    ) {
        // Clamped so the ensemble aggregation itself stays finite
        // (a variance of (1e308)^2 overflows; real metrics are tiny).
        let v = |i: usize| finite(bits[i % bits.len()]).abs().min(1e100);
        let outcomes: Vec<ScenarioOutcome> = seeds
            .iter()
            .enumerate()
            .map(|(k, &seed)| ScenarioOutcome {
                seed,
                primary: v(k),
                max_global_skew: v(k + 1),
                max_local_skew: v(k + 2),
                final_global_skew: v(k + 3),
                invariant_violations: counts[k % counts.len()],
                messages_sent: counts[(k + 1) % counts.len()],
                messages_delivered: counts[(k + 2) % counts.len()],
                messages_dropped: counts[(k + 3) % counts.len()],
                events: counts[(k + 4) % counts.len()],
                ticks: counts[(k + 5) % counts.len()],
                mode_evaluations: counts[(k + 6) % counts.len()],
                trajectory: (0..3).map(|j| (j as f64 * 0.5, v(k + j))).collect(),
            })
            .collect();
        let primaries: Vec<f64> = outcomes.iter().map(|o| o.primary).collect();
        let rows = vec![CampaignRow {
            name: "prop-row".to_string(),
            nodes: 12,
            metric: Metric::GlobalSkew,
            stats: gcs_analysis::EnsembleStats::from_values(&primaries),
            outcomes,
        }];
        let text = campaign_json("prop", Scale::Tiny, &seeds, &rows);
        let artifact = trend::read_campaign(&text).unwrap();
        prop_assert_eq!(&artifact.seeds, &seeds);
        prop_assert_eq!(&artifact.rows, &rows);
    }

    /// Envelope distillation is invariant to trajectory sample order and
    /// duplication: any permutation with any subset duplicated gives the
    /// bit-identical envelope.
    #[test]
    fn envelope_invariant_to_order_and_duplication(
        bits in proptest::collection::vec(any::<u64>(), 2..24),
        perm_seed in any::<u64>(),
        dup_mask in any::<u32>(),
    ) {
        let traj: Vec<(f64, f64)> = bits
            .iter()
            .enumerate()
            .map(|(i, &b)| (i as f64 * 0.5, finite(b).abs().min(1e100)))
            .collect();
        let base = trend::envelope(&traj);
        // Deterministic pseudo-shuffle + duplication.
        let mut mangled = traj.clone();
        let mut state = perm_seed | 1;
        for i in (1..mangled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            mangled.swap(i, (state >> 33) as usize % (i + 1));
        }
        for (i, &p) in traj.iter().enumerate() {
            if dup_mask & (1 << (i % 32)) != 0 {
                mangled.push(p);
            }
        }
        let got = trend::envelope(&mangled);
        prop_assert_eq!(got, base);
        prop_assert_eq!(got.peak.to_bits(), base.peak.to_bits(), "peak must be bit-identical");
        prop_assert_eq!(got.recovery_slope.to_bits(), base.recovery_slope.to_bits());
    }

    /// `gcs-baseline/v2` documents round-trip bit-exactly for arbitrary
    /// finite stats, envelope values, and tolerance fractions.
    #[test]
    fn baseline_v2_json_round_trips_bit_exactly(
        bits in proptest::collection::vec(any::<u64>(), 10),
        tol_bits in any::<u64>(),
        runs in 1u64..16,
    ) {
        let v = |i: usize| finite(bits[i % bits.len()]);
        let summary = trend::TrendSummary {
            campaign: "prop".to_string(),
            scale: "tiny".to_string(),
            seeds: vec![0, 1],
            rows: vec![trend::TrendRow {
                name: "prop-row".to_string(),
                nodes: 8,
                metric: "global-skew".to_string(),
                runs,
                mean_primary: v(0),
                p90_primary: v(1),
                mean_global: v(2),
                p90_global: v(3),
                mean_local: v(4),
                p90_local: v(5),
                mean_stabilization: v(6),
                envelope: Some(trend::EnvelopeStats {
                    mean_peak_time: v(7),
                    mean_growth_slope: v(8),
                    mean_recovery_slope: v(9),
                }),
            }],
            tolerances: vec![("prop-row".to_string(), finite(tol_bits).abs().min(1e100))],
        };
        let text = trend::baseline_json(&summary);
        let back = trend::read_baseline(&text).unwrap();
        prop_assert_eq!(&back, &summary, "value round-trip");
        prop_assert_eq!(trend::baseline_json(&back), text, "byte round-trip");
    }
}

/// The exact v1 document PR 3's writer would emit for a tiny two-scenario
/// campaign still parses — and gates — against a fresh v2 summary.
#[test]
fn legacy_v1_baseline_gates_a_fresh_campaign() {
    let specs = vec![registry::find("line-worstcase")
        .unwrap()
        .scaled(Scale::Tiny)];
    let seeds = [0u64, 1];
    let rows = campaign::run_campaign(&specs, &seeds).unwrap();
    let current = trend::TrendSummary::from_rows("all", Scale::Tiny, &seeds, &rows);
    // Hand-build the v1 text from the current values (what a PR 3 file
    // would hold had behaviour not changed).
    let r = &current.rows[0];
    let v1 = format!(
        "{{\"format\":\"gcs-baseline/v1\",\"campaign\":\"all\",\"scale\":\"tiny\",\
         \"seeds\":[0,1],\"scenarios\":[\n\
         {{\"name\":\"{}\",\"nodes\":{},\"metric\":\"{}\",\"runs\":{},\
         \"mean_primary\":{},\"p90_primary\":{},\"mean_global_skew\":{},\
         \"p90_global_skew\":{},\"mean_local_skew\":{},\"p90_local_skew\":{},\
         \"mean_stabilization\":{}}}\n]}}\n",
        r.name,
        r.nodes,
        r.metric,
        r.runs,
        r.mean_primary,
        r.p90_primary,
        r.mean_global,
        r.p90_global,
        r.mean_local,
        r.p90_local,
        r.mean_stabilization,
    );
    let baseline = trend::read_baseline(&v1).expect("v1 parses");
    assert!(baseline.rows[0].envelope.is_none());
    let report = trend::compare(&baseline, &current, 0.05);
    assert!(report.passed(), "{:?}", report.findings);
}
