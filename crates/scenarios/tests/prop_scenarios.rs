//! Property tests of the scenario subsystem: exact `.scn` round-trips and
//! deterministic builds.

use proptest::prelude::*;

use gcs_scenarios::{campaign, format, registry, Scale};

/// Every registry scenario serializes → parses → re-serializes
/// byte-identically (and value-identically).
#[test]
fn every_registry_scenario_round_trips_byte_identically() {
    for spec in registry::all() {
        let text = format::write(&spec);
        let parsed = format::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        assert_eq!(parsed, spec, "value round-trip of {}", spec.name);
        let re = format::write(&parsed);
        assert_eq!(re, text, "byte round-trip of {}", spec.name);
    }
}

/// Turns arbitrary bits into a finite float (round-tripping must work for
/// *any* finite value, not just pretty ones).
fn finite(bits: u64) -> f64 {
    let v = f64::from_bits(bits);
    if v.is_finite() {
        v
    } else {
        1.0
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// `build(seed)` is deterministic: two runs from the same spec + seed
    /// produce identical skew trajectories (and every other outcome field).
    #[test]
    fn builds_are_deterministic(idx in any::<u64>(), seed in 0u64..1_000) {
        let specs = registry::all();
        let spec = specs[(idx as usize) % specs.len()].scaled(Scale::Tiny);
        let a = campaign::run_scenario(&spec, seed).unwrap();
        let b = campaign::run_scenario(&spec, seed).unwrap();
        prop_assert!(!a.trajectory.is_empty());
        prop_assert_eq!(&a.trajectory, &b.trajectory, "skew traces diverged for {}", spec.name);
        prop_assert_eq!(a, b);
    }

    /// The writer/parser pair is exact for arbitrary finite floats in the
    /// numeric fields, not only for the registry's round numbers.
    #[test]
    fn arbitrary_floats_round_trip(
        idx in any::<u64>(),
        rho_bits in any::<u64>(),
        warm_bits in any::<u64>(),
        g_bits in any::<u64>(),
    ) {
        let specs = registry::all();
        let mut spec = specs[(idx as usize) % specs.len()].clone();
        spec.rho = finite(rho_bits);
        spec.warmup = finite(warm_bits);
        spec.g_tilde = Some(finite(g_bits));
        // Round-tripping is a property of the format alone; the spec need
        // not be semantically valid.
        let text = format::write(&spec);
        let parsed = format::parse(&text).unwrap();
        prop_assert_eq!(&parsed, &spec);
        prop_assert_eq!(format::write(&parsed), text);
    }

    /// The parser never panics, whatever prefix of a canonical file it
    /// sees (canonical text is ASCII, so byte slicing is safe).
    #[test]
    fn parser_survives_truncation(idx in any::<u64>(), cut in 0usize..600) {
        let specs = registry::all();
        let text = format::write(&specs[(idx as usize) % specs.len()]);
        prop_assert!(text.is_ascii());
        let prefix = &text[..cut.min(text.len())];
        let _ = format::parse(prefix); // Ok or Err, never a panic.
    }
}
