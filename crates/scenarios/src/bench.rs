//! Engine-throughput benchmarking: drive registry scenarios end to end,
//! measure wall-clock and events/second, and emit the machine-readable
//! `BENCH_engine.json` artifact (`gcs-engine-bench/v1`) that the repo's
//! bench trajectory tracks across PRs.
//!
//! This is deliberately *not* a statistics campaign: runs execute
//! sequentially (wall-clock timing must not share cores), skip the
//! observation sampling grid, and report engine counters
//! ([`SimStats`](gcs_core::SimStats)) next to the timings, so a throughput
//! regression can be attributed (more events? slower events? more mode
//! evaluations?) straight from the artifact.

use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use crate::error::ScenarioError;
use crate::json::Json;
use crate::spec::{Scale, ScenarioSpec};

/// The artifact format tag.
pub const BENCH_FORMAT: &str = "gcs-engine-bench/v1";

/// One scenario × seed engine-throughput measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Scenario name.
    pub scenario: String,
    /// Node count after scaling.
    pub nodes: usize,
    /// Run seed.
    pub seed: u64,
    /// Worker thread count: 1 = the sequential reference engine, >1 = the
    /// parallel sharded engine with that many shards.
    pub threads: usize,
    /// Simulated seconds driven (`warmup + duration`).
    pub sim_secs: f64,
    /// Wall-clock seconds to build the simulation.
    pub build_secs: f64,
    /// Wall-clock seconds to drive it to the end.
    pub wall_secs: f64,
    /// Events processed.
    pub events: u64,
    /// Throughput: `events / wall_secs`.
    pub events_per_sec: f64,
    /// Tick events processed.
    pub ticks: u64,
    /// Per-node mode decisions actually evaluated (`ticks × nodes` minus
    /// what the dirty-set/stability-certificate machinery skipped).
    pub mode_evaluations: u64,
    /// Messages delivered.
    pub messages_delivered: u64,
}

/// Runs one scenario once, for throughput: build, replay scripted faults,
/// drive to the end instant, and time it. No observation sampling.
///
/// # Errors
///
/// Returns [`ScenarioError`] if the spec fails to validate or build.
pub fn run_one(
    spec: &ScenarioSpec,
    seed: u64,
    threads: usize,
) -> Result<BenchEntry, ScenarioError> {
    let built = Instant::now();
    enum Built {
        Sequential(gcs_core::Simulation),
        Sharded(gcs_core::ParallelSimulation),
    }
    let mut sim = if threads <= 1 {
        Built::Sequential(spec.build(seed)?)
    } else {
        let engine = gcs_core::ParallelSimBuilder::new(spec.builder(seed)?)
            .shards(threads)
            .build()
            .map_err(|e| ScenarioError::Invalid(format!("{}: {e}", spec.name)))?;
        Built::Sharded(engine)
    };
    let build_secs = built.elapsed().as_secs_f64();

    let end = spec.end_secs();
    let started = Instant::now();
    let stats = match &mut sim {
        Built::Sequential(sim) => {
            crate::campaign::apply_faults(sim, &spec.faults);
            sim.run_until_secs(end);
            sim.stats()
        }
        Built::Sharded(sim) => {
            crate::campaign::apply_faults(sim, &spec.faults);
            sim.run_until_secs(end);
            sim.stats()
        }
    };
    let wall_secs = started.elapsed().as_secs_f64();

    let nodes = match &sim {
        Built::Sequential(sim) => sim.node_count(),
        Built::Sharded(sim) => sim.node_count(),
    };
    Ok(BenchEntry {
        scenario: spec.name.clone(),
        nodes,
        seed,
        threads: threads.max(1),
        sim_secs: end,
        build_secs,
        wall_secs,
        events: stats.events,
        events_per_sec: stats.events as f64 / wall_secs.max(1e-9),
        ticks: stats.ticks,
        mode_evaluations: stats.mode_evaluations,
        messages_delivered: stats.messages_delivered,
    })
}

/// Runs `specs × seeds` sequentially (never in parallel — the timings are
/// the point) and returns the entries in input order. Each combination is
/// driven `repeat` times and the fastest wall-clock run is kept — the
/// standard way to strip scheduler noise from a throughput number; the
/// engine counters are asserted identical across repetitions (determinism
/// cross-check for free).
///
/// # Errors
///
/// Returns the first [`ScenarioError`] any run produced.
///
/// # Panics
///
/// Panics if `repeat` is zero, or if two repetitions of the same seeded
/// run disagree on any engine counter (a determinism bug).
pub fn run_suite(
    specs: &[ScenarioSpec],
    seeds: &[u64],
    threads: &[usize],
    repeat: u32,
) -> Result<Vec<BenchEntry>, ScenarioError> {
    assert!(repeat > 0, "need at least one repetition");
    assert!(!threads.is_empty(), "need at least one thread count");
    let mut entries = Vec::with_capacity(specs.len() * seeds.len() * threads.len());
    for spec in specs {
        for &seed in seeds {
            let mut per_thread: Vec<BenchEntry> = Vec::with_capacity(threads.len());
            for &t in threads {
                let mut best = run_one(spec, seed, t)?;
                for _ in 1..repeat {
                    let again = run_one(spec, seed, t)?;
                    assert_eq!(
                        (again.events, again.ticks, again.mode_evaluations),
                        (best.events, best.ticks, best.mode_evaluations),
                        "{} seed {seed} threads {t}: engine counters diverged across repetitions",
                        spec.name
                    );
                    if again.wall_secs < best.wall_secs {
                        best = again;
                    }
                }
                per_thread.push(best);
            }
            // Cross-engine determinism for free: every thread count must
            // agree on every deterministic counter.
            for e in &per_thread[1..] {
                assert_eq!(
                    (e.events, e.ticks, e.mode_evaluations, e.messages_delivered),
                    (
                        per_thread[0].events,
                        per_thread[0].ticks,
                        per_thread[0].mode_evaluations,
                        per_thread[0].messages_delivered
                    ),
                    "{} seed {seed}: counters diverged between {} and {} threads",
                    spec.name,
                    per_thread[0].threads,
                    e.threads
                );
            }
            entries.append(&mut per_thread);
        }
    }
    Ok(entries)
}

/// Serializes a bench suite to the `gcs-engine-bench/v1` JSON artifact.
#[must_use]
pub fn bench_json(scale: Scale, seeds: &[u64], entries: &[BenchEntry]) -> String {
    let entry_json = |e: &BenchEntry| {
        Json::Obj(vec![
            ("scenario", Json::Str(e.scenario.clone())),
            ("nodes", Json::Int(e.nodes as u64)),
            ("seed", Json::Int(e.seed)),
            ("threads", Json::Int(e.threads as u64)),
            ("sim_secs", Json::Num(e.sim_secs)),
            ("build_secs", Json::Num(e.build_secs)),
            ("wall_secs", Json::Num(e.wall_secs)),
            ("events", Json::Int(e.events)),
            ("events_per_sec", Json::Num(e.events_per_sec)),
            ("ticks", Json::Int(e.ticks)),
            ("mode_evaluations", Json::Int(e.mode_evaluations)),
            ("messages_delivered", Json::Int(e.messages_delivered)),
        ])
    };
    let head = Json::Obj(vec![
        ("format", Json::Str(BENCH_FORMAT.to_string())),
        ("scale", Json::Str(scale.name().to_string())),
        (
            "seeds",
            Json::Arr(seeds.iter().map(|&s| Json::Int(s)).collect()),
        ),
    ]);
    // One entry per line so checked-in artifacts diff cleanly.
    let head = head.to_string();
    let mut out = String::new();
    out.push_str(&head[..head.len() - 1]);
    out.push_str(",\"entries\":[\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&entry_json(e).to_string());
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// A fully parsed `gcs-engine-bench/v1` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArtifact {
    /// Scale token the suite ran at.
    pub scale: String,
    /// Seed list.
    pub seeds: Vec<u64>,
    /// Per-scenario × seed entries, in artifact order.
    pub entries: Vec<BenchEntry>,
}

/// Parses a `gcs-engine-bench/v1` artifact back into its entries.
///
/// # Errors
///
/// Returns a message on malformed JSON, a wrong `format` tag, or a
/// missing/mistyped field.
pub fn read_bench(text: &str) -> Result<BenchArtifact, String> {
    use crate::json::{self, arr_field, f64_field, str_field, u64_field};
    let doc = json::parse(text)?;
    let format = str_field(&doc, "format", "bench artifact")?;
    if format != BENCH_FORMAT {
        return Err(format!("expected format {BENCH_FORMAT:?}, got {format:?}"));
    }
    let seeds = arr_field(&doc, "seeds", "bench artifact")?
        .iter()
        .map(|s| s.as_u64().ok_or_else(|| "non-integer seed".to_string()))
        .collect::<Result<Vec<u64>, String>>()?;
    let mut entries = Vec::new();
    for e in arr_field(&doc, "entries", "bench artifact")? {
        let scenario = str_field(e, "scenario", "bench entry")?;
        let what = format!("bench entry {scenario:?}");
        entries.push(BenchEntry {
            nodes: usize::try_from(u64_field(e, "nodes", &what)?)
                .map_err(|err| format!("{what}: {err}"))?,
            seed: u64_field(e, "seed", &what)?,
            // Absent in pre-threads artifacts: those rows ran the
            // sequential engine.
            threads: e
                .get("threads")
                .map_or(Ok(1u64), |v| {
                    v.as_u64()
                        .ok_or_else(|| format!("{what}: non-integer threads"))
                })
                .and_then(|v| usize::try_from(v).map_err(|err| format!("{what}: {err}")))?,
            sim_secs: f64_field(e, "sim_secs", &what)?,
            build_secs: f64_field(e, "build_secs", &what)?,
            wall_secs: f64_field(e, "wall_secs", &what)?,
            events: u64_field(e, "events", &what)?,
            events_per_sec: f64_field(e, "events_per_sec", &what)?,
            ticks: u64_field(e, "ticks", &what)?,
            mode_evaluations: u64_field(e, "mode_evaluations", &what)?,
            messages_delivered: u64_field(e, "messages_delivered", &what)?,
            scenario,
        });
    }
    Ok(BenchArtifact {
        scale: str_field(&doc, "scale", "bench artifact")?,
        seeds,
        entries,
    })
}

/// One counter mismatch between two bench artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterFinding {
    /// Scenario name.
    pub scenario: String,
    /// Run seed.
    pub seed: u64,
    /// Worker thread count of the run.
    pub threads: usize,
    /// Which counter diverged (or a structural problem: `missing entry`,
    /// `new entry`, `nodes`).
    pub counter: &'static str,
    /// Baseline value (`u64::MAX` for structural findings).
    pub baseline: u64,
    /// Current value (`u64::MAX` for structural findings).
    pub current: u64,
}

/// The outcome of an exact counter comparison: a printable table plus
/// every mismatch.
#[derive(Debug)]
pub struct BenchCompareReport {
    /// One row per baseline entry, counters side by side.
    pub table: gcs_analysis::Table,
    /// Mismatches (empty ⇒ gate passes).
    pub findings: Vec<CounterFinding>,
}

impl BenchCompareReport {
    /// Whether the gate passes.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Compares the *deterministic engine counters* of two bench artifacts
/// **exactly** — `events`, `ticks`, `mode_evaluations`, and
/// `messages_delivered` are pure functions of scenario + seed + code, so
/// any divergence is a real behavioural change even where wall-clock is
/// noise. Entries are matched by `(scenario, seed, threads)`; wall-clock
/// and throughput columns are reported but never gated.
///
/// With `subset` the gate only requires the *baseline entries that the
/// current artifact also ran* to match — entries the current run skipped
/// are reported but not failed. This is for partial reruns (e.g. a CI
/// smoke that benches a single thread count against the full checked-in
/// artifact). Current-only entries are still findings in both modes, and
/// an empty intersection always fails: a gate that compared nothing has
/// not verified anything.
#[must_use]
pub fn compare_counters(
    baseline: &BenchArtifact,
    current: &BenchArtifact,
    subset: bool,
) -> BenchCompareReport {
    let mut findings = Vec::new();
    let mut matched = 0usize;
    let mut table = gcs_analysis::Table::new(
        format!(
            "engine counter gate — scale {} vs baseline scale {}{}",
            current.scale,
            baseline.scale,
            if subset { " (subset)" } else { "" }
        ),
        &[
            "scenario", "seed", "thr", "counter", "baseline", "current", "status",
        ],
    );
    table.caption(
        "events/ticks/mode_evaluations/messages_delivered are deterministic per \
         (scenario, seed): gated exactly. wall_secs is scheduler noise: reported \
         in the artifact, never gated.",
    );
    for base in &baseline.entries {
        let Some(cur) = current.entries.iter().find(|e| {
            e.scenario == base.scenario && e.seed == base.seed && e.threads == base.threads
        }) else {
            if !subset {
                findings.push(CounterFinding {
                    scenario: base.scenario.clone(),
                    seed: base.seed,
                    threads: base.threads,
                    counter: "missing entry",
                    baseline: u64::MAX,
                    current: u64::MAX,
                });
            }
            table.row([
                base.scenario.clone(),
                base.seed.to_string(),
                base.threads.to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                if subset { "skipped" } else { "MISSING" }.to_string(),
            ]);
            continue;
        };
        matched += 1;
        let pairs: [(&'static str, u64, u64); 5] = [
            ("nodes", base.nodes as u64, cur.nodes as u64),
            ("events", base.events, cur.events),
            ("ticks", base.ticks, cur.ticks),
            (
                "mode_evaluations",
                base.mode_evaluations,
                cur.mode_evaluations,
            ),
            (
                "messages_delivered",
                base.messages_delivered,
                cur.messages_delivered,
            ),
        ];
        for (counter, b, c) in pairs {
            let ok = b == c;
            table.row([
                base.scenario.clone(),
                base.seed.to_string(),
                base.threads.to_string(),
                counter.to_string(),
                b.to_string(),
                c.to_string(),
                if ok { "ok" } else { "MISMATCH" }.to_string(),
            ]);
            if !ok {
                findings.push(CounterFinding {
                    scenario: base.scenario.clone(),
                    seed: base.seed,
                    threads: base.threads,
                    counter,
                    baseline: b,
                    current: c,
                });
            }
        }
    }
    for cur in &current.entries {
        if !baseline
            .entries
            .iter()
            .any(|e| e.scenario == cur.scenario && e.seed == cur.seed && e.threads == cur.threads)
        {
            findings.push(CounterFinding {
                scenario: cur.scenario.clone(),
                seed: cur.seed,
                threads: cur.threads,
                counter: "new entry (refresh the baseline)",
                baseline: u64::MAX,
                current: u64::MAX,
            });
        }
    }
    if matched == 0 {
        findings.push(CounterFinding {
            scenario: "(whole artifact)".to_string(),
            seed: 0,
            threads: 0,
            counter: "no overlapping entries: gate compared nothing",
            baseline: u64::MAX,
            current: u64::MAX,
        });
    }
    BenchCompareReport { table, findings }
}

/// Writes the artifact to `path`, creating parent directories as needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bench(
    path: &Path,
    scale: Scale,
    seeds: &[u64],
    entries: &[BenchEntry],
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(bench_json(scale, seeds, entries).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn bench_runs_and_serializes() {
        let spec = registry::find("ring-steady")
            .expect("built-in")
            .scaled(Scale::Tiny);
        let entries = run_suite(std::slice::from_ref(&spec), &[0, 1], &[1, 2], 2).unwrap();
        assert_eq!(entries.len(), 4, "one row per (seed, threads)");
        for e in &entries {
            assert_eq!(e.scenario, "ring-steady");
            assert!(e.events > 0);
            assert!(e.events_per_sec > 0.0);
            assert!(e.ticks > 0);
            assert!(e.mode_evaluations > 0);
        }
        // run_suite itself asserts counters match across thread counts;
        // double-check the rows landed as (seed 0, t1), (seed 0, t2), ...
        assert_eq!(
            entries
                .iter()
                .map(|e| (e.seed, e.threads))
                .collect::<Vec<_>>(),
            vec![(0, 1), (0, 2), (1, 1), (1, 2)]
        );
        // Same seed twice: identical engine counters (timings differ).
        let again = run_one(&spec, 0, 1).unwrap();
        assert_eq!(again.events, entries[0].events);
        assert_eq!(again.mode_evaluations, entries[0].mode_evaluations);
        let json = bench_json(Scale::Tiny, &[0, 1], &entries);
        assert!(json.starts_with("{\"format\":\"gcs-engine-bench/v1\""));
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains("\"threads\":2"));
        assert!(json.ends_with("]}\n"));
    }

    #[test]
    fn bench_reader_inverts_the_writer() {
        let spec = registry::find("line-worstcase")
            .expect("built-in")
            .scaled(Scale::Tiny);
        let entries = run_suite(std::slice::from_ref(&spec), &[0, 1], &[1, 2], 1).unwrap();
        let text = bench_json(Scale::Tiny, &[0, 1], &entries);
        let artifact = read_bench(&text).unwrap();
        assert_eq!(artifact.scale, "tiny");
        assert_eq!(artifact.seeds, vec![0, 1]);
        assert_eq!(
            artifact.entries, entries,
            "parsed entries must be bit-identical"
        );
        // Pre-threads artifacts (no "threads" key) parse as sequential rows.
        let legacy = text
            .replace(",\"threads\":1", "")
            .replace(",\"threads\":2", "");
        assert!(!legacy.contains("\"threads\""));
        let parsed = read_bench(&legacy).unwrap();
        assert!(parsed.entries.iter().all(|e| e.threads == 1));
    }

    #[test]
    fn counter_gate_is_exact() {
        let spec = registry::find("line-worstcase")
            .expect("built-in")
            .scaled(Scale::Tiny);
        let entries = run_suite(std::slice::from_ref(&spec), &[0], &[1], 1).unwrap();
        let artifact = read_bench(&bench_json(Scale::Tiny, &[0], &entries)).unwrap();
        // Identical runs pass; wall-clock differences are ignored.
        let mut rerun = artifact.clone();
        rerun.entries[0].wall_secs *= 10.0;
        rerun.entries[0].events_per_sec /= 10.0;
        let report = compare_counters(&artifact, &rerun, false);
        assert!(report.passed(), "{:?}", report.findings);
        // A single off-by-one event count fails the gate exactly.
        let mut drifted = artifact.clone();
        drifted.entries[0].events += 1;
        let report = compare_counters(&artifact, &drifted, false);
        assert!(!report.passed());
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].counter, "events");
        assert!(report.table.to_string().contains("MISMATCH"));
        // Entry-set mismatches are structural findings in both directions.
        let empty = BenchArtifact {
            scale: "tiny".to_string(),
            seeds: vec![0],
            entries: Vec::new(),
        };
        assert!(compare_counters(&artifact, &empty, false)
            .findings
            .iter()
            .any(|f| f.counter == "missing entry"));
        assert!(compare_counters(&empty, &artifact, false)
            .findings
            .iter()
            .any(|f| f.counter.starts_with("new entry")));
    }

    #[test]
    fn subset_gate_skips_missing_rows_but_never_passes_on_nothing() {
        let spec = registry::find("line-worstcase")
            .expect("built-in")
            .scaled(Scale::Tiny);
        let full = run_suite(std::slice::from_ref(&spec), &[0], &[1, 2], 1).unwrap();
        let baseline = read_bench(&bench_json(Scale::Tiny, &[0], &full)).unwrap();
        // A partial rerun covering only the 2-thread row.
        let partial = BenchArtifact {
            scale: "tiny".to_string(),
            seeds: vec![0],
            entries: vec![full[1].clone()],
        };
        assert!(!compare_counters(&baseline, &partial, false).passed());
        let report = compare_counters(&baseline, &partial, true);
        assert!(report.passed(), "{:?}", report.findings);
        assert!(report.table.to_string().contains("skipped"));
        // Subset rows that DID run are still gated exactly.
        let mut drifted = partial.clone();
        drifted.entries[0].messages_delivered += 1;
        let report = compare_counters(&baseline, &drifted, true);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].counter, "messages_delivered");
        // An empty intersection is a failure even in subset mode.
        let unrelated = BenchArtifact {
            scale: "tiny".to_string(),
            seeds: vec![9],
            entries: Vec::new(),
        };
        let report = compare_counters(&baseline, &unrelated, true);
        assert!(!report.passed());
        assert!(report
            .findings
            .iter()
            .any(|f| f.counter.contains("compared nothing")));
    }

    #[test]
    fn bench_includes_scripted_faults() {
        // The fault replay is part of the driven workload: the scenario
        // must still run to its end instant.
        let spec = registry::find("self-heal")
            .expect("built-in")
            .scaled(Scale::Tiny);
        let e = run_one(&spec, 3, 1).unwrap();
        assert!((e.sim_secs - spec.end_secs()).abs() < 1e-12);
        assert!(e.events > 0);
    }
}
