//! Error type shared by the spec, format, and campaign layers.

use gcs_core::{BuildError, ParamsError};

/// Everything that can go wrong turning a scenario into a running
/// simulation: a malformed `.scn` file, an out-of-range spec, parameter
/// validation, or the simulation builder itself.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// A `.scn` line failed to parse (1-based line number).
    Parse {
        /// Line number the error was detected on.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The spec is structurally valid but semantically out of range.
    Invalid(String),
    /// The algorithm parameters were rejected.
    Params(ParamsError),
    /// The simulation builder rejected the compiled scenario.
    Build(BuildError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Parse { line, message } => write!(f, "line {line}: {message}"),
            ScenarioError::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
            ScenarioError::Params(e) => write!(f, "parameters: {e}"),
            ScenarioError::Build(e) => write!(f, "build: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<ParamsError> for ScenarioError {
    fn from(e: ParamsError) -> Self {
        ScenarioError::Params(e)
    }
}

impl From<BuildError> for ScenarioError {
    fn from(e: BuildError) -> Self {
        ScenarioError::Build(e)
    }
}
