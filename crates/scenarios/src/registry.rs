//! The built-in registry: named, validated scenarios spanning every
//! topology family and dynamics generator the subsystem supports.
//!
//! These are the canonical workloads — the `scenarios/` directory at the
//! repo root holds their canonical `.scn` serializations (regenerate with
//! `gcs-scenarios export scenarios/`), the examples build from them, and
//! `gcs-scenarios run all` sweeps the lot.

use crate::presets;
use crate::spec::{DriftSpec, DynamicsSpec, EstimateSpec, Metric, ScenarioSpec, TopologySpec};

/// All built-in scenarios, sorted by name. Every entry passes
/// [`ScenarioSpec::validate`] at every [`Scale`](crate::Scale) (enforced
/// by tests).
#[must_use]
pub fn all() -> Vec<ScenarioSpec> {
    let mut specs = vec![
        adversarial_corruption(),
        adversarial_partition(),
        ring_steady(),
        line_worstcase(),
        grid_sensor(),
        torus_messages(),
        geometric_dense(),
        small_world_hub(),
        scale_free_hubs(),
        hypercube_log(),
        churn_storm(),
        churn_burst(),
        byzantine_est(),
        flash_join(),
        ring_chord(),
        line_shortcut(),
        partition_heal(),
        mobile_swarm(),
        drift_flip(),
        self_heal(),
        ring_1k(),
        geometric_4k(),
        ring_100k(),
        geometric_100k(),
    ];
    specs.sort_by(|a, b| a.name.cmp(&b.name));
    specs
}

/// The default campaign set: every built-in except the `bench`-class
/// engine-scale scenarios. This is what `gcs-scenarios run all` sweeps and
/// what the CI regression gate pins, so growing the bench family never
/// invalidates the checked-in campaign baseline.
#[must_use]
pub fn campaign() -> Vec<ScenarioSpec> {
    all().into_iter().filter(|s| !s.bench).collect()
}

/// The `bench`-class engine-scale scenarios (`gcs-scenarios bench` sweeps
/// these alongside the campaign set).
#[must_use]
pub fn bench() -> Vec<ScenarioSpec> {
    all().into_iter().filter(|s| s.bench).collect()
}

/// The fault-heavy subset of the campaign: every scenario with scripted
/// clock corruptions or non-static dynamics. This is what the nightly
/// conformance trend runs at default scale — the runs where the envelope
/// allowances (fault credit, insertion widening, partition terms) are
/// actually exercised.
#[must_use]
pub fn fault_heavy() -> Vec<ScenarioSpec> {
    campaign()
        .into_iter()
        .filter(|s| !s.faults.is_empty() || s.dynamics.kind() != "static")
        .collect()
}

/// Looks up a built-in scenario by name.
#[must_use]
pub fn find(name: &str) -> Option<ScenarioSpec> {
    all().into_iter().find(|s| s.name == name)
}

/// Resolves a CLI selection token into a scenario list: a named set
/// (`all`, `campaign`, `bench`, `fault-heavy`), a single scenario name, or
/// a comma-separated list of either. Order follows the selection; exact
/// duplicates are kept (the caller asked twice).
///
/// # Errors
///
/// Returns a message naming the unknown token — an unknown or misspelled
/// scenario is a hard error, never an empty sweep.
pub fn select(selection: &str) -> Result<Vec<ScenarioSpec>, String> {
    let mut specs = Vec::new();
    for token in selection.split(',') {
        let token = token.trim();
        match token {
            "" => return Err("empty scenario selection token".to_string()),
            "all" => specs.extend(all()),
            "campaign" => specs.extend(campaign()),
            "bench" => specs.extend(bench()),
            "fault-heavy" => specs.extend(fault_heavy()),
            name => match find(name) {
                Some(s) => specs.push(s),
                None => {
                    return Err(format!(
                        "unknown scenario or set {name:?} (sets: all, campaign, bench, \
                         fault-heavy; `list` prints scenario names)"
                    ))
                }
            },
        }
    }
    if specs.is_empty() {
        return Err("selection matched no scenarios".to_string());
    }
    Ok(specs)
}

/// Best-found schedules from `gcs-scenarios chaos-search`, checked in as
/// canonical `.scn` data rather than re-coded by hand: the adversary's
/// output *is* the scenario, and re-running the ratchet workflow
/// (search → export → regenerate baselines) replaces the file wholesale.
/// Parsing is infallible for checked-in canonical files — the registry
/// tests and `validate scenarios/` both cover them.
fn adversarial(scn: &str) -> ScenarioSpec {
    crate::format::parse(scn).expect("checked-in adversarial schedule parses")
}

fn adversarial_corruption() -> ScenarioSpec {
    adversarial(include_str!(
        "../../../scenarios/adversarial-corruption.scn"
    ))
}

fn adversarial_partition() -> ScenarioSpec {
    adversarial(include_str!("../../../scenarios/adversarial-partition.scn"))
}

fn ring_steady() -> ScenarioSpec {
    let mut s = presets::base("ring-steady", TopologySpec::Ring { n: 8 });
    s.description =
        "Steady-state ring under alternating worst-case drift (the quickstart scenario)"
            .to_string();
    s.drift = DriftSpec::Alternating;
    s.warmup = 10.0;
    s.duration = 50.0;
    s
}

fn line_worstcase() -> ScenarioSpec {
    presets::line_worstcase(16)
}

fn grid_sensor() -> ScenarioSpec {
    let mut s = presets::base("grid-sensor", TopologySpec::Grid { w: 6, h: 6 });
    s.description =
        "TDMA sensor grid with biased estimates: the paper's motivating deployment".to_string();
    s.drift = DriftSpec::RandomConstant;
    s.estimates = EstimateSpec::OracleBias;
    s.metric = Metric::LocalSkew;
    s
}

fn torus_messages() -> ScenarioSpec {
    let mut s = presets::base("torus-messages", TopologySpec::Torus { w: 4, h: 4 });
    s.description = "Message-borne estimates (floods + dead reckoning) on a 2-D torus".to_string();
    s.drift = DriftSpec::RandomConstant;
    s.estimates = EstimateSpec::Messages;
    s.duration = 20.0;
    s
}

fn geometric_dense() -> ScenarioSpec {
    let mut s = presets::base(
        "geometric-dense",
        TopologySpec::Geometric {
            n: 24,
            radius: 0.35,
        },
    );
    s.description = "Random geometric graph with slowly wandering oscillators".to_string();
    s.drift = DriftSpec::RandomWalk {
        period: 5.0,
        step: 0.25,
    };
    s
}

fn small_world_hub() -> ScenarioSpec {
    let mut s = presets::base(
        "small-world-hub",
        TopologySpec::SmallWorld {
            n: 24,
            k: 4,
            beta: 0.2,
        },
    );
    s.description = "Watts-Strogatz small world: shortcuts shrink the kappa-diameter".to_string();
    s.drift = DriftSpec::RandomConstant;
    s.metric = Metric::LocalSkew;
    s
}

fn scale_free_hubs() -> ScenarioSpec {
    let mut s = presets::base("scale-free-hubs", TopologySpec::ScaleFree { n: 32, m: 2 });
    s.description = "Barabasi-Albert hubs with biased estimates: degree-skewed load".to_string();
    s.drift = DriftSpec::RandomConstant;
    s.estimates = EstimateSpec::OracleBias;
    s.metric = Metric::LocalSkew;
    s
}

fn hypercube_log() -> ScenarioSpec {
    let mut s = presets::base("hypercube-log", TopologySpec::Hypercube { dim: 4 });
    s.description =
        "Hypercube: the log-diameter family the gradient bound is most sensitive to".to_string();
    s
}

fn churn_storm() -> ScenarioSpec {
    let mut s = presets::churn("churn-storm", TopologySpec::Grid { w: 4, h: 4 });
    s.description = "Heavy exponential churn over a grid; a spanning tree preserves \
                     connectivity (experiment E8)"
        .to_string();
    s
}

fn churn_burst() -> ScenarioSpec {
    let mut s = presets::churn_burst("churn-burst", TopologySpec::Grid { w: 4, h: 4 }, 8.0, 1.5);
    s.description = "Correlated churn bursts: every non-backbone grid edge drops at once, \
                     every 8 s (mass staged re-insertion)"
        .to_string();
    s
}

fn byzantine_est() -> ScenarioSpec {
    presets::byzantine_est(12, 12.0, 0.4)
}

fn flash_join() -> ScenarioSpec {
    let mut s = presets::base("flash-join", TopologySpec::Ring { n: 12 });
    s.description =
        "Four chords appear at once: concurrent staged insertions (Theorem 5.25)".to_string();
    s.dynamics = DynamicsSpec::Insertion {
        at: 5.0,
        count: 4,
        skew: 0.002,
    };
    s.insertion_scale = Some(0.05);
    s.warmup = 5.0;
    s.duration = 40.0;
    s
}

fn ring_chord() -> ScenarioSpec {
    presets::ring_chord(16, 0.05)
}

fn line_shortcut() -> ScenarioSpec {
    presets::shortcut_gradient(12, 0.05, 2.0, 2.0)
}

fn partition_heal() -> ScenarioSpec {
    presets::partition_heal(16, 10.0, 40.0)
}

fn mobile_swarm() -> ScenarioSpec {
    let mut s = presets::base("mobile-swarm", TopologySpec::Complete { n: 12 });
    s.description = "Random-waypoint swarm: links appear and disappear with distance \
                     (topology supplies only the node count)"
        .to_string();
    s.drift = DriftSpec::RandomConstant;
    s.dynamics = DynamicsSpec::Mobility {
        radius: 0.5,
        hysteresis: 1.2,
        speed_min: 0.01,
        speed_max: 0.03,
        sample: 0.5,
        skew: 0.002,
    };
    s.insertion_scale = Some(0.05);
    s.warmup = 0.0;
    s.duration = 120.0;
    s
}

fn drift_flip() -> ScenarioSpec {
    presets::drift_flip(12, 5.0)
}

fn self_heal() -> ScenarioSpec {
    presets::self_heal(8, 15.0, 1.0)
}

fn ring_1k() -> ScenarioSpec {
    let mut s = presets::base("ring-1k", TopologySpec::Ring { n: 1024 });
    s.description = "Engine-scale benchmark: a 1024-node ring under alternating worst-case \
                     drift (the tick-loop throughput workload)"
        .to_string();
    s.drift = DriftSpec::Alternating;
    s.bench = true;
    s.tiny_nodes = Some(32);
    s.warmup = 2.0;
    s.duration = 8.0;
    s
}

fn geometric_4k() -> ScenarioSpec {
    let mut s = presets::base(
        "geometric-4k",
        TopologySpec::Geometric {
            n: 4096,
            radius: 0.03,
        },
    );
    s.description = "Engine-scale benchmark: a 4096-node random geometric graph with \
                     independent constant drift (the message-path throughput workload)"
        .to_string();
    s.drift = DriftSpec::RandomConstant;
    s.bench = true;
    s.tiny_nodes = Some(64);
    s.warmup = 1.0;
    s.duration = 2.0;
    s
}

fn ring_100k() -> ScenarioSpec {
    let mut s = presets::base("ring-100k", TopologySpec::Ring { n: 100_000 });
    s.description = "Parallel-engine-scale benchmark: a 100,000-node ring under alternating \
                     worst-case drift (the sharded tick-loop workload)"
        .to_string();
    s.drift = DriftSpec::Alternating;
    s.bench = true;
    s.tiny_nodes = Some(64);
    s.warmup = 0.5;
    s.duration = 1.0;
    s.sample = 0.25;
    s
}

fn geometric_100k() -> ScenarioSpec {
    let mut s = presets::base(
        "geometric-100k",
        TopologySpec::Geometric {
            n: 100_000,
            radius: 0.007,
        },
    );
    s.description = "Parallel-engine-scale benchmark: a 100,000-node random geometric graph \
                     (average degree ~15) with independent constant drift (the sharded \
                     message-path workload)"
        .to_string();
    s.drift = DriftSpec::RandomConstant;
    s.bench = true;
    s.tiny_nodes = Some(64);
    s.warmup = 0.1;
    s.duration = 0.2;
    s.sample = 0.05;
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_and_bench_partition_the_registry() {
        let specs = all();
        let campaign = campaign();
        let bench = bench();
        assert_eq!(campaign.len() + bench.len(), specs.len());
        assert!(campaign.iter().all(|s| !s.bench));
        assert!(bench.iter().all(|s| s.bench));
        // The campaign set is pinned by the checked-in baseline: growing
        // it requires refreshing scenarios/baseline-tiny.json in the same
        // change (PR 5 grew it 16 -> 18 with churn-burst/byzantine-est;
        // PR 9 grew it 18 -> 20 with the chaos-search adversarial pair
        // and regenerated the baseline plus BENCH_engine_tiny.json).
        assert_eq!(
            campaign.len(),
            20,
            "growing the campaign set invalidates the baseline"
        );
        let names: Vec<&str> = bench.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            ["geometric-100k", "geometric-4k", "ring-100k", "ring-1k"]
        );
    }

    #[test]
    fn bench_scenarios_are_engine_scale_with_tiny_clamps() {
        for s in bench() {
            assert!(
                s.topology.node_count() >= 1024,
                "{} is not engine-scale",
                s.name
            );
            let tiny = s.scaled(crate::Scale::Tiny);
            assert!(
                tiny.topology.node_count() <= 64,
                "{}: tiny clamp missing ({} nodes)",
                s.name,
                tiny.topology.node_count()
            );
            tiny.validate().unwrap();
        }
    }

    #[test]
    fn registry_is_large_diverse_and_valid() {
        let specs = all();
        assert!(
            specs.len() >= 20,
            "need >= 20 built-ins, got {}",
            specs.len()
        );
        let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        names.dedup();
        assert_eq!(names.len(), specs.len(), "duplicate names");
        assert!(names.windows(2).all(|w| w[0] < w[1]), "sorted by name");
        for s in &specs {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(!s.description.is_empty(), "{} needs a description", s.name);
        }
        // Topology diversity: at least 7 distinct families.
        let mut families: Vec<&str> = specs.iter().map(|s| s.topology.family()).collect();
        families.sort_unstable();
        families.dedup();
        assert!(families.len() >= 7, "families: {families:?}");
        // Dynamics diversity: every generator appears.
        for kind in [
            "static",
            "insertion",
            "churn",
            "churn-burst",
            "mobility",
            "partition",
        ] {
            assert!(
                specs.iter().any(|s| s.dynamics.kind() == kind),
                "no scenario exercises {kind} dynamics"
            );
        }
    }

    #[test]
    fn find_matches_by_name() {
        assert!(find("churn-storm").is_some());
        assert!(find("no-such-scenario").is_none());
    }

    #[test]
    fn fault_heavy_is_the_disturbed_campaign_subset() {
        let names: Vec<String> = fault_heavy().into_iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "adversarial-corruption",
                "adversarial-partition",
                "byzantine-est",
                "churn-burst",
                "churn-storm",
                "flash-join",
                "line-shortcut",
                "mobile-swarm",
                "partition-heal",
                "ring-chord",
                "self-heal",
            ],
            "the nightly conformance set is pinned; update the nightly \
             workflow docs when growing it"
        );
    }

    #[test]
    fn select_resolves_sets_names_and_lists() {
        assert_eq!(select("all").unwrap().len(), all().len());
        assert_eq!(select("fault-heavy").unwrap().len(), fault_heavy().len());
        let pair = select("ring-steady,churn-storm").unwrap();
        assert_eq!(pair.len(), 2);
        assert_eq!(pair[0].name, "ring-steady");
        assert_eq!(pair[1].name, "churn-storm");
        let mixed = select("bench, self-heal").unwrap();
        assert_eq!(mixed.len(), bench().len() + 1);
    }

    #[test]
    fn select_hard_errors_on_unknown_or_empty() {
        assert!(select("no-such-scenario").is_err());
        assert!(select("ring-steady,").is_err(), "trailing comma is a typo");
        assert!(select("").is_err());
        let msg = select("ring-stedy").unwrap_err();
        assert!(msg.contains("ring-stedy"), "{msg}");
    }
}
