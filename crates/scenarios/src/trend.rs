//! Campaign trend tracking: read `gcs-campaign/v1` artifacts back in,
//! distill them into compact `gcs-baseline/v1` summaries, and compare a
//! fresh campaign against a checked-in baseline with a tolerance — the
//! regression gate CI hangs off (`gcs-scenarios baseline` / `compare`).
//!
//! The reader is hand-rolled like the writer (no serde) and inverts
//! [`campaign_json`](crate::campaign::campaign_json) exactly: floats are
//! written in shortest round-trip notation and re-parsed with correct
//! rounding, so a parsed artifact is bit-identical to the
//! [`CampaignRow`]s that produced it (property-tested).

use gcs_analysis::{EnsembleStats, Table};

use crate::campaign::{CampaignRow, ScenarioOutcome};
use crate::json::{self, Json, JsonValue};
use crate::spec::{Metric, Scale};

/// The artifact format tag the campaign writer emits.
pub const CAMPAIGN_FORMAT: &str = "gcs-campaign/v1";
/// The format tag of the distilled baseline summaries.
pub const BASELINE_FORMAT: &str = "gcs-baseline/v1";

/// Near-zero metrics (a skew of `1e-12` vs `2e-12`) must not trip the
/// relative gate; drifts below this many seconds are never significant.
const ABSOLUTE_FLOOR: f64 = 1e-6;

// ---------------------------------------------------------------------
// Reading campaign artifacts
// ---------------------------------------------------------------------

/// A fully parsed `gcs-campaign/v1` artifact — the same [`CampaignRow`]s
/// the runner aggregated before writing.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignArtifact {
    /// Campaign title.
    pub campaign: String,
    /// Scale token (`tiny` / `default` / `full`).
    pub scale: String,
    /// The seed list the campaign fanned out over.
    pub seeds: Vec<u64>,
    /// Per-scenario rows, in artifact order.
    pub rows: Vec<CampaignRow>,
}

fn field<'a>(v: &'a JsonValue, key: &str, what: &str) -> Result<&'a JsonValue, String> {
    v.get(key)
        .ok_or_else(|| format!("{what}: missing field {key:?}"))
}

fn str_field(v: &JsonValue, key: &str, what: &str) -> Result<String, String> {
    field(v, key, what)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{what}: field {key:?} is not a string"))
}

fn f64_field(v: &JsonValue, key: &str, what: &str) -> Result<f64, String> {
    field(v, key, what)?
        .as_f64()
        .ok_or_else(|| format!("{what}: field {key:?} is not a number"))
}

fn u64_field(v: &JsonValue, key: &str, what: &str) -> Result<u64, String> {
    field(v, key, what)?
        .as_u64()
        .ok_or_else(|| format!("{what}: field {key:?} is not an unsigned integer"))
}

fn arr_field<'a>(v: &'a JsonValue, key: &str, what: &str) -> Result<&'a [JsonValue], String> {
    field(v, key, what)?
        .as_arr()
        .ok_or_else(|| format!("{what}: field {key:?} is not an array"))
}

fn read_stats(v: &JsonValue, what: &str) -> Result<EnsembleStats, String> {
    Ok(EnsembleStats {
        runs: usize::try_from(u64_field(v, "runs", what)?).map_err(|e| format!("{what}: {e}"))?,
        mean: f64_field(v, "mean", what)?,
        min: f64_field(v, "min", what)?,
        max: f64_field(v, "max", what)?,
        median: f64_field(v, "median", what)?,
        stddev: f64_field(v, "stddev", what)?,
        p10: f64_field(v, "p10", what)?,
        p90: f64_field(v, "p90", what)?,
    })
}

fn read_outcome(v: &JsonValue, what: &str) -> Result<ScenarioOutcome, String> {
    let mut trajectory = Vec::new();
    for (i, pt) in arr_field(v, "trajectory", what)?.iter().enumerate() {
        let pair = pt
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("{what}: trajectory[{i}] is not a [t, skew] pair"))?;
        let t = pair[0]
            .as_f64()
            .ok_or_else(|| format!("{what}: trajectory[{i}] time is not a number"))?;
        let g = pair[1]
            .as_f64()
            .ok_or_else(|| format!("{what}: trajectory[{i}] skew is not a number"))?;
        trajectory.push((t, g));
    }
    Ok(ScenarioOutcome {
        seed: u64_field(v, "seed", what)?,
        primary: f64_field(v, "primary", what)?,
        max_global_skew: f64_field(v, "max_global_skew", what)?,
        max_local_skew: f64_field(v, "max_local_skew", what)?,
        final_global_skew: f64_field(v, "final_global_skew", what)?,
        invariant_violations: u64_field(v, "invariant_violations", what)?,
        messages_sent: u64_field(v, "messages_sent", what)?,
        messages_delivered: u64_field(v, "messages_delivered", what)?,
        messages_dropped: u64_field(v, "messages_dropped", what)?,
        trajectory,
    })
}

/// Parses a `gcs-campaign/v1` artifact back into its [`CampaignRow`]s.
///
/// # Errors
///
/// Returns a message on malformed JSON, a wrong `format` tag, or a
/// missing/mistyped field.
pub fn read_campaign(text: &str) -> Result<CampaignArtifact, String> {
    campaign_from_doc(&json::parse(text)?)
}

fn campaign_from_doc(doc: &JsonValue) -> Result<CampaignArtifact, String> {
    let format = str_field(doc, "format", "artifact")?;
    if format != CAMPAIGN_FORMAT {
        return Err(format!(
            "expected format {CAMPAIGN_FORMAT:?}, got {format:?}"
        ));
    }
    let seeds = arr_field(doc, "seeds", "artifact")?
        .iter()
        .map(|s| s.as_u64().ok_or_else(|| "non-integer seed".to_string()))
        .collect::<Result<Vec<u64>, String>>()?;
    let mut rows = Vec::new();
    for sc in arr_field(doc, "scenarios", "artifact")? {
        let name = str_field(sc, "name", "scenario")?;
        let what = format!("scenario {name:?}");
        let metric_token = str_field(sc, "metric", &what)?;
        let metric = Metric::parse(&metric_token)
            .ok_or_else(|| format!("{what}: unknown metric {metric_token:?}"))?;
        let outcomes = arr_field(sc, "outcomes", &what)?
            .iter()
            .map(|o| read_outcome(o, &what))
            .collect::<Result<Vec<_>, String>>()?;
        rows.push(CampaignRow {
            name,
            nodes: usize::try_from(u64_field(sc, "nodes", &what)?)
                .map_err(|e| format!("{what}: {e}"))?,
            metric,
            stats: read_stats(field(sc, "stats", &what)?, &what)?,
            outcomes,
        });
    }
    Ok(CampaignArtifact {
        campaign: str_field(doc, "campaign", "artifact")?,
        scale: str_field(doc, "scale", "artifact")?,
        seeds,
        rows,
    })
}

// ---------------------------------------------------------------------
// Distilling: per-scenario trend rows
// ---------------------------------------------------------------------

/// The compact per-scenario statistics a baseline pins: ensemble mean and
/// p90 of the primary metric and of both skew maxima, plus the mean
/// stabilization time derived from the trajectories.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendRow {
    /// Scenario name.
    pub name: String,
    /// Node count after scaling.
    pub nodes: u64,
    /// Primary-metric token.
    pub metric: String,
    /// Seeds aggregated.
    pub runs: u64,
    /// Mean of the primary metric across seeds.
    pub mean_primary: f64,
    /// 90th percentile of the primary metric.
    pub p90_primary: f64,
    /// Mean of the per-run max global skew.
    pub mean_global: f64,
    /// p90 of the per-run max global skew.
    pub p90_global: f64,
    /// Mean of the per-run max local skew.
    pub mean_local: f64,
    /// p90 of the per-run max local skew.
    pub p90_local: f64,
    /// Mean stabilization time (see [`stabilization_time`]).
    pub mean_stabilization: f64,
}

impl TrendRow {
    /// The compared columns, as `(label, value)` pairs.
    #[must_use]
    pub fn columns(&self) -> [(&'static str, f64); 7] {
        [
            ("primary mean", self.mean_primary),
            ("primary p90", self.p90_primary),
            ("global mean", self.mean_global),
            ("global p90", self.p90_global),
            ("local mean", self.mean_local),
            ("local p90", self.p90_local),
            ("stabilization", self.mean_stabilization),
        ]
    }
}

/// When the trajectory settles: the earliest sampled instant after which
/// the global skew never again leaves the settle band (1.1× the worst
/// skew over the final quarter of the run). Recovery scenarios (faults,
/// partitions) yield their recovery time; steady scenarios yield the end
/// of their initial transient. A run that is still at its worst when
/// observation ends — the final quarter clearly above everything before
/// it — never settled and yields the final instant, so divergence shows
/// up as *growing* stabilization time in the trend gate, not as zero.
/// Returns `0` for an empty trajectory.
#[must_use]
pub fn stabilization_time(trajectory: &[(f64, f64)]) -> f64 {
    let Some(&(last_t, _)) = trajectory.last() else {
        return 0.0;
    };
    let tail_start = trajectory.len() - trajectory.len().div_ceil(4);
    let max_over = |part: &[(f64, f64)]| part.iter().map(|&(_, g)| g).fold(0.0f64, f64::max);
    let tail_max = max_over(&trajectory[tail_start..]);
    // Still climbing at the end: the final quarter tops everything that
    // came before it by more than noise.
    if tail_max > max_over(&trajectory[..tail_start]) * 1.05 + 1e-9 {
        return last_t;
    }
    let band = tail_max * 1.1 + 1e-9;
    // The sample after the last excursion above the band (tail samples
    // are below the band by construction, so `i + 1` always exists).
    match trajectory.iter().rposition(|&(_, g)| g > band) {
        None => trajectory[0].0,
        Some(i) => trajectory[i + 1].0,
    }
}

/// Distills campaign rows into per-scenario trend rows.
#[must_use]
pub fn summarize(rows: &[CampaignRow]) -> Vec<TrendRow> {
    rows.iter()
        .map(|r| {
            let collect =
                |f: fn(&ScenarioOutcome) -> f64| -> Vec<f64> { r.outcomes.iter().map(f).collect() };
            let globals = EnsembleStats::from_values(&collect(|o| o.max_global_skew));
            let locals = EnsembleStats::from_values(&collect(|o| o.max_local_skew));
            let stab: Vec<f64> = r
                .outcomes
                .iter()
                .map(|o| stabilization_time(&o.trajectory))
                .collect();
            TrendRow {
                name: r.name.clone(),
                nodes: r.nodes as u64,
                metric: r.metric.token().to_string(),
                runs: r.stats.runs as u64,
                mean_primary: r.stats.mean,
                p90_primary: r.stats.p90,
                mean_global: globals.mean,
                p90_global: globals.p90,
                mean_local: locals.mean,
                p90_local: locals.p90,
                mean_stabilization: gcs_analysis::stats::mean(&stab),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Baseline artifacts
// ---------------------------------------------------------------------

/// A trend summary with its provenance — either distilled from a fresh
/// campaign artifact or read back from a checked-in baseline file.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendSummary {
    /// Campaign title the rows came from.
    pub campaign: String,
    /// Scale token.
    pub scale: String,
    /// Seed list.
    pub seeds: Vec<u64>,
    /// Per-scenario rows.
    pub rows: Vec<TrendRow>,
}

impl TrendSummary {
    /// Distills a parsed campaign artifact.
    #[must_use]
    pub fn from_campaign(artifact: &CampaignArtifact) -> Self {
        TrendSummary {
            campaign: artifact.campaign.clone(),
            scale: artifact.scale.clone(),
            seeds: artifact.seeds.clone(),
            rows: summarize(&artifact.rows),
        }
    }

    /// Builds a summary straight from in-memory campaign rows (what the
    /// CLI uses right after a run).
    #[must_use]
    pub fn from_rows(campaign: &str, scale: Scale, seeds: &[u64], rows: &[CampaignRow]) -> Self {
        TrendSummary {
            campaign: campaign.to_string(),
            scale: scale.name().to_string(),
            seeds: seeds.to_vec(),
            rows: summarize(rows),
        }
    }
}

/// Serializes a summary as a `gcs-baseline/v1` document (one scenario per
/// line, so checked-in baselines diff cleanly).
#[must_use]
pub fn baseline_json(summary: &TrendSummary) -> String {
    let row_json = |r: &TrendRow| {
        Json::Obj(vec![
            ("name", Json::Str(r.name.clone())),
            ("nodes", Json::Int(r.nodes)),
            ("metric", Json::Str(r.metric.clone())),
            ("runs", Json::Int(r.runs)),
            ("mean_primary", Json::Num(r.mean_primary)),
            ("p90_primary", Json::Num(r.p90_primary)),
            ("mean_global_skew", Json::Num(r.mean_global)),
            ("p90_global_skew", Json::Num(r.p90_global)),
            ("mean_local_skew", Json::Num(r.mean_local)),
            ("p90_local_skew", Json::Num(r.p90_local)),
            ("mean_stabilization", Json::Num(r.mean_stabilization)),
        ])
    };
    let head = Json::Obj(vec![
        ("format", Json::Str(BASELINE_FORMAT.to_string())),
        ("campaign", Json::Str(summary.campaign.clone())),
        ("scale", Json::Str(summary.scale.clone())),
        (
            "seeds",
            Json::Arr(summary.seeds.iter().map(|&s| Json::Int(s)).collect()),
        ),
    ]);
    // Splice the scenarios in by hand so each row sits on its own line.
    let head = head.to_string();
    let mut out = String::new();
    out.push_str(&head[..head.len() - 1]);
    out.push_str(",\"scenarios\":[\n");
    for (i, r) in summary.rows.iter().enumerate() {
        out.push_str(&row_json(r).to_string());
        if i + 1 < summary.rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Reads a `gcs-baseline/v1` document.
///
/// # Errors
///
/// Returns a message on malformed JSON, a wrong `format` tag, or a
/// missing/mistyped field.
pub fn read_baseline(text: &str) -> Result<TrendSummary, String> {
    baseline_from_doc(&json::parse(text)?)
}

fn baseline_from_doc(doc: &JsonValue) -> Result<TrendSummary, String> {
    let format = str_field(doc, "format", "baseline")?;
    if format != BASELINE_FORMAT {
        return Err(format!(
            "expected format {BASELINE_FORMAT:?}, got {format:?}"
        ));
    }
    let seeds = arr_field(doc, "seeds", "baseline")?
        .iter()
        .map(|s| s.as_u64().ok_or_else(|| "non-integer seed".to_string()))
        .collect::<Result<Vec<u64>, String>>()?;
    let mut rows = Vec::new();
    for sc in arr_field(doc, "scenarios", "baseline")? {
        let name = str_field(sc, "name", "baseline scenario")?;
        let what = format!("baseline scenario {name:?}");
        rows.push(TrendRow {
            nodes: u64_field(sc, "nodes", &what)?,
            metric: str_field(sc, "metric", &what)?,
            runs: u64_field(sc, "runs", &what)?,
            mean_primary: f64_field(sc, "mean_primary", &what)?,
            p90_primary: f64_field(sc, "p90_primary", &what)?,
            mean_global: f64_field(sc, "mean_global_skew", &what)?,
            p90_global: f64_field(sc, "p90_global_skew", &what)?,
            mean_local: f64_field(sc, "mean_local_skew", &what)?,
            p90_local: f64_field(sc, "p90_local_skew", &what)?,
            mean_stabilization: f64_field(sc, "mean_stabilization", &what)?,
            name,
        });
    }
    Ok(TrendSummary {
        campaign: str_field(doc, "campaign", "baseline")?,
        scale: str_field(doc, "scale", "baseline")?,
        seeds,
        rows,
    })
}

/// Reads either artifact flavour into a [`TrendSummary`], keyed on the
/// `format` tag — so `compare` accepts a raw campaign artifact where a
/// baseline is expected and vice versa.
///
/// # Errors
///
/// Returns a message on malformed JSON or an unknown `format` tag.
pub fn read_summary(text: &str) -> Result<TrendSummary, String> {
    let doc = json::parse(text)?;
    match str_field(&doc, "format", "artifact")?.as_str() {
        BASELINE_FORMAT => baseline_from_doc(&doc),
        CAMPAIGN_FORMAT => Ok(TrendSummary::from_campaign(&campaign_from_doc(&doc)?)),
        other => Err(format!("unknown artifact format {other:?}")),
    }
}

// ---------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------

/// One out-of-tolerance observation.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftFinding {
    /// Scenario name.
    pub scenario: String,
    /// What drifted: a [`TrendRow::columns`] label, or a structural
    /// problem (`missing scenario`, `new scenario`, `runs`).
    pub column: String,
    /// Baseline value (NaN for structural findings).
    pub baseline: f64,
    /// Current value (NaN for structural findings).
    pub current: f64,
}

impl DriftFinding {
    /// Signed relative drift (`+0.25` = 25 % above baseline). A
    /// significant move away from a (near-)zero baseline has no finite
    /// ratio and reports ±∞, so it still ranks as the worst drift and
    /// prints as `+inf%` rather than masquerading as `+0.0%`.
    #[must_use]
    pub fn relative(&self) -> f64 {
        let delta = self.current - self.baseline;
        if self.baseline.abs() >= ABSOLUTE_FLOOR {
            delta / self.baseline.abs()
        } else if delta.abs() <= ABSOLUTE_FLOOR {
            0.0
        } else {
            f64::INFINITY.copysign(delta)
        }
    }
}

/// The outcome of a baseline comparison: a printable table plus every
/// finding that breaches the tolerance.
#[derive(Debug)]
pub struct CompareReport {
    /// One row per scenario, baseline vs current headline stats.
    pub table: Table,
    /// Out-of-tolerance findings (empty ⇒ gate passes).
    pub findings: Vec<DriftFinding>,
}

impl CompareReport {
    /// Whether the gate passes.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Diffs `current` against `baseline` with relative tolerance `tol`
/// (`0.25` = ±25 %; drifts under an absolute floor of 1 µs never count).
/// Scenario-set mismatches and changed seed counts are findings too —
/// the baseline must be refreshed deliberately, not silently outgrown.
#[must_use]
pub fn compare(baseline: &TrendSummary, current: &TrendSummary, tol: f64) -> CompareReport {
    let mut findings = Vec::new();
    let mut table = Table::new(
        format!(
            "campaign trend — {} ({} seeds, scale {}) vs baseline, tol ±{:.0}%",
            current.campaign,
            current.seeds.len(),
            current.scale,
            tol * 100.0
        ),
        &[
            "scenario",
            "primary (base)",
            "primary (cur)",
            "global p90 (base)",
            "global p90 (cur)",
            "stabilize (base)",
            "stabilize (cur)",
            "worst drift",
            "status",
        ],
    );
    table.caption(
        "primary = each scenario's own metric (mean across seeds). A drift beyond the \
         tolerance in any tracked column (primary/global/local mean+p90, stabilization) \
         fails the gate; refresh the baseline deliberately when a change is intended.",
    );

    for base_row in &baseline.rows {
        let Some(cur_row) = current.rows.iter().find(|r| r.name == base_row.name) else {
            findings.push(DriftFinding {
                scenario: base_row.name.clone(),
                column: "missing scenario".to_string(),
                baseline: f64::NAN,
                current: f64::NAN,
            });
            table.row([
                base_row.name.clone(),
                fmt(base_row.mean_primary),
                "-".to_string(),
                fmt(base_row.p90_global),
                "-".to_string(),
                fmt(base_row.mean_stabilization),
                "-".to_string(),
                "-".to_string(),
                "MISSING".to_string(),
            ]);
            continue;
        };
        let mut row_findings = Vec::new();
        if cur_row.runs != base_row.runs {
            row_findings.push(DriftFinding {
                scenario: base_row.name.clone(),
                column: "runs".to_string(),
                baseline: base_row.runs as f64,
                current: cur_row.runs as f64,
            });
        }
        let mut worst: Option<DriftFinding> = None;
        for ((label, base), (_, cur)) in base_row.columns().iter().zip(cur_row.columns().iter()) {
            let finding = DriftFinding {
                scenario: base_row.name.clone(),
                column: (*label).to_string(),
                baseline: *base,
                current: *cur,
            };
            let out_of_tol = (cur - base).abs() > tol * base.abs() + ABSOLUTE_FLOOR;
            if worst
                .as_ref()
                .is_none_or(|w| finding.relative().abs() > w.relative().abs())
            {
                worst = Some(finding.clone());
            }
            if out_of_tol {
                row_findings.push(finding);
            }
        }
        let status = if row_findings.is_empty() {
            "ok".to_string()
        } else {
            "DRIFT".to_string()
        };
        let worst_cell = worst.map_or("-".to_string(), |w| {
            format!("{} {:+.1}%", w.column, w.relative() * 100.0)
        });
        table.row([
            base_row.name.clone(),
            fmt(base_row.mean_primary),
            fmt(cur_row.mean_primary),
            fmt(base_row.p90_global),
            fmt(cur_row.p90_global),
            fmt(base_row.mean_stabilization),
            fmt(cur_row.mean_stabilization),
            worst_cell,
            status,
        ]);
        findings.append(&mut row_findings);
    }
    for cur_row in &current.rows {
        if !baseline.rows.iter().any(|r| r.name == cur_row.name) {
            findings.push(DriftFinding {
                scenario: cur_row.name.clone(),
                column: "new scenario (refresh the baseline)".to_string(),
                baseline: f64::NAN,
                current: f64::NAN,
            });
            table.row([
                cur_row.name.clone(),
                "-".to_string(),
                fmt(cur_row.mean_primary),
                "-".to_string(),
                fmt(cur_row.p90_global),
                "-".to_string(),
                fmt(cur_row.mean_stabilization),
                "-".to_string(),
                "NEW".to_string(),
            ]);
        }
    }
    CompareReport { table, findings }
}

fn fmt(v: f64) -> String {
    gcs_analysis::report::fmt_val(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{campaign_json, run_campaign};
    use crate::registry;

    fn tiny_rows() -> (Vec<u64>, Vec<CampaignRow>) {
        let specs = vec![
            registry::find("line-worstcase")
                .unwrap()
                .scaled(Scale::Tiny),
            registry::find("self-heal").unwrap().scaled(Scale::Tiny),
        ];
        let seeds = vec![0, 1];
        let rows = run_campaign(&specs, &seeds).unwrap();
        (seeds, rows)
    }

    #[test]
    fn campaign_reader_inverts_the_writer() {
        let (seeds, rows) = tiny_rows();
        let text = campaign_json("smoke", Scale::Tiny, &seeds, &rows);
        let artifact = read_campaign(&text).unwrap();
        assert_eq!(artifact.campaign, "smoke");
        assert_eq!(artifact.scale, "tiny");
        assert_eq!(artifact.seeds, seeds);
        assert_eq!(artifact.rows, rows, "parsed rows must be bit-identical");
    }

    #[test]
    fn baseline_round_trips() {
        let (seeds, rows) = tiny_rows();
        let summary = TrendSummary::from_rows("smoke", Scale::Tiny, &seeds, &rows);
        let text = baseline_json(&summary);
        assert!(text.starts_with("{\"format\":\"gcs-baseline/v1\""));
        let back = read_baseline(&text).unwrap();
        assert_eq!(back, summary);
        // And the format-sniffing reader agrees on both flavours.
        assert_eq!(read_summary(&text).unwrap(), summary);
        let campaign_text = campaign_json("smoke", Scale::Tiny, &seeds, &rows);
        assert_eq!(read_summary(&campaign_text).unwrap(), summary);
    }

    #[test]
    fn identical_artifacts_compare_clean() {
        let (seeds, rows) = tiny_rows();
        let summary = TrendSummary::from_rows("smoke", Scale::Tiny, &seeds, &rows);
        let report = compare(&summary, &summary, 0.05);
        assert!(report.passed(), "{:?}", report.findings);
        assert_eq!(report.table.row_count(), summary.rows.len());
    }

    #[test]
    fn injected_regression_is_flagged() {
        let (seeds, rows) = tiny_rows();
        let base = TrendSummary::from_rows("smoke", Scale::Tiny, &seeds, &rows);
        let mut cur = base.clone();
        // A +20 % global-skew regression in one scenario.
        cur.rows[0].mean_global *= 1.2;
        cur.rows[0].p90_global *= 1.2;
        let report = compare(&base, &cur, 0.10);
        assert!(!report.passed());
        assert!(report
            .findings
            .iter()
            .any(|f| f.scenario == base.rows[0].name && f.column == "global mean"));
        // The same drift sails through a generous tolerance.
        assert!(compare(&base, &cur, 0.30).passed());
    }

    #[test]
    fn drift_from_a_zero_baseline_reports_infinite_relative() {
        let (seeds, rows) = tiny_rows();
        let base = TrendSummary::from_rows("smoke", Scale::Tiny, &seeds, &rows);
        let mut cur = base.clone();
        let mut zero_base = base.clone();
        zero_base.rows[0].mean_stabilization = 0.0;
        cur.rows[0].mean_stabilization = 5.0;
        let report = compare(&zero_base, &cur, 0.10);
        let f = report
            .findings
            .iter()
            .find(|f| f.column == "stabilization")
            .expect("zero-baseline drift flagged");
        assert_eq!(f.relative(), f64::INFINITY, "must rank as worst, not +0%");
    }

    #[test]
    fn scenario_set_mismatches_are_structural_findings() {
        let (seeds, rows) = tiny_rows();
        let base = TrendSummary::from_rows("smoke", Scale::Tiny, &seeds, &rows);
        let mut cur = base.clone();
        let dropped = cur.rows.remove(0);
        let report = compare(&base, &cur, 0.5);
        assert!(report
            .findings
            .iter()
            .any(|f| f.scenario == dropped.name && f.column == "missing scenario"));
        let report = compare(&cur, &base, 0.5);
        assert!(report
            .findings
            .iter()
            .any(|f| f.scenario == dropped.name && f.column.starts_with("new scenario")));
    }

    #[test]
    fn stabilization_time_finds_the_recovery_point() {
        // Steady at 0.1, spike to 1.0 at t = 5, decays back by t = 8.
        let mut traj: Vec<(f64, f64)> = (0..=20).map(|k| (k as f64 * 0.5, 0.1)).collect();
        for (t, g) in traj.iter_mut() {
            if *t >= 5.0 {
                *g = (1.0 - (*t - 5.0) * 0.3).max(0.1);
            }
        }
        let st = stabilization_time(&traj);
        assert!((7.0..=9.0).contains(&st), "got {st}");
        // A flat run stabilizes immediately.
        let flat: Vec<(f64, f64)> = (0..=10).map(|k| (k as f64, 0.2)).collect();
        assert_eq!(stabilization_time(&flat), 0.0);
        assert_eq!(stabilization_time(&[]), 0.0);
        // A diverging run — still climbing when observation ends — never
        // settles: it reports the final instant, not "settled at t=0".
        let grow: Vec<(f64, f64)> = (0..=20)
            .map(|k| (k as f64 * 0.5, 0.01 * k as f64))
            .collect();
        assert_eq!(stabilization_time(&grow), 10.0);
    }
}
