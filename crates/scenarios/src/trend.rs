//! Campaign trend tracking: read `gcs-campaign/v1` artifacts back in,
//! distill them into compact `gcs-baseline/v2` summaries — scalar
//! ensemble stats *plus* per-trajectory envelopes (growth/recovery
//! slopes, peak time, settling time) and a per-scenario tolerance table —
//! and compare a fresh campaign against a checked-in baseline: the
//! regression gate CI hangs off (`gcs-scenarios baseline` / `compare`).
//!
//! The reader is hand-rolled like the writer (no serde) and inverts
//! [`campaign_json`](crate::campaign::campaign_json) exactly: floats are
//! written in shortest round-trip notation and re-parsed with correct
//! rounding, so a parsed artifact is bit-identical to the
//! [`CampaignRow`]s that produced it (property-tested). Legacy
//! `gcs-baseline/v1` files still parse (their rows simply carry no
//! envelope, so only the scalar columns gate).

use gcs_analysis::{EnsembleStats, Table};

use crate::campaign::{CampaignRow, ScenarioOutcome};
use crate::json::{self, arr_field, f64_field, field, str_field, u64_field, Json, JsonValue};
use crate::spec::{DriftSpec, DynamicsSpec, Metric, Scale, ScenarioSpec, TopologySpec};

/// The artifact format tag the campaign writer emits.
pub const CAMPAIGN_FORMAT: &str = "gcs-campaign/v1";
/// The legacy scalar-only baseline format (still readable).
pub const BASELINE_FORMAT_V1: &str = "gcs-baseline/v1";
/// The baseline format the writer emits: scalars + trajectory envelopes
/// + per-scenario tolerances.
pub const BASELINE_FORMAT: &str = "gcs-baseline/v2";

/// Near-zero metrics (a skew of `1e-12` vs `2e-12`) must not trip the
/// relative gate; drifts below this many seconds are never significant.
const ABSOLUTE_FLOOR: f64 = 1e-6;

// ---------------------------------------------------------------------
// Reading campaign artifacts
// ---------------------------------------------------------------------

/// A fully parsed `gcs-campaign/v1` artifact — the same [`CampaignRow`]s
/// the runner aggregated before writing.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignArtifact {
    /// Campaign title.
    pub campaign: String,
    /// Scale token (`tiny` / `default` / `full`).
    pub scale: String,
    /// The seed list the campaign fanned out over.
    pub seeds: Vec<u64>,
    /// Per-scenario rows, in artifact order.
    pub rows: Vec<CampaignRow>,
}

fn read_stats(v: &JsonValue, what: &str) -> Result<EnsembleStats, String> {
    Ok(EnsembleStats {
        runs: usize::try_from(u64_field(v, "runs", what)?).map_err(|e| format!("{what}: {e}"))?,
        mean: f64_field(v, "mean", what)?,
        min: f64_field(v, "min", what)?,
        max: f64_field(v, "max", what)?,
        median: f64_field(v, "median", what)?,
        stddev: f64_field(v, "stddev", what)?,
        p10: f64_field(v, "p10", what)?,
        p90: f64_field(v, "p90", what)?,
    })
}

/// Engine counters were added to outcomes after the first artifacts
/// shipped; older files simply lack the field, which reads as 0.
fn legacy_u64_field(v: &JsonValue, name: &str) -> u64 {
    field(v, name, "")
        .ok()
        .and_then(JsonValue::as_u64)
        .unwrap_or(0)
}

fn read_outcome(v: &JsonValue, what: &str) -> Result<ScenarioOutcome, String> {
    let mut trajectory = Vec::new();
    for (i, pt) in arr_field(v, "trajectory", what)?.iter().enumerate() {
        let pair = pt
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("{what}: trajectory[{i}] is not a [t, skew] pair"))?;
        let t = pair[0]
            .as_f64()
            .ok_or_else(|| format!("{what}: trajectory[{i}] time is not a number"))?;
        let g = pair[1]
            .as_f64()
            .ok_or_else(|| format!("{what}: trajectory[{i}] skew is not a number"))?;
        trajectory.push((t, g));
    }
    Ok(ScenarioOutcome {
        seed: u64_field(v, "seed", what)?,
        primary: f64_field(v, "primary", what)?,
        max_global_skew: f64_field(v, "max_global_skew", what)?,
        max_local_skew: f64_field(v, "max_local_skew", what)?,
        final_global_skew: f64_field(v, "final_global_skew", what)?,
        invariant_violations: u64_field(v, "invariant_violations", what)?,
        messages_sent: u64_field(v, "messages_sent", what)?,
        messages_delivered: u64_field(v, "messages_delivered", what)?,
        messages_dropped: u64_field(v, "messages_dropped", what)?,
        events: legacy_u64_field(v, "events"),
        ticks: legacy_u64_field(v, "ticks"),
        mode_evaluations: legacy_u64_field(v, "mode_evaluations"),
        trajectory,
    })
}

/// Parses a `gcs-campaign/v1` artifact back into its [`CampaignRow`]s.
///
/// # Errors
///
/// Returns a message on malformed JSON, a wrong `format` tag, or a
/// missing/mistyped field.
pub fn read_campaign(text: &str) -> Result<CampaignArtifact, String> {
    campaign_from_doc(&json::parse(text)?)
}

fn campaign_from_doc(doc: &JsonValue) -> Result<CampaignArtifact, String> {
    let format = str_field(doc, "format", "artifact")?;
    if format != CAMPAIGN_FORMAT {
        return Err(format!(
            "expected format {CAMPAIGN_FORMAT:?}, got {format:?}"
        ));
    }
    let seeds = arr_field(doc, "seeds", "artifact")?
        .iter()
        .map(|s| s.as_u64().ok_or_else(|| "non-integer seed".to_string()))
        .collect::<Result<Vec<u64>, String>>()?;
    let mut rows = Vec::new();
    for sc in arr_field(doc, "scenarios", "artifact")? {
        let name = str_field(sc, "name", "scenario")?;
        let what = format!("scenario {name:?}");
        let metric_token = str_field(sc, "metric", &what)?;
        let metric = Metric::parse(&metric_token)
            .ok_or_else(|| format!("{what}: unknown metric {metric_token:?}"))?;
        let outcomes = arr_field(sc, "outcomes", &what)?
            .iter()
            .map(|o| read_outcome(o, &what))
            .collect::<Result<Vec<_>, String>>()?;
        rows.push(CampaignRow {
            name,
            nodes: usize::try_from(u64_field(sc, "nodes", &what)?)
                .map_err(|e| format!("{what}: {e}"))?,
            metric,
            stats: read_stats(field(sc, "stats", &what)?, &what)?,
            outcomes,
        });
    }
    Ok(CampaignArtifact {
        campaign: str_field(doc, "campaign", "artifact")?,
        scale: str_field(doc, "scale", "artifact")?,
        seeds,
        rows,
    })
}

// ---------------------------------------------------------------------
// Distilling: per-scenario trend rows
// ---------------------------------------------------------------------

/// The trajectory-*shape* statistics of one run, distilled from its
/// sampled `(t, global skew)` series. This is what lets the gate see a
/// regression that scalar stats miss — a recovery that takes twice as
/// long at the same mean skew shows up as a halved
/// [`recovery_slope`](TrajectoryEnvelope::recovery_slope).
///
/// Distillation is invariant to sample order and exact-duplicate samples
/// (the points are canonicalized first; property-tested), so envelope
/// values only move when the trajectory *shape* moves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryEnvelope {
    /// The trajectory's maximum skew.
    pub peak: f64,
    /// Earliest sampled instant attaining the peak.
    pub peak_time: f64,
    /// Average climb rate from the first sample to the peak
    /// (`(peak − g₀)/(t_peak − t₀)`; 0 when the peak is the first sample).
    pub growth_slope: f64,
    /// Average drain rate from the peak to the final sample
    /// (`(peak − g_end)/(t_end − t_peak)`; 0 when the peak is last).
    pub recovery_slope: f64,
    /// When the trajectory settles (see [`stabilization_time`]).
    pub settling_time: f64,
}

/// Distills a trajectory into its [`TrajectoryEnvelope`]. The input is
/// canonicalized (sorted by `(t, skew)`, exact duplicates removed) so the
/// result is invariant to sample order and duplication. Returns an
/// all-zero envelope for an empty trajectory.
#[must_use]
pub fn envelope(trajectory: &[(f64, f64)]) -> TrajectoryEnvelope {
    let mut pts: Vec<(f64, f64)> = trajectory.to_vec();
    pts.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    pts.dedup();
    let (Some(&(t0, g0)), Some(&(t_end, g_end))) = (pts.first(), pts.last()) else {
        return TrajectoryEnvelope {
            peak: 0.0,
            peak_time: 0.0,
            growth_slope: 0.0,
            recovery_slope: 0.0,
            settling_time: 0.0,
        };
    };
    let (mut peak, mut peak_time) = (f64::NEG_INFINITY, t0);
    for &(t, g) in &pts {
        if g > peak {
            peak = g;
            peak_time = t;
        }
    }
    let growth_slope = if peak_time > t0 {
        (peak - g0) / (peak_time - t0)
    } else {
        0.0
    };
    let recovery_slope = if t_end > peak_time {
        (peak - g_end) / (t_end - peak_time)
    } else {
        0.0
    };
    TrajectoryEnvelope {
        peak,
        peak_time,
        growth_slope,
        recovery_slope,
        settling_time: stabilization_time(&pts),
    }
}

/// Ensemble means of the per-run [`TrajectoryEnvelope`]s — the extra
/// columns a `gcs-baseline/v2` row pins beyond the scalar stats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvelopeStats {
    /// Mean earliest-peak instant across seeds.
    pub mean_peak_time: f64,
    /// Mean climb rate to the peak.
    pub mean_growth_slope: f64,
    /// Mean drain rate from the peak.
    pub mean_recovery_slope: f64,
}

/// The compact per-scenario statistics a baseline pins: ensemble mean and
/// p90 of the primary metric and of both skew maxima, the mean
/// stabilization time derived from the trajectories, and (since
/// `gcs-baseline/v2`) the trajectory-envelope means.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendRow {
    /// Scenario name.
    pub name: String,
    /// Node count after scaling.
    pub nodes: u64,
    /// Primary-metric token.
    pub metric: String,
    /// Seeds aggregated.
    pub runs: u64,
    /// Mean of the primary metric across seeds.
    pub mean_primary: f64,
    /// 90th percentile of the primary metric.
    pub p90_primary: f64,
    /// Mean of the per-run max global skew.
    pub mean_global: f64,
    /// p90 of the per-run max global skew.
    pub p90_global: f64,
    /// Mean of the per-run max local skew.
    pub mean_local: f64,
    /// p90 of the per-run max local skew.
    pub p90_local: f64,
    /// Mean stabilization time (see [`stabilization_time`]).
    pub mean_stabilization: f64,
    /// Trajectory-envelope means. `None` only for rows read back from a
    /// legacy `gcs-baseline/v1` file, whose envelope columns then simply
    /// do not gate.
    pub envelope: Option<EnvelopeStats>,
}

impl TrendRow {
    /// The compared columns, as `(label, value)` pairs: seven scalar
    /// columns, plus the three envelope columns when present.
    #[must_use]
    pub fn columns(&self) -> Vec<(&'static str, f64)> {
        let mut cols = vec![
            ("primary mean", self.mean_primary),
            ("primary p90", self.p90_primary),
            ("global mean", self.mean_global),
            ("global p90", self.p90_global),
            ("local mean", self.mean_local),
            ("local p90", self.p90_local),
            ("stabilization", self.mean_stabilization),
        ];
        if let Some(env) = self.envelope {
            cols.push(("peak time", env.mean_peak_time));
            cols.push(("growth slope", env.mean_growth_slope));
            cols.push(("recovery slope", env.mean_recovery_slope));
        }
        cols
    }
}

/// When the trajectory settles: the earliest sampled instant after which
/// the global skew never again leaves the settle band (1.1× the worst
/// skew over the final quarter of the run). Recovery scenarios (faults,
/// partitions) yield their recovery time; steady scenarios yield the end
/// of their initial transient. A run that is still at its worst when
/// observation ends — the final quarter clearly above everything before
/// it — never settled and yields the final instant, so divergence shows
/// up as *growing* stabilization time in the trend gate, not as zero.
/// Returns `0` for an empty trajectory.
#[must_use]
pub fn stabilization_time(trajectory: &[(f64, f64)]) -> f64 {
    let Some(&(last_t, _)) = trajectory.last() else {
        return 0.0;
    };
    let tail_start = trajectory.len() - trajectory.len().div_ceil(4);
    let max_over = |part: &[(f64, f64)]| part.iter().map(|&(_, g)| g).fold(0.0f64, f64::max);
    let tail_max = max_over(&trajectory[tail_start..]);
    // Still climbing at the end: the final quarter tops everything that
    // came before it by more than noise.
    if tail_max > max_over(&trajectory[..tail_start]) * 1.05 + 1e-9 {
        return last_t;
    }
    let band = tail_max * 1.1 + 1e-9;
    // The sample after the last excursion above the band (tail samples
    // are below the band by construction, so `i + 1` always exists).
    match trajectory.iter().rposition(|&(_, g)| g > band) {
        None => trajectory[0].0,
        Some(i) => trajectory[i + 1].0,
    }
}

/// Distills campaign rows into per-scenario trend rows.
#[must_use]
pub fn summarize(rows: &[CampaignRow]) -> Vec<TrendRow> {
    rows.iter()
        .map(|r| {
            let collect =
                |f: fn(&ScenarioOutcome) -> f64| -> Vec<f64> { r.outcomes.iter().map(f).collect() };
            let globals = EnsembleStats::from_values(&collect(|o| o.max_global_skew));
            let locals = EnsembleStats::from_values(&collect(|o| o.max_local_skew));
            let envelopes: Vec<TrajectoryEnvelope> =
                r.outcomes.iter().map(|o| envelope(&o.trajectory)).collect();
            let env_mean = |f: fn(&TrajectoryEnvelope) -> f64| -> f64 {
                let vals: Vec<f64> = envelopes.iter().map(f).collect();
                gcs_analysis::stats::mean(&vals)
            };
            TrendRow {
                name: r.name.clone(),
                nodes: r.nodes as u64,
                metric: r.metric.token().to_string(),
                runs: r.stats.runs as u64,
                mean_primary: r.stats.mean,
                p90_primary: r.stats.p90,
                mean_global: globals.mean,
                p90_global: globals.p90,
                mean_local: locals.mean,
                p90_local: locals.p90,
                // The envelope's settling time IS stabilization_time (its
                // canonicalization is a no-op on real, time-sorted
                // trajectories), computed once per outcome above.
                mean_stabilization: env_mean(|e| e.settling_time),
                envelope: Some(EnvelopeStats {
                    mean_peak_time: env_mean(|e| e.peak_time),
                    mean_growth_slope: env_mean(|e| e.growth_slope),
                    mean_recovery_slope: env_mean(|e| e.recovery_slope),
                }),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Baseline artifacts
// ---------------------------------------------------------------------

/// A trend summary with its provenance — either distilled from a fresh
/// campaign artifact or read back from a checked-in baseline file.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendSummary {
    /// Campaign title the rows came from.
    pub campaign: String,
    /// Scale token.
    pub scale: String,
    /// Seed list.
    pub seeds: Vec<u64>,
    /// Per-scenario rows.
    pub rows: Vec<TrendRow>,
    /// Per-scenario relative-tolerance overrides (fractions: `0.25` =
    /// ±25 %), sorted by scenario name. A baseline carries these so the
    /// gate can be tight for deterministic topologies and loose for
    /// seed-realized random families; [`compare`] consults the *baseline*
    /// side. Empty in summaries distilled straight from a campaign —
    /// populate with [`default_tolerances`] (or hand-edit the file).
    pub tolerances: Vec<(String, f64)>,
}

impl TrendSummary {
    /// Distills a parsed campaign artifact.
    #[must_use]
    pub fn from_campaign(artifact: &CampaignArtifact) -> Self {
        TrendSummary {
            campaign: artifact.campaign.clone(),
            scale: artifact.scale.clone(),
            seeds: artifact.seeds.clone(),
            rows: summarize(&artifact.rows),
            tolerances: Vec::new(),
        }
    }

    /// Builds a summary straight from in-memory campaign rows (what the
    /// CLI uses right after a run).
    #[must_use]
    pub fn from_rows(campaign: &str, scale: Scale, seeds: &[u64], rows: &[CampaignRow]) -> Self {
        TrendSummary {
            campaign: campaign.to_string(),
            scale: scale.name().to_string(),
            seeds: seeds.to_vec(),
            rows: summarize(rows),
            tolerances: Vec::new(),
        }
    }

    /// The effective relative tolerance for one scenario: its override if
    /// the summary carries one, else `default_tol`.
    #[must_use]
    pub fn tolerance_for(&self, scenario: &str, default_tol: f64) -> f64 {
        self.tolerances
            .iter()
            .find(|(name, _)| name == scenario)
            .map_or(default_tol, |&(_, t)| t)
    }
}

/// Whether a scenario's outcome depends on the run seed structurally —
/// a seed-realized random topology, stochastic dynamics, or randomized
/// drift — rather than only through message-delay noise. The trend-series
/// gate ([`trendseries`](crate::trendseries)) reuses this classification
/// for its per-scenario tolerances.
#[must_use]
pub fn seed_sensitive(spec: &ScenarioSpec) -> bool {
    matches!(
        spec.topology,
        TopologySpec::Gnp { .. }
            | TopologySpec::Geometric { .. }
            | TopologySpec::SmallWorld { .. }
            | TopologySpec::ScaleFree { .. }
    ) || matches!(
        spec.dynamics,
        DynamicsSpec::Churn { .. } | DynamicsSpec::Mobility { .. }
    ) || matches!(
        spec.drift,
        DriftSpec::RandomConstant | DriftSpec::RandomWalk { .. }
    )
}

/// Tight tolerance for scenarios whose realization is deterministic.
pub const TOL_TIGHT: f64 = 0.25;
/// Loose tolerance for seed-realized random families.
pub const TOL_LOOSE: f64 = 0.60;

/// The default per-scenario tolerance table for a summary: [`TOL_TIGHT`]
/// for deterministic topologies/dynamics, [`TOL_LOOSE`] for seed-realized
/// random families (looked up in the registry; unknown scenarios are
/// treated as random). `gcs-scenarios baseline` embeds this table when
/// pinning a fresh baseline; hand-tune the file afterwards if a scenario
/// needs special treatment.
#[must_use]
pub fn default_tolerances(summary: &TrendSummary) -> Vec<(String, f64)> {
    let mut tols: Vec<(String, f64)> = summary
        .rows
        .iter()
        .map(|r| {
            let loose = crate::registry::find(&r.name).is_none_or(|s| seed_sensitive(&s));
            (r.name.clone(), if loose { TOL_LOOSE } else { TOL_TIGHT })
        })
        .collect();
    tols.sort_by(|a, b| a.0.cmp(&b.0));
    tols
}

/// Serializes a summary as a `gcs-baseline/v2` document (one scenario per
/// line, so checked-in baselines diff cleanly). Rows without envelope
/// stats (read back from a v1 file) keep omitting the envelope fields;
/// the tolerance table is embedded as relative fractions (`0.25` =
/// ±25 %), exactly as held in memory, so the file round-trips bit-exactly.
#[must_use]
pub fn baseline_json(summary: &TrendSummary) -> String {
    let row_json = |r: &TrendRow| {
        let mut fields = vec![
            ("name", Json::Str(r.name.clone())),
            ("nodes", Json::Int(r.nodes)),
            ("metric", Json::Str(r.metric.clone())),
            ("runs", Json::Int(r.runs)),
            ("mean_primary", Json::Num(r.mean_primary)),
            ("p90_primary", Json::Num(r.p90_primary)),
            ("mean_global_skew", Json::Num(r.mean_global)),
            ("p90_global_skew", Json::Num(r.p90_global)),
            ("mean_local_skew", Json::Num(r.mean_local)),
            ("p90_local_skew", Json::Num(r.p90_local)),
            ("mean_stabilization", Json::Num(r.mean_stabilization)),
        ];
        if let Some(env) = r.envelope {
            fields.push(("mean_peak_time", Json::Num(env.mean_peak_time)));
            fields.push(("mean_growth_slope", Json::Num(env.mean_growth_slope)));
            fields.push(("mean_recovery_slope", Json::Num(env.mean_recovery_slope)));
        }
        Json::Obj(fields)
    };
    let head = Json::Obj(vec![
        ("format", Json::Str(BASELINE_FORMAT.to_string())),
        ("campaign", Json::Str(summary.campaign.clone())),
        ("scale", Json::Str(summary.scale.clone())),
        (
            "seeds",
            Json::Arr(summary.seeds.iter().map(|&s| Json::Int(s)).collect()),
        ),
    ]);
    // Splice the dynamic-keyed parts in by hand (the writer's object type
    // carries static keys only): the tolerance table, then one scenario
    // per line.
    let head = head.to_string();
    let mut out = String::new();
    out.push_str(&head[..head.len() - 1]);
    out.push_str(",\"tolerances\":{");
    for (i, (name, tol)) in summary.tolerances.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", Json::Str(name.clone()), Json::Num(*tol)));
    }
    out.push_str("},\"scenarios\":[\n");
    for (i, r) in summary.rows.iter().enumerate() {
        out.push_str(&row_json(r).to_string());
        if i + 1 < summary.rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Reads a baseline document — `gcs-baseline/v2` or a legacy
/// `gcs-baseline/v1` (whose rows then carry no envelope and whose
/// tolerance table is empty).
///
/// # Errors
///
/// Returns a message on malformed JSON, a wrong `format` tag, or a
/// missing/mistyped field.
pub fn read_baseline(text: &str) -> Result<TrendSummary, String> {
    baseline_from_doc(&json::parse(text)?)
}

fn baseline_from_doc(doc: &JsonValue) -> Result<TrendSummary, String> {
    let format = str_field(doc, "format", "baseline")?;
    if format != BASELINE_FORMAT && format != BASELINE_FORMAT_V1 {
        return Err(format!(
            "expected format {BASELINE_FORMAT:?} (or legacy {BASELINE_FORMAT_V1:?}), \
             got {format:?}"
        ));
    }
    let seeds = arr_field(doc, "seeds", "baseline")?
        .iter()
        .map(|s| s.as_u64().ok_or_else(|| "non-integer seed".to_string()))
        .collect::<Result<Vec<u64>, String>>()?;
    let mut rows = Vec::new();
    for sc in arr_field(doc, "scenarios", "baseline")? {
        let name = str_field(sc, "name", "baseline scenario")?;
        let what = format!("baseline scenario {name:?}");
        // A v1 row never carries the envelope; a v2 row normally does,
        // but a v2 file re-serialized from a v1 source keeps that row's
        // envelope absent — tolerated on read, exactly like on write, so
        // `baseline` never emits a document it cannot read back.
        let envelope = if sc.get("mean_peak_time").is_some() {
            Some(EnvelopeStats {
                mean_peak_time: f64_field(sc, "mean_peak_time", &what)?,
                mean_growth_slope: f64_field(sc, "mean_growth_slope", &what)?,
                mean_recovery_slope: f64_field(sc, "mean_recovery_slope", &what)?,
            })
        } else {
            None
        };
        rows.push(TrendRow {
            nodes: u64_field(sc, "nodes", &what)?,
            metric: str_field(sc, "metric", &what)?,
            runs: u64_field(sc, "runs", &what)?,
            mean_primary: f64_field(sc, "mean_primary", &what)?,
            p90_primary: f64_field(sc, "p90_primary", &what)?,
            mean_global: f64_field(sc, "mean_global_skew", &what)?,
            p90_global: f64_field(sc, "p90_global_skew", &what)?,
            mean_local: f64_field(sc, "mean_local_skew", &what)?,
            p90_local: f64_field(sc, "p90_local_skew", &what)?,
            mean_stabilization: f64_field(sc, "mean_stabilization", &what)?,
            name,
            envelope,
        });
    }
    let mut tolerances = Vec::new();
    if let Some(tols) = doc.get("tolerances") {
        let JsonValue::Obj(fields) = tols else {
            return Err("baseline: field \"tolerances\" is not an object".to_string());
        };
        for (name, v) in fields {
            let tol = v
                .as_f64()
                .filter(|t| t.is_finite() && *t >= 0.0)
                .ok_or_else(|| {
                    format!("baseline: tolerance for {name:?} is not a non-negative number")
                })?;
            tolerances.push((name.clone(), tol));
        }
        tolerances.sort_by(|a, b| a.0.cmp(&b.0));
    }
    Ok(TrendSummary {
        campaign: str_field(doc, "campaign", "baseline")?,
        scale: str_field(doc, "scale", "baseline")?,
        seeds,
        rows,
        tolerances,
    })
}

/// Reads either artifact flavour into a [`TrendSummary`], keyed on the
/// `format` tag — so `compare` accepts a raw campaign artifact where a
/// baseline is expected and vice versa.
///
/// # Errors
///
/// Returns a message on malformed JSON or an unknown `format` tag.
pub fn read_summary(text: &str) -> Result<TrendSummary, String> {
    let doc = json::parse(text)?;
    match str_field(&doc, "format", "artifact")?.as_str() {
        BASELINE_FORMAT | BASELINE_FORMAT_V1 => baseline_from_doc(&doc),
        CAMPAIGN_FORMAT => Ok(TrendSummary::from_campaign(&campaign_from_doc(&doc)?)),
        other => Err(format!("unknown artifact format {other:?}")),
    }
}

// ---------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------

/// One out-of-tolerance observation.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftFinding {
    /// Scenario name.
    pub scenario: String,
    /// What drifted: a [`TrendRow::columns`] label, or a structural
    /// problem (`missing scenario`, `new scenario`, `runs`).
    pub column: String,
    /// Baseline value (NaN for structural findings).
    pub baseline: f64,
    /// Current value (NaN for structural findings).
    pub current: f64,
}

impl DriftFinding {
    /// Signed relative drift (`+0.25` = 25 % above baseline). A
    /// significant move away from a (near-)zero baseline has no finite
    /// ratio and reports ±∞, so it still ranks as the worst drift and
    /// prints as `+inf%` rather than masquerading as `+0.0%`.
    #[must_use]
    pub fn relative(&self) -> f64 {
        let delta = self.current - self.baseline;
        if self.baseline.abs() >= ABSOLUTE_FLOOR {
            delta / self.baseline.abs()
        } else if delta.abs() <= ABSOLUTE_FLOOR {
            0.0
        } else {
            f64::INFINITY.copysign(delta)
        }
    }
}

/// The outcome of a baseline comparison: a printable table plus every
/// finding that breaches the tolerance.
#[derive(Debug)]
pub struct CompareReport {
    /// One row per scenario, baseline vs current headline stats.
    pub table: Table,
    /// Out-of-tolerance findings (empty ⇒ gate passes).
    pub findings: Vec<DriftFinding>,
}

impl CompareReport {
    /// Whether the gate passes.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Diffs `current` against `baseline` with default relative tolerance
/// `tol` (`0.25` = ±25 %; drifts under an absolute floor of 1 µs never
/// count). A per-scenario override in the *baseline*'s tolerance table
/// takes precedence over `tol` — tight for deterministic topologies,
/// loose for seed-realized random families. Envelope columns (peak time,
/// growth/recovery slope) gate whenever both sides carry them, so a
/// doubled recovery slope fails even when every mean stays flat.
/// Scenario-set mismatches and changed seed counts are findings too —
/// the baseline must be refreshed deliberately, not silently outgrown.
#[must_use]
pub fn compare(baseline: &TrendSummary, current: &TrendSummary, tol: f64) -> CompareReport {
    let mut findings = Vec::new();
    let mut table = Table::new(
        format!(
            "campaign trend — {} ({} seeds, scale {}) vs baseline, default tol ±{:.0}%",
            current.campaign,
            current.seeds.len(),
            current.scale,
            tol * 100.0
        ),
        &[
            "scenario",
            "tol",
            "primary (base)",
            "primary (cur)",
            "global p90 (base)",
            "global p90 (cur)",
            "recovery (base)",
            "recovery (cur)",
            "worst drift",
            "status",
        ],
    );
    table.caption(
        "primary = each scenario's own metric (mean across seeds); recovery = mean \
         trajectory recovery slope. A drift beyond the scenario's tolerance in any \
         tracked column (primary/global/local mean+p90, stabilization, peak time, \
         growth/recovery slope) fails the gate; refresh the baseline deliberately \
         when a change is intended.",
    );
    let recovery_cell = |r: &TrendRow| {
        r.envelope
            .map_or("-".to_string(), |e| fmt(e.mean_recovery_slope))
    };

    for base_row in &baseline.rows {
        let row_tol = baseline.tolerance_for(&base_row.name, tol);
        let Some(cur_row) = current.rows.iter().find(|r| r.name == base_row.name) else {
            findings.push(DriftFinding {
                scenario: base_row.name.clone(),
                column: "missing scenario".to_string(),
                baseline: f64::NAN,
                current: f64::NAN,
            });
            table.row([
                base_row.name.clone(),
                format!("±{:.0}%", row_tol * 100.0),
                fmt(base_row.mean_primary),
                "-".to_string(),
                fmt(base_row.p90_global),
                "-".to_string(),
                recovery_cell(base_row),
                "-".to_string(),
                "-".to_string(),
                "MISSING".to_string(),
            ]);
            continue;
        };
        let mut row_findings = Vec::new();
        if cur_row.runs != base_row.runs {
            row_findings.push(DriftFinding {
                scenario: base_row.name.clone(),
                column: "runs".to_string(),
                baseline: base_row.runs as f64,
                current: cur_row.runs as f64,
            });
        }
        let mut worst: Option<DriftFinding> = None;
        // zip() stops at the shorter column list, so a legacy v1 side
        // simply leaves the envelope columns ungated.
        for ((label, base), (_, cur)) in base_row.columns().iter().zip(cur_row.columns().iter()) {
            let finding = DriftFinding {
                scenario: base_row.name.clone(),
                column: (*label).to_string(),
                baseline: *base,
                current: *cur,
            };
            let out_of_tol = (cur - base).abs() > row_tol * base.abs() + ABSOLUTE_FLOOR;
            if worst
                .as_ref()
                .is_none_or(|w| finding.relative().abs() > w.relative().abs())
            {
                worst = Some(finding.clone());
            }
            if out_of_tol {
                row_findings.push(finding);
            }
        }
        let status = if row_findings.is_empty() {
            "ok".to_string()
        } else {
            "DRIFT".to_string()
        };
        let worst_cell = worst.map_or("-".to_string(), |w| {
            format!("{} {:+.1}%", w.column, w.relative() * 100.0)
        });
        table.row([
            base_row.name.clone(),
            format!("±{:.0}%", row_tol * 100.0),
            fmt(base_row.mean_primary),
            fmt(cur_row.mean_primary),
            fmt(base_row.p90_global),
            fmt(cur_row.p90_global),
            recovery_cell(base_row),
            recovery_cell(cur_row),
            worst_cell,
            status,
        ]);
        findings.append(&mut row_findings);
    }
    for cur_row in &current.rows {
        if !baseline.rows.iter().any(|r| r.name == cur_row.name) {
            findings.push(DriftFinding {
                scenario: cur_row.name.clone(),
                column: "new scenario (refresh the baseline)".to_string(),
                baseline: f64::NAN,
                current: f64::NAN,
            });
            table.row([
                cur_row.name.clone(),
                "-".to_string(),
                "-".to_string(),
                fmt(cur_row.mean_primary),
                "-".to_string(),
                fmt(cur_row.p90_global),
                "-".to_string(),
                recovery_cell(cur_row),
                "-".to_string(),
                "NEW".to_string(),
            ]);
        }
    }
    CompareReport { table, findings }
}

fn fmt(v: f64) -> String {
    gcs_analysis::report::fmt_val(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{campaign_json, run_campaign};
    use crate::registry;

    fn tiny_rows() -> (Vec<u64>, Vec<CampaignRow>) {
        let specs = vec![
            registry::find("line-worstcase")
                .unwrap()
                .scaled(Scale::Tiny),
            registry::find("self-heal").unwrap().scaled(Scale::Tiny),
        ];
        let seeds = vec![0, 1];
        let rows = run_campaign(&specs, &seeds).unwrap();
        (seeds, rows)
    }

    #[test]
    fn campaign_reader_inverts_the_writer() {
        let (seeds, rows) = tiny_rows();
        let text = campaign_json("smoke", Scale::Tiny, &seeds, &rows);
        let artifact = read_campaign(&text).unwrap();
        assert_eq!(artifact.campaign, "smoke");
        assert_eq!(artifact.scale, "tiny");
        assert_eq!(artifact.seeds, seeds);
        assert_eq!(artifact.rows, rows, "parsed rows must be bit-identical");
    }

    #[test]
    fn baseline_round_trips() {
        let (seeds, rows) = tiny_rows();
        let mut summary = TrendSummary::from_rows("smoke", Scale::Tiny, &seeds, &rows);
        summary.tolerances = default_tolerances(&summary);
        let text = baseline_json(&summary);
        assert!(text.starts_with("{\"format\":\"gcs-baseline/v2\""));
        assert!(text.contains("\"tolerances\":{"));
        assert!(text.contains("\"mean_recovery_slope\""));
        let back = read_baseline(&text).unwrap();
        assert_eq!(back, summary);
        // And the format-sniffing reader agrees on both flavours (the raw
        // campaign artifact distills with an empty tolerance table).
        assert_eq!(read_summary(&text).unwrap(), summary);
        let campaign_text = campaign_json("smoke", Scale::Tiny, &seeds, &rows);
        let mut from_campaign = summary.clone();
        from_campaign.tolerances = Vec::new();
        assert_eq!(read_summary(&campaign_text).unwrap(), from_campaign);
    }

    #[test]
    fn legacy_v1_baselines_still_parse() {
        // A v1 document as PR 3's writer emitted it: no envelope fields,
        // no tolerance table.
        let text = "{\"format\":\"gcs-baseline/v1\",\"campaign\":\"old\",\"scale\":\"tiny\",\
                    \"seeds\":[0,1],\"scenarios\":[\n\
                    {\"name\":\"ring-steady\",\"nodes\":4,\"metric\":\"global-skew\",\"runs\":2,\
                    \"mean_primary\":0.01,\"p90_primary\":0.012,\"mean_global_skew\":0.01,\
                    \"p90_global_skew\":0.012,\"mean_local_skew\":0.005,\"p90_local_skew\":0.006,\
                    \"mean_stabilization\":1.5}\n]}\n";
        let summary = read_baseline(text).unwrap();
        assert_eq!(summary.rows.len(), 1);
        assert_eq!(summary.rows[0].envelope, None);
        assert!(summary.tolerances.is_empty());
        assert_eq!(read_summary(text).unwrap(), summary);
        // Comparing a v1 baseline against a v2 current gates the scalar
        // columns only (the envelope columns have no baseline).
        let mut current = summary.clone();
        current.rows[0].envelope = Some(EnvelopeStats {
            mean_peak_time: 3.0,
            mean_growth_slope: 0.01,
            mean_recovery_slope: 0.02,
        });
        assert!(compare(&summary, &current, 0.05).passed());
    }

    #[test]
    fn v2_reserialization_of_a_v1_baseline_reads_back() {
        // `gcs-scenarios baseline` accepts a legacy v1 baseline as input
        // and re-emits it as v2; the envelope-less rows must survive the
        // round trip rather than poison the new file.
        let v1 = "{\"format\":\"gcs-baseline/v1\",\"campaign\":\"old\",\"scale\":\"tiny\",\
                  \"seeds\":[0],\"scenarios\":[\n\
                  {\"name\":\"ring-steady\",\"nodes\":4,\"metric\":\"global-skew\",\"runs\":1,\
                  \"mean_primary\":0.01,\"p90_primary\":0.01,\"mean_global_skew\":0.01,\
                  \"p90_global_skew\":0.01,\"mean_local_skew\":0.005,\"p90_local_skew\":0.005,\
                  \"mean_stabilization\":1.5}\n]}\n";
        let mut summary = read_baseline(v1).unwrap();
        summary.tolerances = default_tolerances(&summary);
        let v2_text = baseline_json(&summary);
        assert!(v2_text.starts_with("{\"format\":\"gcs-baseline/v2\""));
        let back = read_baseline(&v2_text).expect("v2 file with v1-sourced rows must parse");
        assert_eq!(back, summary);
        assert_eq!(back.rows[0].envelope, None);
    }

    #[test]
    fn envelope_is_invariant_to_order_and_duplication() {
        let traj: Vec<(f64, f64)> = (0..=20)
            .map(|k| {
                let t = k as f64 * 0.5;
                (
                    t,
                    if t < 5.0 {
                        0.02 * t
                    } else {
                        (0.3 - 0.05 * (t - 5.0)).max(0.01)
                    },
                )
            })
            .collect();
        let base = envelope(&traj);
        assert!(base.peak > 0.0 && base.peak_time > 0.0);
        assert!(base.growth_slope > 0.0 && base.recovery_slope > 0.0);
        let mut shuffled = traj.clone();
        shuffled.reverse();
        shuffled.swap(3, 11);
        assert_eq!(envelope(&shuffled), base, "order must not matter");
        let mut duplicated = traj.clone();
        duplicated.extend_from_slice(&traj[5..15]);
        duplicated.push(traj[0]);
        assert_eq!(envelope(&duplicated), base, "duplication must not matter");
        assert_eq!(envelope(&[]).peak, 0.0);
    }

    #[test]
    fn per_scenario_tolerances_override_the_default() {
        let (seeds, rows) = tiny_rows();
        let mut base = TrendSummary::from_rows("smoke", Scale::Tiny, &seeds, &rows);
        let mut cur = base.clone();
        cur.rows[0].mean_global *= 1.4; // +40 %
                                        // Default tol 50 %: passes.
        assert!(compare(&base, &cur, 0.50).passed());
        // A tight per-scenario override on that scenario: fails.
        base.tolerances = vec![(base.rows[0].name.clone(), 0.10)];
        let report = compare(&base, &cur, 0.50);
        assert!(!report.passed());
        assert!(report
            .findings
            .iter()
            .all(|f| f.scenario == base.rows[0].name));
        // A loose override on the drifting scenario forgives it even when
        // the default is tight (the other scenarios have zero drift, so
        // the tight default cannot trip them).
        base.tolerances = vec![(base.rows[0].name.clone(), 0.60)];
        assert!(compare(&base, &cur, 0.01).passed());
    }

    #[test]
    fn default_tolerances_are_tight_for_deterministic_scenarios() {
        let (seeds, rows) = tiny_rows();
        let summary = TrendSummary::from_rows("smoke", Scale::Tiny, &seeds, &rows);
        let tols = default_tolerances(&summary);
        assert_eq!(tols.len(), summary.rows.len());
        // line-worstcase is fully deterministic; self-heal too (line +
        // two-block + scripted fault).
        for (name, tol) in &tols {
            assert_eq!(*tol, TOL_TIGHT, "{name} should be tight");
        }
        // A random-family scenario gets the loose tolerance.
        let specs = vec![registry::find("geometric-dense")
            .unwrap()
            .scaled(Scale::Tiny)];
        let rows = run_campaign(&specs, &[0]).unwrap();
        let summary = TrendSummary::from_rows("r", Scale::Tiny, &[0], &rows);
        assert_eq!(default_tolerances(&summary)[0].1, TOL_LOOSE);
    }

    #[test]
    fn perturbed_recovery_slope_fails_the_envelope_gate() {
        // The regression the scalar gate cannot see: recovery takes a
        // different slope while the scalar stats barely move. A +40 %
        // recovery-slope drift must fail at the tight tolerance.
        let (seeds, rows) = tiny_rows();
        let base = TrendSummary::from_rows("smoke", Scale::Tiny, &seeds, &rows);
        let mut cur = base.clone();
        for row in &mut cur.rows {
            let env = row.envelope.as_mut().unwrap();
            env.mean_recovery_slope *= 1.4;
        }
        let report = compare(&base, &cur, TOL_TIGHT);
        assert!(!report.passed(), "slope drift must gate");
        assert!(report.findings.iter().all(|f| f.column == "recovery slope"));
        // The very same artifacts pass when the envelope is unperturbed.
        assert!(compare(&base, &base, TOL_TIGHT).passed());
    }

    #[test]
    fn identical_artifacts_compare_clean() {
        let (seeds, rows) = tiny_rows();
        let summary = TrendSummary::from_rows("smoke", Scale::Tiny, &seeds, &rows);
        let report = compare(&summary, &summary, 0.05);
        assert!(report.passed(), "{:?}", report.findings);
        assert_eq!(report.table.row_count(), summary.rows.len());
    }

    #[test]
    fn injected_regression_is_flagged() {
        let (seeds, rows) = tiny_rows();
        let base = TrendSummary::from_rows("smoke", Scale::Tiny, &seeds, &rows);
        let mut cur = base.clone();
        // A +20 % global-skew regression in one scenario.
        cur.rows[0].mean_global *= 1.2;
        cur.rows[0].p90_global *= 1.2;
        let report = compare(&base, &cur, 0.10);
        assert!(!report.passed());
        assert!(report
            .findings
            .iter()
            .any(|f| f.scenario == base.rows[0].name && f.column == "global mean"));
        // The same drift sails through a generous tolerance.
        assert!(compare(&base, &cur, 0.30).passed());
    }

    #[test]
    fn drift_from_a_zero_baseline_reports_infinite_relative() {
        let (seeds, rows) = tiny_rows();
        let base = TrendSummary::from_rows("smoke", Scale::Tiny, &seeds, &rows);
        let mut cur = base.clone();
        let mut zero_base = base.clone();
        zero_base.rows[0].mean_stabilization = 0.0;
        cur.rows[0].mean_stabilization = 5.0;
        let report = compare(&zero_base, &cur, 0.10);
        let f = report
            .findings
            .iter()
            .find(|f| f.column == "stabilization")
            .expect("zero-baseline drift flagged");
        assert_eq!(f.relative(), f64::INFINITY, "must rank as worst, not +0%");
    }

    #[test]
    fn scenario_set_mismatches_are_structural_findings() {
        let (seeds, rows) = tiny_rows();
        let base = TrendSummary::from_rows("smoke", Scale::Tiny, &seeds, &rows);
        let mut cur = base.clone();
        let dropped = cur.rows.remove(0);
        let report = compare(&base, &cur, 0.5);
        assert!(report
            .findings
            .iter()
            .any(|f| f.scenario == dropped.name && f.column == "missing scenario"));
        let report = compare(&cur, &base, 0.5);
        assert!(report
            .findings
            .iter()
            .any(|f| f.scenario == dropped.name && f.column.starts_with("new scenario")));
    }

    #[test]
    fn stabilization_time_finds_the_recovery_point() {
        // Steady at 0.1, spike to 1.0 at t = 5, decays back by t = 8.
        let mut traj: Vec<(f64, f64)> = (0..=20).map(|k| (k as f64 * 0.5, 0.1)).collect();
        for (t, g) in traj.iter_mut() {
            if *t >= 5.0 {
                *g = (1.0 - (*t - 5.0) * 0.3).max(0.1);
            }
        }
        let st = stabilization_time(&traj);
        assert!((7.0..=9.0).contains(&st), "got {st}");
        // A flat run stabilizes immediately.
        let flat: Vec<(f64, f64)> = (0..=10).map(|k| (k as f64, 0.2)).collect();
        assert_eq!(stabilization_time(&flat), 0.0);
        assert_eq!(stabilization_time(&[]), 0.0);
        // A diverging run — still climbing when observation ends — never
        // settles: it reports the final instant, not "settled at t=0".
        let grow: Vec<(f64, f64)> = (0..=20)
            .map(|k| (k as f64 * 0.5, 0.01 * k as f64))
            .collect();
        assert_eq!(stabilization_time(&grow), 10.0);
    }
}
