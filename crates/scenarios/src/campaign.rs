//! The campaign runner: scenario × seed fan-out, ensemble aggregation,
//! and the machine-readable `results/campaign_*.json` trajectory artifact.
//!
//! Fan-out goes through [`gcs_analysis::parallel_map`] (the same function
//! the experiment harness uses as `gcs_bench::parallel_map`) and
//! aggregation through [`EnsembleStats`], so campaign numbers are directly
//! comparable with the theorem experiments.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use gcs_analysis::{local_skew_with, parallel_map_progress, EnsembleStats};

use crate::error::ScenarioError;
use crate::json::Json;
use crate::spec::{FaultSpec, Metric, Scale, ScenarioSpec};

/// Replays a spec's scripted faults into a hand-driven simulation: runs
/// it forward to each fault's instant (in time order) and injects the
/// offset. The campaign runner interleaves faults with its sampling grid
/// itself; this is the seam for experiment harnesses that drive their
/// own observation loop but still source injections from the spec.
pub fn apply_faults<E: gcs_core::Engine>(sim: &mut E, faults: &[FaultSpec]) {
    let mut faults = faults.to_vec();
    faults.sort_by(|a, b| a.at().total_cmp(&b.at()));
    for f in faults {
        sim.run_until_secs(f.at());
        inject(sim, f);
    }
}

/// Dispatches one scripted fault to the engine's injection seam. The
/// engine must already be at the fault's instant.
fn inject<E: gcs_core::Engine>(sim: &mut E, f: FaultSpec) {
    match f {
        FaultSpec::ClockOffset { node, amount, .. } => {
            sim.inject_clock_offset(gcs_net::NodeId::from(node), amount);
        }
        FaultSpec::EstimateBias { node, bias, .. } => {
            sim.inject_estimate_bias(gcs_net::NodeId::from(node), bias);
        }
    }
}

/// Everything one seeded run of one scenario produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// The run seed.
    pub seed: u64,
    /// The scenario's primary metric (see [`Metric`]).
    pub primary: f64,
    /// Maximum global skew over the observation window.
    pub max_global_skew: f64,
    /// Maximum local (per-edge) skew over the observation window.
    pub max_local_skew: f64,
    /// Global skew at the final instant.
    pub final_global_skew: f64,
    /// Sampled instants (inside the observation window) at which
    /// [`Simulation::verify_invariants`](gcs_core::Simulation::verify_invariants)
    /// reported violations. Nonzero is expected while a partition is open
    /// or right after a fault injection.
    pub invariant_violations: u64,
    /// Messages handed to the transport.
    pub messages_sent: u64,
    /// Messages delivered.
    pub messages_delivered: u64,
    /// Messages dropped by the continuity rule.
    pub messages_dropped: u64,
    /// Total events the engine processed.
    pub events: u64,
    /// Tick sweeps executed.
    pub ticks: u64,
    /// Nodes actually re-evaluated across all tick sweeps (the dirty-set
    /// engine's work, vs `nodes × ticks` for a full per-tick pass).
    pub mode_evaluations: u64,
    /// `(t, global skew)` at every sampled instant of the whole run —
    /// the trajectory other tooling plots or regression-checks.
    pub trajectory: Vec<(f64, f64)>,
}

/// Drives a built simulation over a scenario's observation grid: at every
/// instant `k · sample` (with the exact `end` instant appended), any
/// scripted fault due by then is injected at *its* exact instant first,
/// then the simulation is advanced to the sample instant and `observe` is
/// called. This is the one sampling/fault-replay loop shared by the
/// campaign runner, the conformance runner, and the engine-equivalence
/// suite — the subtle invariants (fault ordering by `total_cmp`, faults
/// due *at* a sample firing before it, the `end − 1e-12` epsilon) live
/// here and nowhere else.
pub fn drive_sampled<E: gcs_core::Engine>(
    sim: &mut E,
    faults: &[FaultSpec],
    sample: f64,
    end: f64,
    mut observe: impl FnMut(f64, &E),
) {
    let mut faults = faults.to_vec();
    faults.sort_by(|a, b| a.at().total_cmp(&b.at()));
    let mut next_fault = 0usize;
    let mut k = 0u64;
    loop {
        let t = (k as f64 * sample).min(end);
        while next_fault < faults.len() && faults[next_fault].at() <= t {
            let f = faults[next_fault];
            sim.run_until_secs(f.at());
            inject(sim, f);
            next_fault += 1;
        }
        sim.run_until_secs(t);
        observe(t, sim);
        if t >= end - 1e-12 {
            break;
        }
        k += 1;
    }
}

/// Runs one scenario once: builds the simulation, replays scripted faults
/// at their exact instants, samples on the observation grid, and returns
/// the outcome.
///
/// # Errors
///
/// Returns [`ScenarioError`] if the spec fails to validate or build.
pub fn run_scenario(spec: &ScenarioSpec, seed: u64) -> Result<ScenarioOutcome, ScenarioError> {
    let mut sim = spec.build(seed)?;

    let mut trajectory = Vec::new();
    let mut max_global_skew = 0.0f64;
    let mut max_local_skew = 0.0f64;
    let mut invariant_violations = 0u64;
    // One edge buffer for the whole observation loop (the local-skew
    // samples would otherwise allocate a fresh vector per instant).
    let mut edges = Vec::new();

    drive_sampled(
        &mut sim,
        &spec.faults,
        spec.sample,
        spec.end_secs(),
        |t, sim| {
            let g = sim.global_skew_now();
            trajectory.push((t, g));
            if t >= spec.warmup - 1e-9 {
                max_global_skew = max_global_skew.max(g);
                max_local_skew = max_local_skew.max(local_skew_with(sim, &mut edges));
                if !sim.verify_invariants().is_empty() {
                    invariant_violations += 1;
                }
            }
        },
    );

    let final_global_skew = trajectory.last().map_or(0.0, |&(_, g)| g);
    let stats = sim.stats();
    Ok(ScenarioOutcome {
        seed,
        primary: match spec.metric {
            Metric::GlobalSkew => max_global_skew,
            Metric::LocalSkew => max_local_skew,
            Metric::FinalGlobalSkew => final_global_skew,
        },
        max_global_skew,
        max_local_skew,
        final_global_skew,
        invariant_violations,
        messages_sent: stats.messages_sent,
        messages_delivered: stats.messages_delivered,
        messages_dropped: stats.messages_dropped,
        events: stats.events,
        ticks: stats.ticks,
        mode_evaluations: stats.mode_evaluations,
        trajectory,
    })
}

/// One scenario's aggregated campaign result.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Scenario name.
    pub name: String,
    /// Node count after scaling.
    pub nodes: usize,
    /// The aggregated metric.
    pub metric: Metric,
    /// Ensemble statistics of the primary metric across seeds.
    pub stats: EnsembleStats,
    /// Per-seed outcomes, in seed order.
    pub outcomes: Vec<ScenarioOutcome>,
}

/// Runs every scenario × seed combination in parallel (one scoped thread
/// per run, input order preserved) and aggregates per scenario.
///
/// # Errors
///
/// Returns the first [`ScenarioError`] any run produced.
pub fn run_campaign(
    specs: &[ScenarioSpec],
    seeds: &[u64],
) -> Result<Vec<CampaignRow>, ScenarioError> {
    run_campaign_progress(specs, seeds, |_, _, _| {})
}

/// [`run_campaign`] with a completion callback: `on_done(spec, seed,
/// result)` fires once per scenario × seed, **in job order** (scenario-
/// major, then seed) regardless of which worker finished first — so
/// progress output is deterministic and CI logs diff cleanly.
///
/// # Errors
///
/// Returns the first [`ScenarioError`] any run produced (after every job
/// has been reported).
pub fn run_campaign_progress(
    specs: &[ScenarioSpec],
    seeds: &[u64],
    on_done: impl Fn(&ScenarioSpec, u64, &Result<ScenarioOutcome, ScenarioError>) + Sync,
) -> Result<Vec<CampaignRow>, ScenarioError> {
    assert!(!seeds.is_empty(), "a campaign needs at least one seed");
    let jobs: Vec<(usize, u64)> = specs
        .iter()
        .enumerate()
        .flat_map(|(i, _)| seeds.iter().map(move |&s| (i, s)))
        .collect();
    let results = parallel_map_progress(
        jobs,
        |(i, seed)| run_scenario(&specs[i], seed),
        |idx, result| {
            let spec = &specs[idx / seeds.len()];
            on_done(spec, seeds[idx % seeds.len()], result);
        },
    );

    let mut rows = Vec::with_capacity(specs.len());
    let mut it = results.into_iter();
    for spec in specs {
        let mut outcomes = Vec::with_capacity(seeds.len());
        for _ in seeds {
            outcomes.push(it.next().expect("one result per job")?);
        }
        let primaries: Vec<f64> = outcomes.iter().map(|o| o.primary).collect();
        rows.push(CampaignRow {
            name: spec.name.clone(),
            nodes: spec.topology.node_count(),
            metric: spec.metric,
            stats: EnsembleStats::from_values(&primaries),
            outcomes,
        });
    }
    Ok(rows)
}

/// Serializes a campaign to the JSON artifact format (see
/// `scenarios/README.md` for the schema).
#[must_use]
pub fn campaign_json(title: &str, scale: Scale, seeds: &[u64], rows: &[CampaignRow]) -> String {
    let stats_json = |s: &EnsembleStats| {
        Json::Obj(vec![
            ("runs", Json::Int(s.runs as u64)),
            ("mean", Json::Num(s.mean)),
            ("min", Json::Num(s.min)),
            ("max", Json::Num(s.max)),
            ("median", Json::Num(s.median)),
            ("stddev", Json::Num(s.stddev)),
            ("p10", Json::Num(s.p10)),
            ("p90", Json::Num(s.p90)),
        ])
    };
    let outcome_json = |o: &ScenarioOutcome| {
        Json::Obj(vec![
            ("seed", Json::Int(o.seed)),
            ("primary", Json::Num(o.primary)),
            ("max_global_skew", Json::Num(o.max_global_skew)),
            ("max_local_skew", Json::Num(o.max_local_skew)),
            ("final_global_skew", Json::Num(o.final_global_skew)),
            ("invariant_violations", Json::Int(o.invariant_violations)),
            ("messages_sent", Json::Int(o.messages_sent)),
            ("messages_delivered", Json::Int(o.messages_delivered)),
            ("messages_dropped", Json::Int(o.messages_dropped)),
            ("events", Json::Int(o.events)),
            ("ticks", Json::Int(o.ticks)),
            ("mode_evaluations", Json::Int(o.mode_evaluations)),
            (
                "trajectory",
                Json::Arr(
                    o.trajectory
                        .iter()
                        .map(|&(t, g)| Json::Arr(vec![Json::Num(t), Json::Num(g)]))
                        .collect(),
                ),
            ),
        ])
    };
    let doc = Json::Obj(vec![
        ("format", Json::Str("gcs-campaign/v1".to_string())),
        ("campaign", Json::Str(title.to_string())),
        ("scale", Json::Str(scale.name().to_string())),
        (
            "seeds",
            Json::Arr(seeds.iter().map(|&s| Json::Int(s)).collect()),
        ),
        (
            "scenarios",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("name", Json::Str(r.name.clone())),
                            ("nodes", Json::Int(r.nodes as u64)),
                            ("metric", Json::Str(r.metric.token().to_string())),
                            ("stats", stats_json(&r.stats)),
                            (
                                "outcomes",
                                Json::Arr(r.outcomes.iter().map(outcome_json).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    format!("{doc}\n")
}

/// Writes the artifact to `dir/campaign_<unix-millis>.json`, creating the
/// directory if needed, and returns the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_campaign(
    dir: &Path,
    title: &str,
    scale: Scale,
    seeds: &[u64],
    rows: &[CampaignRow],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let path = dir.join(format!("campaign_{stamp}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(campaign_json(title, scale, seeds, rows).as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    fn tiny(name: &str) -> ScenarioSpec {
        registry::find(name).expect("built-in").scaled(Scale::Tiny)
    }

    #[test]
    fn run_scenario_is_deterministic() {
        let spec = tiny("line-worstcase");
        let a = run_scenario(&spec, 3).unwrap();
        let b = run_scenario(&spec, 3).unwrap();
        assert_eq!(a, b, "identical spec + seed must give identical outcomes");
        let c = run_scenario(&spec, 4).unwrap();
        assert_ne!(a.trajectory, c.trajectory, "seeds must matter");
    }

    #[test]
    fn faults_fire_and_show_in_the_trajectory() {
        let spec = tiny("self-heal");
        let fault_at = spec.faults[0].at();
        let out = run_scenario(&spec, 1).unwrap();
        // Just after the injection the global skew must reflect the offset.
        let after = out
            .trajectory
            .iter()
            .find(|&&(t, _)| t >= fault_at)
            .expect("samples after the fault");
        assert!(after.1 >= 0.9, "fault not visible: {after:?}");
        // final-global-skew metric: recovery should beat the spike.
        assert!(out.primary < out.max_global_skew);
    }

    #[test]
    fn campaign_aggregates_per_scenario() {
        let specs = vec![tiny("line-worstcase"), tiny("ring-steady")];
        let seeds = [1, 2];
        let rows = run_campaign(&specs, &seeds).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "line-worstcase");
        assert_eq!(rows[0].stats.runs, 2);
        assert!(rows[0].stats.min <= rows[0].stats.max);
        let json = campaign_json("smoke", Scale::Tiny, &seeds, &rows);
        assert!(json.starts_with("{\"format\":\"gcs-campaign/v1\""));
        assert!(json.contains("\"stddev\""));
        assert!(json.contains("\"p90\""));
        assert!(json.contains("\"trajectory\":[["));
        assert!(json.contains("\"events\":"));
        assert!(json.contains("\"ticks\":"));
        assert!(json.contains("\"mode_evaluations\":"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn campaign_progress_reports_every_job_in_canonical_order() {
        use std::sync::Mutex;
        let specs = vec![tiny("line-worstcase"), tiny("ring-steady")];
        let seeds = [1, 2, 3];
        let seen = Mutex::new(Vec::new());
        let rows = run_campaign_progress(&specs, &seeds, |spec, seed, result| {
            assert!(result.is_ok());
            seen.lock().unwrap().push((spec.name.clone(), seed));
        })
        .unwrap();
        assert_eq!(rows.len(), 2);
        let seen = seen.into_inner().unwrap();
        // Scenario-major then seed order, independent of completion order.
        let expected: Vec<(String, u64)> = specs
            .iter()
            .flat_map(|s| seeds.iter().map(|&x| (s.name.clone(), x)))
            .collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn outcome_surfaces_engine_counters() {
        let out = run_scenario(&tiny("ring-steady"), 0).unwrap();
        assert!(out.events > 0);
        assert!(out.ticks > 0);
        assert!(out.mode_evaluations > 0);
        // The dirty-set engine evaluates strictly less than nodes × ticks
        // on a steady scenario (that headroom is what the counter shows).
        assert!(out.events > out.ticks);
    }
}
