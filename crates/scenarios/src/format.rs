//! The line-oriented `.scn` scenario file format.
//!
//! Hand-rolled (the workspace is hermetic — no serde): one `key value`
//! pair per line, `#` comments and blank lines ignored, order of `key=val`
//! arguments inside a line irrelevant on input. [`write`] emits the
//! *canonical* form — fixed field order, canonical argument order, floats
//! in shortest round-trip notation — and [`parse`] inverts it exactly:
//!
//! ```text
//! parse(write(spec)) == spec          // value round-trip
//! write(parse(write(spec))) == write(spec)   // byte round-trip
//! ```
//!
//! The grammar is documented in `scenarios/README.md` at the repo root.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::error::ScenarioError;
use crate::spec::{
    DriftSpec, DynamicsSpec, EstimateSpec, FaultSpec, Metric, ScenarioSpec, TopologySpec,
};

/// Serializes a spec to canonical `.scn` text.
#[must_use]
pub fn write(spec: &ScenarioSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# gcs-scenarios v1");
    let _ = writeln!(out, "scenario {}", spec.name);
    if !spec.description.is_empty() {
        let _ = writeln!(out, "description {}", spec.description);
    }
    if spec.bench {
        let _ = writeln!(out, "class bench");
    }
    let _ = writeln!(out, "topology {}", topology_line(&spec.topology));
    if let Some(t) = spec.tiny_nodes {
        let _ = writeln!(out, "tiny-nodes {t}");
    }
    let _ = writeln!(out, "drift {}", drift_line(&spec.drift));
    let _ = writeln!(out, "estimates {}", spec.estimates.token());
    let _ = writeln!(out, "dynamics {}", dynamics_line(&spec.dynamics));
    let _ = writeln!(out, "rho {}", spec.rho);
    let _ = writeln!(out, "mu {}", spec.mu);
    if let Some(s) = spec.insertion_scale {
        let _ = writeln!(out, "insertion-scale {s}");
    }
    if let Some(g) = spec.g_tilde {
        let _ = writeln!(out, "g-tilde {g}");
    }
    if spec.dynamic_estimates {
        let _ = writeln!(out, "dynamic-estimates true");
    }
    let _ = writeln!(out, "warmup {}", spec.warmup);
    let _ = writeln!(out, "duration {}", spec.duration);
    let _ = writeln!(out, "sample {}", spec.sample);
    let _ = writeln!(out, "metric {}", spec.metric.token());
    for f in &spec.faults {
        match *f {
            FaultSpec::ClockOffset { at, node, amount } => {
                let _ = writeln!(out, "fault offset t={at} node={node} amount={amount}");
            }
            FaultSpec::EstimateBias { at, node, bias } => {
                let _ = writeln!(out, "fault est-bias t={at} node={node} bias={bias}");
            }
        }
    }
    out
}

fn topology_line(t: &TopologySpec) -> String {
    match *t {
        TopologySpec::Line { n } => format!("line {n}"),
        TopologySpec::Ring { n } => format!("ring {n}"),
        TopologySpec::Grid { w, h } => format!("grid {w} {h}"),
        TopologySpec::Torus { w, h } => format!("torus {w} {h}"),
        TopologySpec::Star { n } => format!("star {n}"),
        TopologySpec::Complete { n } => format!("complete {n}"),
        TopologySpec::Hypercube { dim } => format!("hypercube {dim}"),
        TopologySpec::Gnp { n, p } => format!("gnp {n} {p}"),
        TopologySpec::Geometric { n, radius } => format!("geometric {n} {radius}"),
        TopologySpec::SmallWorld { n, k, beta } => format!("small-world {n} {k} {beta}"),
        TopologySpec::ScaleFree { n, m } => format!("scale-free {n} {m}"),
    }
}

fn drift_line(d: &DriftSpec) -> String {
    match *d {
        DriftSpec::None => "none".to_string(),
        DriftSpec::RandomConstant => "random-constant".to_string(),
        DriftSpec::TwoBlock => "two-block".to_string(),
        DriftSpec::Alternating => "alternating".to_string(),
        DriftSpec::RandomWalk { period, step } => {
            format!("random-walk period={period} step={step}")
        }
        DriftSpec::FlipFlop { period } => format!("flip-flop period={period}"),
    }
}

fn dynamics_line(d: &DynamicsSpec) -> String {
    match *d {
        DynamicsSpec::Static => "static".to_string(),
        DynamicsSpec::Insertion { at, count, skew } => {
            format!("insertion t={at} count={count} skew={skew}")
        }
        DynamicsSpec::Shortcut { at, skew } => format!("shortcut t={at} skew={skew}"),
        DynamicsSpec::ChurnBurst { period, down, skew } => {
            format!("churn-burst period={period} down={down} skew={skew}")
        }
        DynamicsSpec::Churn {
            mean_up,
            mean_down,
            skew,
            start_up,
        } => {
            format!("churn mean-up={mean_up} mean-down={mean_down} skew={skew} start-up={start_up}")
        }
        DynamicsSpec::Mobility {
            radius,
            hysteresis,
            speed_min,
            speed_max,
            sample,
            skew,
        } => format!(
            "mobility radius={radius} hysteresis={hysteresis} speed-min={speed_min} \
             speed-max={speed_max} sample={sample} skew={skew}"
        ),
        DynamicsSpec::Partition { split, merge, skew } => {
            format!("partition split={split} merge={merge} skew={skew}")
        }
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct LineCtx {
    no: usize,
}

impl LineCtx {
    fn err(&self, message: impl Into<String>) -> ScenarioError {
        ScenarioError::Parse {
            line: self.no,
            message: message.into(),
        }
    }

    fn f64(&self, s: &str, what: &str) -> Result<f64, ScenarioError> {
        let v: f64 = s
            .parse()
            .map_err(|_| self.err(format!("{what}: expected a number, got {s:?}")))?;
        if !v.is_finite() {
            return Err(self.err(format!("{what}: must be finite, got {s:?}")));
        }
        Ok(v)
    }

    fn usize(&self, s: &str, what: &str) -> Result<usize, ScenarioError> {
        s.parse().map_err(|_| {
            self.err(format!(
                "{what}: expected a non-negative integer, got {s:?}"
            ))
        })
    }

    /// Splits `k=v` arguments, checking for unknown and duplicate keys.
    fn kv<'a>(
        &self,
        args: &[&'a str],
        allowed: &[&str],
    ) -> Result<BTreeMap<&'a str, &'a str>, ScenarioError> {
        let mut map = BTreeMap::new();
        for a in args {
            let (k, v) = a
                .split_once('=')
                .ok_or_else(|| self.err(format!("expected key=value, got {a:?}")))?;
            if !allowed.contains(&k) {
                return Err(self.err(format!("unknown argument {k:?} (allowed: {allowed:?})")));
            }
            if map.insert(k, v).is_some() {
                return Err(self.err(format!("duplicate argument {k:?}")));
            }
        }
        Ok(map)
    }

    fn kv_f64(&self, map: &BTreeMap<&str, &str>, key: &str) -> Result<f64, ScenarioError> {
        let v = map
            .get(key)
            .ok_or_else(|| self.err(format!("missing argument {key:?}")))?;
        self.f64(v, key)
    }
}

/// Parses `.scn` text into a spec (accepting any field order, comments,
/// and blank lines; the first directive must be `scenario <name>`).
///
/// # Errors
///
/// Returns [`ScenarioError::Parse`] with a 1-based line number on the
/// first malformed, unknown, duplicated, or missing field.
pub fn parse(text: &str) -> Result<ScenarioSpec, ScenarioError> {
    let mut name: Option<String> = None;
    let mut description = String::new();
    let mut bench: Option<bool> = None;
    let mut tiny_nodes: Option<usize> = None;
    let mut topology: Option<TopologySpec> = None;
    let mut drift: Option<DriftSpec> = None;
    let mut estimates: Option<EstimateSpec> = None;
    let mut dynamics: Option<DynamicsSpec> = None;
    let mut faults: Vec<FaultSpec> = Vec::new();
    let mut rho: Option<f64> = None;
    let mut mu: Option<f64> = None;
    let mut insertion_scale: Option<f64> = None;
    let mut g_tilde: Option<f64> = None;
    let mut dynamic_estimates: Option<bool> = None;
    let mut warmup: Option<f64> = None;
    let mut duration: Option<f64> = None;
    let mut sample: Option<f64> = None;
    let mut metric: Option<Metric> = None;

    for (i, raw) in text.lines().enumerate() {
        let ctx = LineCtx { no: i + 1 };
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (key, rest) = match line.split_once(' ') {
            Some((k, r)) => (k, r.trim()),
            None => (line, ""),
        };
        let dup = |ctx: &LineCtx| Err::<(), _>(ctx.err(format!("duplicate {key:?} line")));
        if name.is_none() && key != "scenario" {
            return Err(ctx.err("the first directive must be `scenario <name>`"));
        }
        match key {
            "scenario" => {
                if name.is_some() {
                    dup(&ctx)?;
                }
                if rest.is_empty() || rest.contains(char::is_whitespace) {
                    return Err(ctx.err("scenario name must be a single token"));
                }
                name = Some(rest.to_string());
            }
            "description" => {
                if !description.is_empty() {
                    dup(&ctx)?;
                }
                if rest.is_empty() {
                    return Err(ctx.err("description must not be empty (omit the line instead)"));
                }
                description = rest.to_string();
            }
            "class" => {
                if bench.is_some() {
                    dup(&ctx)?;
                }
                match rest {
                    "bench" => bench = Some(true),
                    other => {
                        return Err(ctx.err(format!(
                            "unknown class {other:?} (`bench`, or omit the line for a \
                             standard scenario)"
                        )))
                    }
                }
            }
            "tiny-nodes" => {
                if tiny_nodes.is_some() {
                    dup(&ctx)?;
                }
                tiny_nodes = Some(ctx.usize(rest, "tiny-nodes")?);
            }
            "topology" => {
                if topology.is_some() {
                    dup(&ctx)?;
                }
                topology = Some(parse_topology(&ctx, rest)?);
            }
            "drift" => {
                if drift.is_some() {
                    dup(&ctx)?;
                }
                drift = Some(parse_drift(&ctx, rest)?);
            }
            "estimates" => {
                if estimates.is_some() {
                    dup(&ctx)?;
                }
                estimates = Some(match rest {
                    "oracle-none" => EstimateSpec::OracleNone,
                    "oracle-bias" => EstimateSpec::OracleBias,
                    "oracle-hide" => EstimateSpec::OracleHide,
                    "messages" => EstimateSpec::Messages,
                    other => {
                        return Err(ctx.err(format!(
                            "unknown estimates {other:?} (oracle-none | oracle-bias | \
                             oracle-hide | messages)"
                        )))
                    }
                });
            }
            "dynamics" => {
                if dynamics.is_some() {
                    dup(&ctx)?;
                }
                dynamics = Some(parse_dynamics(&ctx, rest)?);
            }
            "fault" => {
                let mut parts = rest.split_whitespace();
                let kind = parts.next();
                let args: Vec<&str> = parts.collect();
                let node_of = |map: &BTreeMap<&str, &str>| -> Result<usize, ScenarioError> {
                    ctx.usize(
                        map.get("node")
                            .ok_or_else(|| ctx.err("missing argument \"node\""))?,
                        "node",
                    )
                };
                match kind {
                    Some("offset") => {
                        let map = ctx.kv(&args, &["t", "node", "amount"])?;
                        faults.push(FaultSpec::ClockOffset {
                            at: ctx.kv_f64(&map, "t")?,
                            node: node_of(&map)?,
                            amount: ctx.kv_f64(&map, "amount")?,
                        });
                    }
                    Some("est-bias") => {
                        let map = ctx.kv(&args, &["t", "node", "bias"])?;
                        faults.push(FaultSpec::EstimateBias {
                            at: ctx.kv_f64(&map, "t")?,
                            node: node_of(&map)?,
                            bias: ctx.kv_f64(&map, "bias")?,
                        });
                    }
                    other => {
                        return Err(
                            ctx.err(format!("unknown fault kind {other:?} (offset | est-bias)"))
                        );
                    }
                }
            }
            "rho" => set_f64(&ctx, key, rest, &mut rho)?,
            "mu" => set_f64(&ctx, key, rest, &mut mu)?,
            "insertion-scale" => set_f64(&ctx, key, rest, &mut insertion_scale)?,
            "g-tilde" => set_f64(&ctx, key, rest, &mut g_tilde)?,
            "dynamic-estimates" => {
                if dynamic_estimates.is_some() {
                    dup(&ctx)?;
                }
                match rest {
                    "true" => dynamic_estimates = Some(true),
                    other => {
                        return Err(ctx.err(format!(
                            "dynamic-estimates takes `true` (or omit), got {other:?}"
                        )))
                    }
                }
            }
            "warmup" => set_f64(&ctx, key, rest, &mut warmup)?,
            "duration" => set_f64(&ctx, key, rest, &mut duration)?,
            "sample" => set_f64(&ctx, key, rest, &mut sample)?,
            "metric" => {
                if metric.is_some() {
                    dup(&ctx)?;
                }
                metric = Some(Metric::parse(rest).ok_or_else(|| {
                    ctx.err(format!(
                        "unknown metric {rest:?} (global-skew | local-skew | final-global-skew)"
                    ))
                })?);
            }
            other => return Err(ctx.err(format!("unknown directive {other:?}"))),
        }
    }

    let eof = LineCtx {
        no: text.lines().count().max(1),
    };
    let missing = |what: &str| eof.err(format!("missing required `{what}` line"));
    Ok(ScenarioSpec {
        name: name.ok_or_else(|| missing("scenario"))?,
        description,
        topology: topology.ok_or_else(|| missing("topology"))?,
        drift: drift.ok_or_else(|| missing("drift"))?,
        estimates: estimates.ok_or_else(|| missing("estimates"))?,
        dynamics: dynamics.ok_or_else(|| missing("dynamics"))?,
        faults,
        rho: rho.ok_or_else(|| missing("rho"))?,
        mu: mu.ok_or_else(|| missing("mu"))?,
        insertion_scale,
        g_tilde,
        dynamic_estimates: dynamic_estimates.unwrap_or(false),
        warmup: warmup.ok_or_else(|| missing("warmup"))?,
        duration: duration.ok_or_else(|| missing("duration"))?,
        sample: sample.ok_or_else(|| missing("sample"))?,
        metric: metric.ok_or_else(|| missing("metric"))?,
        bench: bench.unwrap_or(false),
        tiny_nodes,
    })
}

fn set_f64(
    ctx: &LineCtx,
    key: &str,
    rest: &str,
    slot: &mut Option<f64>,
) -> Result<(), ScenarioError> {
    if slot.is_some() {
        return Err(ctx.err(format!("duplicate {key:?} line")));
    }
    *slot = Some(ctx.f64(rest, key)?);
    Ok(())
}

fn parse_topology(ctx: &LineCtx, rest: &str) -> Result<TopologySpec, ScenarioError> {
    let parts: Vec<&str> = rest.split_whitespace().collect();
    let (family, args) = parts
        .split_first()
        .ok_or_else(|| ctx.err("topology needs a family"))?;
    let argc = |want: usize| -> Result<(), ScenarioError> {
        if args.len() == want {
            Ok(())
        } else {
            Err(ctx.err(format!(
                "topology {family} takes {want} argument(s), got {}",
                args.len()
            )))
        }
    };
    Ok(match *family {
        "line" => {
            argc(1)?;
            TopologySpec::Line {
                n: ctx.usize(args[0], "n")?,
            }
        }
        "ring" => {
            argc(1)?;
            TopologySpec::Ring {
                n: ctx.usize(args[0], "n")?,
            }
        }
        "grid" => {
            argc(2)?;
            TopologySpec::Grid {
                w: ctx.usize(args[0], "w")?,
                h: ctx.usize(args[1], "h")?,
            }
        }
        "torus" => {
            argc(2)?;
            TopologySpec::Torus {
                w: ctx.usize(args[0], "w")?,
                h: ctx.usize(args[1], "h")?,
            }
        }
        "star" => {
            argc(1)?;
            TopologySpec::Star {
                n: ctx.usize(args[0], "n")?,
            }
        }
        "complete" => {
            argc(1)?;
            TopologySpec::Complete {
                n: ctx.usize(args[0], "n")?,
            }
        }
        "hypercube" => {
            argc(1)?;
            TopologySpec::Hypercube {
                dim: u32::try_from(ctx.usize(args[0], "dim")?)
                    .map_err(|_| ctx.err("dim out of range"))?,
            }
        }
        "gnp" => {
            argc(2)?;
            TopologySpec::Gnp {
                n: ctx.usize(args[0], "n")?,
                p: ctx.f64(args[1], "p")?,
            }
        }
        "geometric" => {
            argc(2)?;
            TopologySpec::Geometric {
                n: ctx.usize(args[0], "n")?,
                radius: ctx.f64(args[1], "radius")?,
            }
        }
        "small-world" => {
            argc(3)?;
            TopologySpec::SmallWorld {
                n: ctx.usize(args[0], "n")?,
                k: ctx.usize(args[1], "k")?,
                beta: ctx.f64(args[2], "beta")?,
            }
        }
        "scale-free" => {
            argc(2)?;
            TopologySpec::ScaleFree {
                n: ctx.usize(args[0], "n")?,
                m: ctx.usize(args[1], "m")?,
            }
        }
        other => return Err(ctx.err(format!("unknown topology family {other:?}"))),
    })
}

fn parse_drift(ctx: &LineCtx, rest: &str) -> Result<DriftSpec, ScenarioError> {
    let parts: Vec<&str> = rest.split_whitespace().collect();
    let (kind, args) = parts
        .split_first()
        .ok_or_else(|| ctx.err("drift needs a model"))?;
    let bare = |spec: DriftSpec| -> Result<DriftSpec, ScenarioError> {
        if args.is_empty() {
            Ok(spec)
        } else {
            Err(ctx.err(format!("drift {kind} takes no arguments")))
        }
    };
    match *kind {
        "none" => bare(DriftSpec::None),
        "random-constant" => bare(DriftSpec::RandomConstant),
        "two-block" => bare(DriftSpec::TwoBlock),
        "alternating" => bare(DriftSpec::Alternating),
        "random-walk" => {
            let map = ctx.kv(args, &["period", "step"])?;
            Ok(DriftSpec::RandomWalk {
                period: ctx.kv_f64(&map, "period")?,
                step: ctx.kv_f64(&map, "step")?,
            })
        }
        "flip-flop" => {
            let map = ctx.kv(args, &["period"])?;
            Ok(DriftSpec::FlipFlop {
                period: ctx.kv_f64(&map, "period")?,
            })
        }
        other => Err(ctx.err(format!("unknown drift model {other:?}"))),
    }
}

fn parse_dynamics(ctx: &LineCtx, rest: &str) -> Result<DynamicsSpec, ScenarioError> {
    let parts: Vec<&str> = rest.split_whitespace().collect();
    let (kind, args) = parts
        .split_first()
        .ok_or_else(|| ctx.err("dynamics needs a generator"))?;
    match *kind {
        "static" => {
            if args.is_empty() {
                Ok(DynamicsSpec::Static)
            } else {
                Err(ctx.err("dynamics static takes no arguments"))
            }
        }
        "insertion" => {
            let map = ctx.kv(args, &["t", "count", "skew"])?;
            Ok(DynamicsSpec::Insertion {
                at: ctx.kv_f64(&map, "t")?,
                count: ctx.usize(
                    map.get("count")
                        .ok_or_else(|| ctx.err("missing argument \"count\""))?,
                    "count",
                )?,
                skew: ctx.kv_f64(&map, "skew")?,
            })
        }
        "shortcut" => {
            let map = ctx.kv(args, &["t", "skew"])?;
            Ok(DynamicsSpec::Shortcut {
                at: ctx.kv_f64(&map, "t")?,
                skew: ctx.kv_f64(&map, "skew")?,
            })
        }
        "churn-burst" => {
            let map = ctx.kv(args, &["period", "down", "skew"])?;
            Ok(DynamicsSpec::ChurnBurst {
                period: ctx.kv_f64(&map, "period")?,
                down: ctx.kv_f64(&map, "down")?,
                skew: ctx.kv_f64(&map, "skew")?,
            })
        }
        "churn" => {
            let map = ctx.kv(args, &["mean-up", "mean-down", "skew", "start-up"])?;
            Ok(DynamicsSpec::Churn {
                mean_up: ctx.kv_f64(&map, "mean-up")?,
                mean_down: ctx.kv_f64(&map, "mean-down")?,
                skew: ctx.kv_f64(&map, "skew")?,
                start_up: ctx.kv_f64(&map, "start-up")?,
            })
        }
        "mobility" => {
            let map = ctx.kv(
                args,
                &[
                    "radius",
                    "hysteresis",
                    "speed-min",
                    "speed-max",
                    "sample",
                    "skew",
                ],
            )?;
            Ok(DynamicsSpec::Mobility {
                radius: ctx.kv_f64(&map, "radius")?,
                hysteresis: ctx.kv_f64(&map, "hysteresis")?,
                speed_min: ctx.kv_f64(&map, "speed-min")?,
                speed_max: ctx.kv_f64(&map, "speed-max")?,
                sample: ctx.kv_f64(&map, "sample")?,
                skew: ctx.kv_f64(&map, "skew")?,
            })
        }
        "partition" => {
            let map = ctx.kv(args, &["split", "merge", "skew"])?;
            Ok(DynamicsSpec::Partition {
                split: ctx.kv_f64(&map, "split")?,
                merge: ctx.kv_f64(&map, "merge")?,
                skew: ctx.kv_f64(&map, "skew")?,
            })
        }
        other => Err(ctx.err(format!("unknown dynamics generator {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn every_builtin_round_trips_exactly() {
        for spec in registry::all() {
            let text = write(&spec);
            let parsed = parse(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", spec.name));
            assert_eq!(parsed, spec, "value round-trip of {}", spec.name);
            assert_eq!(write(&parsed), text, "byte round-trip of {}", spec.name);
        }
    }

    #[test]
    fn parser_accepts_reordered_fields_and_comments() {
        let text = "\
# out-of-order but complete
scenario reordered
metric global-skew
sample 0.5
duration 10
warmup 1

rho 0.01
dynamics churn start-up=0.5 skew=0.001 mean-down=5 mean-up=10
estimates messages
drift two-block
topology ring 8
mu 0.1
";
        let spec = parse(text).unwrap();
        assert_eq!(spec.name, "reordered");
        assert_eq!(spec.topology, TopologySpec::Ring { n: 8 });
        assert!(matches!(spec.dynamics, DynamicsSpec::Churn { mean_up, .. } if mean_up == 10.0));
        // Re-serialization is canonical, not the input order.
        assert!(write(&spec).starts_with("# gcs-scenarios v1\nscenario reordered\n"));
    }

    #[test]
    fn parser_reports_line_numbers() {
        let text = "scenario x\ntopology ring 8\nwat 3\n";
        match parse(text) {
            Err(ScenarioError::Parse { line, message }) => {
                assert_eq!(line, 3);
                assert!(message.contains("wat"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn parser_rejects_duplicates_unknown_args_and_missing_fields() {
        assert!(parse("scenario a\nscenario b\n").is_err());
        assert!(parse("scenario a\ndynamic-estimates true\ndynamic-estimates true\n").is_err());
        assert!(parse("scenario a\ndrift two-block extra\n").is_err());
        assert!(parse("scenario a\ndynamics churn mean-up=1 bogus=2\n").is_err());
        // Missing everything after the name.
        match parse("scenario a\n") {
            Err(ScenarioError::Parse { message, .. }) => {
                assert!(message.contains("topology"), "{message}");
            }
            other => panic!("expected missing-field error, got {other:?}"),
        }
        // First directive must be the name.
        assert!(parse("rho 0.01\n").is_err());
    }

    #[test]
    fn floats_survive_the_round_trip_bit_exactly() {
        let mut spec = registry::find("churn-storm").unwrap();
        spec.rho = 0.012_345_678_901_234_567;
        spec.g_tilde = Some(1.0e-9);
        spec.faults.push(FaultSpec::ClockOffset {
            at: 1.5,
            node: 3,
            amount: -0.125,
        });
        spec.faults.push(FaultSpec::EstimateBias {
            at: 2.25,
            node: 1,
            bias: -0.987_654_321_098_765_4,
        });
        let parsed = parse(&write(&spec)).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(write(&parsed), write(&spec));
    }

    #[test]
    fn est_bias_faults_parse_and_reject_bad_kinds() {
        let text = "\
scenario est
topology ring 8
drift two-block
estimates oracle-none
dynamics static
rho 0.01
mu 0.1
warmup 1
duration 10
sample 0.5
metric global-skew
fault est-bias t=3 node=5 bias=-1
";
        let spec = parse(text).unwrap();
        assert_eq!(
            spec.faults,
            vec![FaultSpec::EstimateBias {
                at: 3.0,
                node: 5,
                bias: -1.0,
            }]
        );
        // Unknown kinds and offset-only arguments on est-bias both fail.
        assert!(parse(&text.replace("fault est-bias", "fault jitter")).is_err());
        assert!(parse(&text.replace("bias=-1", "amount=-1")).is_err());
    }
}
