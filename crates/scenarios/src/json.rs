//! A minimal hand-rolled JSON writer and reader (the workspace is
//! hermetic — no serde). Only what campaign and baseline artifacts need:
//! objects, arrays, strings, and numbers. Non-finite numbers serialize
//! as `null`; [`parse`] inverts [`Json`]'s output exactly (floats are
//! written in shortest round-trip notation and re-parsed with correct
//! rounding, so values survive bit-exactly).

use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (written via `f64`'s shortest round-trip formatting;
    /// NaN/infinite values become `null`).
    Num(f64),
    /// An unsigned integer (written without a decimal point).
    Int(u64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys are static in all campaign artifacts.
    Obj(Vec<(&'static str, Json)>),
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Int(v) => write!(f, "{v}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

/// A parsed JSON value — the reader-side counterpart of [`Json`], with
/// owned object keys (the writer's are static).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with a fraction, exponent, or sign.
    Num(f64),
    /// A bare unsigned integer, kept exact (u64 seeds and counters do
    /// not survive a trip through `f64`).
    Int(u64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one (exact integers convert).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            JsonValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => Some(*i),
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Looks up a required object field, naming `what` in the error.
///
/// # Errors
///
/// Returns a message when the field is absent.
pub fn field<'a>(v: &'a JsonValue, key: &str, what: &str) -> Result<&'a JsonValue, String> {
    v.get(key)
        .ok_or_else(|| format!("{what}: missing field {key:?}"))
}

/// A required string field.
///
/// # Errors
///
/// Returns a message when the field is absent or not a string.
pub fn str_field(v: &JsonValue, key: &str, what: &str) -> Result<String, String> {
    field(v, key, what)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{what}: field {key:?} is not a string"))
}

/// A required numeric field.
///
/// # Errors
///
/// Returns a message when the field is absent or not a number.
pub fn f64_field(v: &JsonValue, key: &str, what: &str) -> Result<f64, String> {
    field(v, key, what)?
        .as_f64()
        .ok_or_else(|| format!("{what}: field {key:?} is not a number"))
}

/// A required exact-unsigned-integer field.
///
/// # Errors
///
/// Returns a message when the field is absent or not an unsigned integer.
pub fn u64_field(v: &JsonValue, key: &str, what: &str) -> Result<u64, String> {
    field(v, key, what)?
        .as_u64()
        .ok_or_else(|| format!("{what}: field {key:?} is not an unsigned integer"))
}

/// A required array field.
///
/// # Errors
///
/// Returns a message when the field is absent or not an array.
pub fn arr_field<'a>(v: &'a JsonValue, key: &str, what: &str) -> Result<&'a [JsonValue], String> {
    field(v, key, what)?
        .as_arr()
        .ok_or_else(|| format!("{what}: field {key:?} is not an array"))
}

/// Parses a JSON document (full value, trailing whitespace only).
///
/// # Errors
///
/// Returns a message with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Reader {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.eat_lit("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_lit("null") => Ok(JsonValue::Null),
            Some(c) if *c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // The writer never splits surrogate pairs; reject
                            // lone surrogates rather than guessing.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        // Bare unsigned integers stay exact (the writer emits u64 seeds
        // and counters without a decimal point).
        if !text.contains(['.', 'e', 'E', '-', '+']) {
            if let Ok(i) = text.parse::<u64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        let v: f64 = text
            .parse()
            .map_err(|_| format!("bad number {text:?} at byte {start}"))?;
        if v.is_finite() {
            Ok(JsonValue::Num(v))
        } else {
            Err(format!("non-finite number {text:?} at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let v = Json::Obj(vec![
            ("name", Json::Str("churn \"storm\"".to_string())),
            ("runs", Json::Int(4)),
            ("mean", Json::Num(0.25)),
            ("bad", Json::Num(f64::NAN)),
            ("ok", Json::Bool(true)),
            ("xs", Json::Arr(vec![Json::Num(1.5), Json::Null])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"churn \"storm\"","runs":4,"mean":0.25,"bad":null,"ok":true,"xs":[1.5,null]}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("a\nb\t\u{1}".to_string());
        assert_eq!(v.to_string(), "\"a\\nb\\t\\u0001\"");
    }

    #[test]
    fn integers_have_no_decimal_point() {
        assert_eq!(Json::Num(4.0).to_string(), "4");
        assert_eq!(Json::Int(0).to_string(), "0");
    }

    #[test]
    fn parser_inverts_the_writer() {
        let v = Json::Obj(vec![
            ("name", Json::Str("churn \"storm\"\nline".to_string())),
            ("runs", Json::Int(4)),
            ("mean", Json::Num(0.1 + 0.2)),
            ("tiny", Json::Num(1.0e-300)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::Arr(vec![Json::Num(-1.5), Json::Int(7)])),
        ]);
        let parsed = parse(&v.to_string()).unwrap();
        assert_eq!(
            parsed.get("name").unwrap().as_str(),
            Some("churn \"storm\"\nline")
        );
        assert_eq!(parsed.get("runs").unwrap().as_u64(), Some(4));
        assert_eq!(parsed.get("mean").unwrap().as_f64(), Some(0.1 + 0.2));
        assert_eq!(parsed.get("tiny").unwrap().as_f64(), Some(1.0e-300));
        assert_eq!(parsed.get("none"), Some(&JsonValue::Null));
        let xs = parsed.get("xs").unwrap().as_arr().unwrap();
        assert_eq!(xs[0].as_f64(), Some(-1.5));
        assert_eq!(xs[1].as_u64(), Some(7));
    }

    #[test]
    fn parser_accepts_whitespace_and_rejects_garbage() {
        assert_eq!(
            parse(" { \"a\" : [ 1 , 2 ] } \n")
                .unwrap()
                .get("a")
                .unwrap()
                .as_arr()
                .unwrap()
                .len(),
            2
        );
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("1e999").is_err(), "non-finite numbers are rejected");
    }

    #[test]
    fn parser_unescapes_strings() {
        assert_eq!(parse(r#""a\nb\tA\\""#).unwrap().as_str(), Some("a\nb\tA\\"));
        assert_eq!(parse("\"héllo\"").unwrap().as_str(), Some("héllo"));
    }
}
