//! A minimal hand-rolled JSON writer (the workspace is hermetic — no
//! serde). Only what campaign artifacts need: objects with static keys,
//! arrays, strings, and numbers. Non-finite numbers serialize as `null`.

use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (written via `f64`'s shortest round-trip formatting;
    /// NaN/infinite values become `null`).
    Num(f64),
    /// An unsigned integer (written without a decimal point).
    Int(u64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys are static in all campaign artifacts.
    Obj(Vec<(&'static str, Json)>),
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Int(v) => write!(f, "{v}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let v = Json::Obj(vec![
            ("name", Json::Str("churn \"storm\"".to_string())),
            ("runs", Json::Int(4)),
            ("mean", Json::Num(0.25)),
            ("bad", Json::Num(f64::NAN)),
            ("ok", Json::Bool(true)),
            ("xs", Json::Arr(vec![Json::Num(1.5), Json::Null])),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"name":"churn \"storm\"","runs":4,"mean":0.25,"bad":null,"ok":true,"xs":[1.5,null]}"#
        );
    }

    #[test]
    fn escapes_control_characters() {
        let v = Json::Str("a\nb\t\u{1}".to_string());
        assert_eq!(v.to_string(), "\"a\\nb\\t\\u0001\"");
    }

    #[test]
    fn integers_have_no_decimal_point() {
        assert_eq!(Json::Num(4.0).to_string(), "4");
        assert_eq!(Json::Int(0).to_string(), "0");
    }
}
