//! Longitudinal trend series: the `gcs-trend/v1` JSONL format the nightly
//! pipeline appends to, plus the regression gate over it.
//!
//! Where [`trend`](crate::trend) compares one fresh campaign against one
//! checked-in baseline *point*, this module turns repeated runs into a
//! *trajectory*: every nightly appends one line per `(kind, scenario,
//! seed, threads, metric-set)` observation to a `TREND_*.jsonl` file, and
//! [`trend_gate`] compares each series' newest point against the median of
//! its trailing window. The format is append-only JSONL — one
//! self-describing point per line — so the history survives partial
//! writes, diffs cleanly, and can be seeded from a checked-in
//! `BENCH_*.json` artifact (`gcs-scenarios trend-append`).
//!
//! Gating is orientation-aware per metric: throughput regresses *down*,
//! oracle utilization regresses *up*, and wall-clock is recorded but never
//! gated (CI runners are too noisy for it). Tolerances reuse the
//! [`trend`](crate::trend) classification: tight for deterministic
//! scenarios, loose for seed-realized random families.

use gcs_analysis::Table;

use crate::bench::BenchEntry;
use crate::conformance::ConformanceRow;
use crate::json::{self, field, str_field, u64_field, Json, JsonValue};
use crate::trend::{TOL_LOOSE, TOL_TIGHT};

/// The per-line format tag.
pub const TREND_FORMAT: &str = "gcs-trend/v1";

/// Points with no trailing history are not gated; a series needs at least
/// this many *prior* points before its newest one can regress.
pub const MIN_HISTORY: usize = 2;

/// Default trailing-window size the gate compares the newest point against.
pub const DEFAULT_WINDOW: usize = 5;

/// Relative drifts under this absolute floor never count (same floor as
/// the campaign gate: a 1e-12 vs 2e-12 utilization is not a regression).
const ABSOLUTE_FLOOR: f64 = 1e-6;

/// One appended observation: a `(kind, scenario, seed, threads)` run at
/// some instant, carrying a flat name → value metric map.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendPoint {
    /// Caller-supplied stamp (the CLI writes unix milliseconds; any
    /// monotone token works — the gate orders by file position, not by
    /// parsing this).
    pub when: String,
    /// Observation kind: `"bench"` or `"conformance"`.
    pub kind: String,
    /// Scale token the run used.
    pub scale: String,
    /// Scenario name.
    pub scenario: String,
    /// Run seed.
    pub seed: u64,
    /// Worker thread count.
    pub threads: u64,
    /// Flat metric map, sorted by name on write.
    pub metrics: Vec<(String, f64)>,
}

impl TrendPoint {
    /// The series key: every field that identifies *what* was measured
    /// (everything but `when` and the values).
    #[must_use]
    pub fn series_key(&self) -> (String, String, String, u64, u64) {
        (
            self.kind.clone(),
            self.scale.clone(),
            self.scenario.clone(),
            self.seed,
            self.threads,
        )
    }

    /// Looks up one metric by name.
    #[must_use]
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }
}

/// Which direction is a regression for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// Bigger is better (throughput): a drop beyond tolerance regresses.
    HigherBetter,
    /// Smaller is better (oracle utilization, skew): a rise regresses.
    LowerBetter,
    /// Recorded for the record, never gated (wall-clock, raw counts).
    Informational,
}

/// The gate orientation of a metric name. Throughput gates downward;
/// oracle-utilization and skew metrics gate upward; everything else —
/// wall-clock, build time, raw event/sample counts — is informational
/// (deterministic counters are already exactly gated by `bench-compare`,
/// and wall-clock is runner noise).
#[must_use]
pub fn orientation(metric: &str) -> Orientation {
    match metric {
        "events_per_sec" => Orientation::HigherBetter,
        m if m.ends_with("_worst") || m.ends_with("_skew") || m == "min_margin_deficit" => {
            Orientation::LowerBetter
        }
        _ => Orientation::Informational,
    }
}

/// Distills one bench entry into a trend point.
#[must_use]
pub fn point_from_bench(when: &str, scale: &str, e: &BenchEntry) -> TrendPoint {
    TrendPoint {
        when: when.to_string(),
        kind: "bench".to_string(),
        scale: scale.to_string(),
        scenario: e.scenario.clone(),
        seed: e.seed,
        threads: e.threads as u64,
        metrics: vec![
            ("build_secs".to_string(), e.build_secs),
            ("events".to_string(), e.events as f64),
            ("events_per_sec".to_string(), e.events_per_sec),
            ("wall_secs".to_string(), e.wall_secs),
        ],
    }
}

/// Distills one conformance verdict into a trend point. Utilizations are
/// the worst observed/allowed ratio per bound family — the margin the
/// nightly trend watches erode long before an outright violation.
#[must_use]
pub fn point_from_conformance(
    when: &str,
    scale: &str,
    threads: u64,
    row: &ConformanceRow,
) -> TrendPoint {
    TrendPoint {
        when: when.to_string(),
        kind: "conformance".to_string(),
        scale: scale.to_string(),
        scenario: row.name.clone(),
        seed: row.seed,
        threads,
        metrics: vec![
            (
                "global_worst".to_string(),
                row.report.global.worst_utilization,
            ),
            (
                "gradient_worst".to_string(),
                row.report.gradient.worst_utilization,
            ),
            ("samples".to_string(), row.report.samples as f64),
            (
                "sampled_sources".to_string(),
                row.report.sampled_sources as f64,
            ),
            (
                "violations".to_string(),
                row.report.violations().len() as f64,
            ),
            (
                "weak_worst".to_string(),
                row.report.weak_edges.worst_utilization,
            ),
        ],
    }
}

/// Serializes one point as a single JSONL line (no trailing newline).
/// Metric keys are dynamic, so the map is spliced by hand exactly like the
/// baseline writer's tolerance table.
#[must_use]
pub fn point_json(p: &TrendPoint) -> String {
    let head = Json::Obj(vec![
        ("format", Json::Str(TREND_FORMAT.to_string())),
        ("when", Json::Str(p.when.clone())),
        ("kind", Json::Str(p.kind.clone())),
        ("scale", Json::Str(p.scale.clone())),
        ("scenario", Json::Str(p.scenario.clone())),
        ("seed", Json::Int(p.seed)),
        ("threads", Json::Int(p.threads)),
    ])
    .to_string();
    let mut out = String::new();
    out.push_str(&head[..head.len() - 1]);
    out.push_str(",\"metrics\":{");
    let mut metrics = p.metrics.clone();
    metrics.sort_by(|a, b| a.0.cmp(&b.0));
    for (i, (name, v)) in metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", Json::Str(name.clone()), Json::Num(*v)));
    }
    out.push_str("}}");
    out
}

/// Parses a whole `TREND_*.jsonl` series (blank lines tolerated), in file
/// order — which the gate treats as time order, because the file is
/// append-only.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn read_series(text: &str) -> Result<Vec<TrendPoint>, String> {
    let mut points = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let what = format!("trend line {}", i + 1);
        let doc = json::parse(line).map_err(|e| format!("{what}: {e}"))?;
        let format = str_field(&doc, "format", &what)?;
        if format != TREND_FORMAT {
            return Err(format!(
                "{what}: expected format {TREND_FORMAT:?}, got {format:?}"
            ));
        }
        let metrics_doc = field(&doc, "metrics", &what)?;
        let JsonValue::Obj(fields) = metrics_doc else {
            return Err(format!("{what}: field \"metrics\" is not an object"));
        };
        let mut metrics = Vec::with_capacity(fields.len());
        for (name, v) in fields {
            let v = v
                .as_f64()
                .ok_or_else(|| format!("{what}: metric {name:?} is not a number"))?;
            metrics.push((name.clone(), v));
        }
        points.push(TrendPoint {
            when: str_field(&doc, "when", &what)?,
            kind: str_field(&doc, "kind", &what)?,
            scale: str_field(&doc, "scale", &what)?,
            scenario: str_field(&doc, "scenario", &what)?,
            seed: u64_field(&doc, "seed", &what)?,
            threads: u64_field(&doc, "threads", &what)?,
            metrics,
        });
    }
    Ok(points)
}

/// Appends points to a series file (creating it and parent directories on
/// first use) — one line per point, never rewriting history.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn append_points(path: &std::path::Path, points: &[TrendPoint]) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    for p in points {
        writeln!(f, "{}", point_json(p))?;
    }
    Ok(())
}

/// One out-of-tolerance trend observation, carrying everything the
/// `--explain` flag prints: which tolerance fired and the historical
/// window the newest point was compared against.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendFinding {
    /// Observation kind (`bench` / `conformance`).
    pub kind: String,
    /// Scenario name.
    pub scenario: String,
    /// Run seed.
    pub seed: u64,
    /// Worker thread count.
    pub threads: u64,
    /// The regressing metric.
    pub metric: String,
    /// The metric's gate orientation (never `Informational` here).
    pub orientation: Orientation,
    /// Newest value.
    pub current: f64,
    /// Median of the trailing window.
    pub median: f64,
    /// The trailing window values compared against, oldest first.
    pub window: Vec<f64>,
    /// The relative tolerance that fired.
    pub tolerance: f64,
    /// Why that tolerance applies (`"tight (deterministic scenario)"`,
    /// `"loose (seed-realized scenario)"`, or `"--tol override"`).
    pub tolerance_source: String,
}

impl TrendFinding {
    /// Signed relative drift of the newest point vs the window median,
    /// oriented so positive is always *worse*.
    #[must_use]
    pub fn relative(&self) -> f64 {
        let delta = match self.orientation {
            Orientation::HigherBetter => self.median - self.current,
            _ => self.current - self.median,
        };
        if self.median.abs() >= ABSOLUTE_FLOOR {
            delta / self.median.abs()
        } else if delta.abs() <= ABSOLUTE_FLOOR {
            0.0
        } else {
            f64::INFINITY.copysign(delta)
        }
    }

    /// The `--explain` paragraph: which tolerance fired and the window it
    /// was judged against.
    #[must_use]
    pub fn explain(&self) -> String {
        let dir = match self.orientation {
            Orientation::HigherBetter => "dropped below",
            _ => "rose above",
        };
        let window: Vec<String> = self.window.iter().map(|v| format!("{v:.6}")).collect();
        format!(
            "{} {} seed {} threads {} [{}]: {:.6} {} the ±{:.0}% band around the \
             median {:.6} of its last {} point(s) [{}]; tolerance source: {}",
            self.kind,
            self.scenario,
            self.seed,
            self.threads,
            self.metric,
            self.current,
            dir,
            self.tolerance * 100.0,
            self.median,
            self.window.len(),
            window.join(", "),
            self.tolerance_source,
        )
    }
}

/// The trend gate's outcome: a printable table (one row per gated series
/// metric) plus every finding that breached tolerance.
#[derive(Debug)]
pub struct TrendGateReport {
    /// One row per gated `(series, metric)`.
    pub table: Table,
    /// Out-of-tolerance findings (empty ⇒ gate passes).
    pub findings: Vec<TrendFinding>,
}

impl TrendGateReport {
    /// Whether the gate passes.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }
}

/// The per-scenario tolerance and its provenance. `tol_override` (the
/// CLI's `--tol`) wins; otherwise the [`trend`](crate::trend)
/// classification decides — tight for deterministic scenarios, loose for
/// seed-realized random families (unknown scenarios count as random).
fn tolerance_for(scenario: &str, tol_override: Option<f64>) -> (f64, String) {
    if let Some(t) = tol_override {
        return (t, "--tol override".to_string());
    }
    let loose = crate::registry::find(scenario).is_none_or(|s| crate::trend::seed_sensitive(&s));
    if loose {
        (TOL_LOOSE, "loose (seed-realized scenario)".to_string())
    } else {
        (TOL_TIGHT, "tight (deterministic scenario)".to_string())
    }
}

fn median(sorted: &mut [f64]) -> f64 {
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Gates the newest point of every series in `points` against the median
/// of its trailing `window` predecessors (at least [`MIN_HISTORY`]; series
/// with less history are reported as `building` and never fail).
/// Orientation decides the failing direction per metric via
/// [`orientation`]; informational metrics are recorded in the table but
/// never gate. `tol_override` replaces the per-scenario tolerance table
/// when given.
#[must_use]
pub fn trend_gate(
    points: &[TrendPoint],
    window: usize,
    tol_override: Option<f64>,
) -> TrendGateReport {
    let window = window.max(1);
    let mut findings = Vec::new();
    let mut table = Table::new(
        format!(
            "trend gate — {} point(s), window {window}, min history {MIN_HISTORY}",
            points.len()
        ),
        &[
            "kind", "scenario", "seed", "thr", "metric", "median", "current", "drift", "tol",
            "status",
        ],
    );
    table.caption(
        "Newest point per series vs the median of its trailing window. Throughput \
         (events_per_sec) gates downward, oracle utilization (\"*_worst\") gates \
         upward, wall-clock and raw counts are informational. `building` = not \
         enough history to gate yet.",
    );

    // Series in first-appearance order, keyed by everything but `when`.
    let mut keys: Vec<(String, String, String, u64, u64)> = Vec::new();
    for p in points {
        let k = p.series_key();
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    for key in keys {
        let series: Vec<&TrendPoint> = points.iter().filter(|p| p.series_key() == key).collect();
        let (newest, history) = series.split_last().expect("key came from a point");
        let (tol, tol_source) = tolerance_for(&newest.scenario, tol_override);
        for (metric, current) in &newest.metrics {
            let orient = orientation(metric);
            let prior: Vec<f64> = history
                .iter()
                .rev()
                .take(window)
                .rev()
                .filter_map(|p| p.metric(metric))
                .collect();
            let med = if prior.is_empty() {
                f64::NAN
            } else {
                median(&mut prior.clone())
            };
            let mut status = "ok";
            let mut drift_cell = "-".to_string();
            if prior.len() < MIN_HISTORY {
                status = "building";
            } else if orient == Orientation::Informational {
                status = "info";
            } else {
                let breach = match orient {
                    Orientation::HigherBetter => med - current > tol * med.abs() + ABSOLUTE_FLOOR,
                    Orientation::LowerBetter => current - med > tol * med.abs() + ABSOLUTE_FLOOR,
                    Orientation::Informational => false,
                };
                let finding = TrendFinding {
                    kind: newest.kind.clone(),
                    scenario: newest.scenario.clone(),
                    seed: newest.seed,
                    threads: newest.threads,
                    metric: metric.clone(),
                    orientation: orient,
                    current: *current,
                    median: med,
                    window: prior.clone(),
                    tolerance: tol,
                    tolerance_source: tol_source.clone(),
                };
                drift_cell = format!("{:+.1}%", finding.relative() * 100.0);
                if breach {
                    status = "REGRESSION";
                    findings.push(finding);
                }
            }
            table.row([
                newest.kind.clone(),
                newest.scenario.clone(),
                newest.seed.to_string(),
                newest.threads.to_string(),
                metric.clone(),
                if med.is_nan() {
                    "-".to_string()
                } else {
                    format!("{med:.6}")
                },
                format!("{current:.6}"),
                drift_cell,
                format!("±{:.0}%", tol * 100.0),
                status.to_string(),
            ]);
        }
    }
    TrendGateReport { table, findings }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(scenario: &str, when: &str, metrics: &[(&str, f64)]) -> TrendPoint {
        TrendPoint {
            when: when.to_string(),
            kind: "bench".to_string(),
            scale: "default".to_string(),
            scenario: scenario.to_string(),
            seed: 0,
            threads: 1,
            metrics: metrics.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
        }
    }

    #[test]
    fn points_round_trip_through_jsonl() {
        let pts = vec![
            point(
                "ring-100k",
                "1",
                &[("events_per_sec", 1.5e6), ("wall_secs", 30.0)],
            ),
            point(
                "ring-100k",
                "2",
                &[("events_per_sec", 1.4e6), ("wall_secs", 31.0)],
            ),
        ];
        let text: String = pts
            .iter()
            .map(|p| point_json(p) + "\n")
            .collect::<Vec<_>>()
            .join("");
        assert!(text.starts_with("{\"format\":\"gcs-trend/v1\""));
        let back = read_series(&text).unwrap();
        assert_eq!(back, pts);
        assert!(read_series("{\"format\":\"nope\"}\n").is_err());
        assert_eq!(read_series("\n\n").unwrap(), Vec::new());
    }

    #[test]
    fn orientation_classifies_known_metrics() {
        assert_eq!(orientation("events_per_sec"), Orientation::HigherBetter);
        assert_eq!(orientation("global_worst"), Orientation::LowerBetter);
        assert_eq!(orientation("gradient_worst"), Orientation::LowerBetter);
        assert_eq!(orientation("wall_secs"), Orientation::Informational);
        assert_eq!(orientation("events"), Orientation::Informational);
    }

    #[test]
    fn gate_needs_history_before_failing() {
        // One prior point only: still "building", even on a huge drop.
        let pts = vec![
            point("ring-100k", "1", &[("events_per_sec", 1.0e6)]),
            point("ring-100k", "2", &[("events_per_sec", 1.0e3)]),
        ];
        assert!(trend_gate(&pts, DEFAULT_WINDOW, None).passed());
    }

    #[test]
    fn throughput_drop_beyond_tolerance_regresses() {
        let mut pts: Vec<TrendPoint> = (0..5)
            .map(|i| {
                point(
                    "ring-100k",
                    &i.to_string(),
                    &[("events_per_sec", 1.0e6), ("wall_secs", 30.0)],
                )
            })
            .collect();
        // ring-100k is deterministic: tight ±25 %. A 40 % drop fails...
        pts.push(point(
            "ring-100k",
            "5",
            &[("events_per_sec", 0.6e6), ("wall_secs", 50.0)],
        ));
        let report = trend_gate(&pts, DEFAULT_WINDOW, None);
        assert!(!report.passed());
        assert_eq!(report.findings.len(), 1, "wall_secs must not gate");
        let f = &report.findings[0];
        assert_eq!(f.metric, "events_per_sec");
        assert_eq!(f.window.len(), 5);
        assert!(
            f.tolerance_source.contains("tight"),
            "{}",
            f.tolerance_source
        );
        assert!(f.explain().contains("dropped below"), "{}", f.explain());
        // ... and a 10 % drop passes.
        let last = pts.last_mut().unwrap();
        last.metrics[0].1 = 0.9e6;
        assert!(trend_gate(&pts, DEFAULT_WINDOW, None).passed());
    }

    #[test]
    fn utilization_rise_regresses_and_tol_override_wins() {
        let mut pts: Vec<TrendPoint> = (0..4)
            .map(|i| {
                let mut p = point("self-heal", &i.to_string(), &[("gradient_worst", 0.50)]);
                p.kind = "conformance".to_string();
                p
            })
            .collect();
        let mut last = point("self-heal", "4", &[("gradient_worst", 0.70)]);
        last.kind = "conformance".to_string();
        pts.push(last);
        // +40 % utilization: fails the tight default...
        let report = trend_gate(&pts, DEFAULT_WINDOW, None);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].explain().contains("rose above"));
        // ... passes with an explicit loose override, whose provenance the
        // explain output names.
        let report = trend_gate(&pts, DEFAULT_WINDOW, Some(0.60));
        assert!(report.passed());
        let report = trend_gate(&pts, DEFAULT_WINDOW, Some(0.10));
        assert!(report.findings[0].tolerance_source.contains("--tol"));
    }

    #[test]
    fn window_limits_how_far_back_the_median_looks() {
        // History: five slow points, then three fast ones. Window 3 only
        // sees the fast era, so a return to the slow rate regresses.
        let mut pts: Vec<TrendPoint> = (0..5)
            .map(|i| point("ring-100k", &i.to_string(), &[("events_per_sec", 1.0e6)]))
            .collect();
        for i in 5..8 {
            pts.push(point(
                "ring-100k",
                &i.to_string(),
                &[("events_per_sec", 2.0e6)],
            ));
        }
        pts.push(point("ring-100k", "8", &[("events_per_sec", 1.0e6)]));
        assert!(
            !trend_gate(&pts, 3, None).passed(),
            "window 3: fast era only"
        );
        // A window spanning the slow era pulls the median down to 1.5e6;
        // the same point is then a 33 % drop — still failing tight, but
        // passing a 40 % override. The window genuinely changes the verdict.
        assert!(trend_gate(&pts, 8, Some(0.40)).passed());
        assert!(!trend_gate(&pts, 3, Some(0.40)).passed());
    }

    #[test]
    fn series_are_keyed_by_seed_and_threads() {
        // Interleaved seeds: each seed's series gates independently.
        let mut pts = Vec::new();
        for i in 0..4 {
            for seed in [0u64, 1] {
                let mut p = point("ring-100k", &i.to_string(), &[("events_per_sec", 1.0e6)]);
                p.seed = seed;
                pts.push(p);
            }
        }
        let mut bad = point("ring-100k", "4", &[("events_per_sec", 0.5e6)]);
        bad.seed = 1;
        pts.push(bad);
        let report = trend_gate(&pts, DEFAULT_WINDOW, None);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].seed, 1);
    }

    #[test]
    fn distillers_produce_gateable_points() {
        let e = BenchEntry {
            scenario: "ring-100k".to_string(),
            nodes: 100_000,
            seed: 0,
            threads: 2,
            sim_secs: 1.5,
            build_secs: 0.5,
            wall_secs: 30.0,
            events: 44_000_000,
            events_per_sec: 1.46e6,
            ticks: 987,
            mode_evaluations: 1,
            messages_delivered: 2,
        };
        let p = point_from_bench("123", "default", &e);
        assert_eq!(p.kind, "bench");
        assert_eq!(p.threads, 2);
        assert_eq!(p.metric("events_per_sec"), Some(1.46e6));
        let line = point_json(&p);
        assert_eq!(read_series(&line).unwrap()[0], p);
    }
}
