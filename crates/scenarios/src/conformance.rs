//! The conformance campaign: every registry scenario × seed driven
//! through the paper-bound oracles of [`gcs_analysis::oracle`].
//!
//! Where [`campaign`](crate::campaign) measures *what* a run did (skew
//! statistics, trajectories), conformance checks *that it was allowed to*:
//! each sampled snapshot is verified against the Theorem 5.6 global-skew
//! envelope, the Theorem 5.22 gradient bound, and the weak-edge legality
//! bound, with the realized fault/insertion log widening the envelope
//! exactly where the theorems permit. `gcs-scenarios conformance` sweeps
//! the whole registry and exits non-zero on any bound violation — the
//! theorem-level CI gate next to the statistical `compare` gate.

use gcs_analysis::oracle::{ConformanceChecker, ConformanceReport};
use gcs_analysis::{parallel_map_progress, Table};

use crate::error::ScenarioError;
use crate::spec::ScenarioSpec;

/// One scenario × seed conformance verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceRow {
    /// Scenario name.
    pub name: String,
    /// Node count after scaling.
    pub nodes: usize,
    /// Run seed.
    pub seed: u64,
    /// The oracle's verdict for this run.
    pub report: ConformanceReport,
}

/// Drives one seeded scenario over its observation grid — replaying
/// scripted faults at their exact instants, exactly like the campaign
/// runner — and checks every sampled snapshot against the paper bounds.
///
/// # Errors
///
/// Returns [`ScenarioError`] if the spec fails to validate or build.
pub fn run_scenario_conformance(
    spec: &ScenarioSpec,
    seed: u64,
) -> Result<ConformanceReport, ScenarioError> {
    let mut sim = spec.build(seed)?;
    let mut checker = ConformanceChecker::new(&sim, spec.sample);
    crate::campaign::drive_sampled(
        &mut sim,
        &spec.faults,
        spec.sample,
        spec.end_secs(),
        |_, sim| checker.observe(sim),
    );
    Ok(checker.finish())
}

/// Runs every scenario × seed combination in parallel (same executor as
/// the campaign runner, input order preserved).
///
/// # Errors
///
/// Returns the first [`ScenarioError`] any run produced.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn run_conformance(
    specs: &[ScenarioSpec],
    seeds: &[u64],
) -> Result<Vec<ConformanceRow>, ScenarioError> {
    run_conformance_progress(specs, seeds, |_, _, _| {})
}

/// [`run_conformance`] with a completion callback: `on_done(spec, seed,
/// result)` fires once per scenario × seed in job order (scenario-major,
/// then seed) regardless of worker scheduling, so progress output is
/// deterministic.
///
/// # Errors
///
/// Returns the first [`ScenarioError`] any run produced.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn run_conformance_progress(
    specs: &[ScenarioSpec],
    seeds: &[u64],
    on_done: impl Fn(&ScenarioSpec, u64, &Result<ConformanceReport, ScenarioError>) + Sync,
) -> Result<Vec<ConformanceRow>, ScenarioError> {
    assert!(!seeds.is_empty(), "conformance needs at least one seed");
    let jobs: Vec<(usize, u64)> = specs
        .iter()
        .enumerate()
        .flat_map(|(i, _)| seeds.iter().map(move |&s| (i, s)))
        .collect();
    let results = parallel_map_progress(
        jobs.clone(),
        |(i, seed)| run_scenario_conformance(&specs[i], seed),
        |idx, result| {
            let spec = &specs[idx / seeds.len()];
            on_done(spec, seeds[idx % seeds.len()], result);
        },
    );
    let mut rows = Vec::with_capacity(jobs.len());
    for ((i, seed), report) in jobs.into_iter().zip(results) {
        rows.push(ConformanceRow {
            name: specs[i].name.clone(),
            nodes: specs[i].topology.node_count(),
            seed,
            report: report?,
        });
    }
    Ok(rows)
}

/// Renders a conformance sweep as one row per scenario × seed.
#[must_use]
pub fn conformance_table(rows: &[ConformanceRow]) -> Table {
    let mut t = Table::new(
        format!("conformance sweep — {} run(s)", rows.len()),
        &[
            "scenario",
            "seed",
            "samples",
            "global use",
            "gradient use",
            "weak use",
            "faults",
            "verdict",
        ],
    );
    t.caption(
        "use = worst observed/allowed ratio of each bound family (global-skew \
         envelope, pairwise gradient, weak-edge legality); > 100% is a violation. \
         faults = corruptions replayed from the realized change log.",
    );
    let pct = |c: &gcs_analysis::BoundCheck| {
        if c.checks == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", 100.0 * c.worst_utilization)
        }
    };
    for r in rows {
        t.row([
            r.name.clone(),
            r.seed.to_string(),
            r.report.samples.to_string(),
            pct(&r.report.global),
            pct(&r.report.gradient),
            pct(&r.report.weak_edges),
            r.report.faults_seen.to_string(),
            if r.report.is_conformant() {
                "ok".to_string()
            } else {
                "VIOLATION".to_string()
            },
        ]);
    }
    t
}

/// The violating runs of a sweep, with their violation descriptions.
#[must_use]
pub fn violations(rows: &[ConformanceRow]) -> Vec<(String, u64, Vec<String>)> {
    rows.iter()
        .filter(|r| !r.report.is_conformant())
        .map(|r| (r.name.clone(), r.seed, r.report.violations()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;
    use crate::spec::Scale;

    #[test]
    fn steady_and_fault_scenarios_conform() {
        for name in ["ring-steady", "self-heal"] {
            let spec = registry::find(name).expect("built-in").scaled(Scale::Tiny);
            let report = run_scenario_conformance(&spec, 1).unwrap();
            assert!(report.is_conformant(), "{name}: {:?}", report.violations());
            assert!(report.samples > 0);
            if name == "self-heal" {
                assert_eq!(report.faults_seen, 1, "the scripted fault must be replayed");
            }
        }
    }

    #[test]
    fn sweep_runs_in_parallel_and_tabulates() {
        let specs = vec![
            registry::find("line-worstcase")
                .unwrap()
                .scaled(Scale::Tiny),
            registry::find("churn-burst").unwrap().scaled(Scale::Tiny),
        ];
        let rows = run_conformance(&specs, &[0, 1]).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].name, "line-worstcase");
        assert_eq!(rows[0].seed, 0);
        assert!(violations(&rows).is_empty(), "{:?}", violations(&rows));
        let table = conformance_table(&rows).to_string();
        assert!(table.contains("conformance sweep"));
        assert!(table.contains("churn-burst"));
    }

    #[test]
    fn conformance_is_deterministic() {
        let spec = registry::find("byzantine-est").unwrap().scaled(Scale::Tiny);
        let a = run_scenario_conformance(&spec, 5).unwrap();
        let b = run_scenario_conformance(&spec, 5).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.faults_seen, 3, "all three scripted corruptions replay");
    }
}
