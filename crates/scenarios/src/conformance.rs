//! The conformance campaign: every registry scenario × seed driven
//! through the paper-bound oracles of [`gcs_analysis::oracle`].
//!
//! Where [`campaign`](crate::campaign) measures *what* a run did (skew
//! statistics, trajectories), conformance checks *that it was allowed to*:
//! each sampled snapshot is verified against the Theorem 5.6 global-skew
//! envelope, the Theorem 5.22 gradient bound, and the weak-edge legality
//! bound, with the realized fault/insertion log widening the envelope
//! exactly where the theorems permit. `gcs-scenarios conformance` sweeps
//! the whole registry and exits non-zero on any bound violation — the
//! theorem-level CI gate next to the statistical `compare` gate.

use gcs_analysis::oracle::{ConformanceChecker, ConformanceReport, OracleConfig, OracleSampling};
use gcs_analysis::{parallel_map_progress, Table};
use gcs_core::Engine;

use crate::error::ScenarioError;
use crate::spec::ScenarioSpec;

/// Knobs for a conformance sweep beyond the default exact sequential pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConformanceOptions {
    /// Sampled-oracle source rate in `(0, 1]`; `None` keeps the exact
    /// all-pairs oracle. See [`OracleSampling`] for the detection bound.
    pub oracle_sample: Option<f64>,
    /// Base seed for the sampled oracle's source draws. Mixed with each
    /// run seed so different runs draw independent source sets while one
    /// `(scenario, seed)` run stays byte-deterministic — including across
    /// engine shard counts, because the draw never sees the engine.
    pub oracle_seed: u64,
    /// Worker threads per run: 1 drives the sequential reference engine,
    /// larger values drive the sharded engine with that many shards.
    pub threads: usize,
}

impl Default for ConformanceOptions {
    fn default() -> Self {
        ConformanceOptions {
            oracle_sample: None,
            oracle_seed: 0,
            threads: 1,
        }
    }
}

impl ConformanceOptions {
    /// The per-run sampling plan (`None` in exact mode). The oracle seed
    /// is mixed with the run seed via a golden-ratio multiply so seed 0
    /// and seed 1 do not share source draws.
    #[must_use]
    pub fn sampling_for(&self, run_seed: u64) -> Option<OracleSampling> {
        self.oracle_sample.map(|rate| {
            OracleSampling::new(
                rate,
                self.oracle_seed ^ run_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            )
        })
    }
}

/// One scenario × seed conformance verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceRow {
    /// Scenario name.
    pub name: String,
    /// Node count after scaling.
    pub nodes: usize,
    /// Run seed.
    pub seed: u64,
    /// The oracle's verdict for this run.
    pub report: ConformanceReport,
}

/// Drives one seeded scenario over its observation grid — replaying
/// scripted faults at their exact instants, exactly like the campaign
/// runner — and checks every sampled snapshot against the paper bounds.
///
/// # Errors
///
/// Returns [`ScenarioError`] if the spec fails to validate or build.
pub fn run_scenario_conformance(
    spec: &ScenarioSpec,
    seed: u64,
) -> Result<ConformanceReport, ScenarioError> {
    run_scenario_conformance_with(spec, seed, &ConformanceOptions::default())
}

/// [`run_scenario_conformance`] with explicit [`ConformanceOptions`]:
/// sampled-oracle mode and/or the sharded engine. The oracle streams over
/// snapshots at quiescent instants through the engine-agnostic [`Engine`]
/// seam, so the verdict is identical at every shard count; in sampled mode
/// it is a conservative projection of the exact verdict (never reports a
/// larger worst case than exact mode would).
///
/// # Errors
///
/// Returns [`ScenarioError`] if the spec fails to validate or build.
pub fn run_scenario_conformance_with(
    spec: &ScenarioSpec,
    seed: u64,
    opts: &ConformanceOptions,
) -> Result<ConformanceReport, ScenarioError> {
    if opts.threads <= 1 {
        let mut sim = spec.build(seed)?;
        Ok(check_streaming(&mut sim, spec, seed, opts))
    } else {
        let mut sim = crate::telemetry::build_parallel(spec, seed, opts.threads)?;
        Ok(check_streaming(&mut sim, spec, seed, opts))
    }
}

/// The engine-generic streaming check: build the oracle from the master
/// sim, drive the observation grid, observe each quiescent snapshot.
/// Memory stays bounded — the checker folds every sample into O(hop
/// classes) running state and no trajectory is retained.
fn check_streaming<E: Engine>(
    sim: &mut E,
    spec: &ScenarioSpec,
    seed: u64,
    opts: &ConformanceOptions,
) -> ConformanceReport {
    let mut cfg = OracleConfig::for_sim(sim.as_sim(), spec.sample);
    cfg.sampling = opts.sampling_for(seed);
    let mut checker = ConformanceChecker::with_config(sim.as_sim(), cfg);
    crate::campaign::drive_sampled(sim, &spec.faults, spec.sample, spec.end_secs(), |_, s| {
        checker.observe(s.as_sim());
    });
    checker.finish()
}

/// Runs every scenario × seed combination in parallel (same executor as
/// the campaign runner, input order preserved).
///
/// # Errors
///
/// Returns the first [`ScenarioError`] any run produced.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn run_conformance(
    specs: &[ScenarioSpec],
    seeds: &[u64],
) -> Result<Vec<ConformanceRow>, ScenarioError> {
    run_conformance_progress(specs, seeds, |_, _, _| {})
}

/// [`run_conformance`] with explicit [`ConformanceOptions`].
///
/// # Errors
///
/// Returns the first [`ScenarioError`] any run produced.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn run_conformance_with(
    specs: &[ScenarioSpec],
    seeds: &[u64],
    opts: &ConformanceOptions,
) -> Result<Vec<ConformanceRow>, ScenarioError> {
    run_conformance_progress_with(specs, seeds, opts, |_, _, _| {})
}

/// [`run_conformance`] with a completion callback: `on_done(spec, seed,
/// result)` fires once per scenario × seed in job order (scenario-major,
/// then seed) regardless of worker scheduling, so progress output is
/// deterministic.
///
/// # Errors
///
/// Returns the first [`ScenarioError`] any run produced.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn run_conformance_progress(
    specs: &[ScenarioSpec],
    seeds: &[u64],
    on_done: impl Fn(&ScenarioSpec, u64, &Result<ConformanceReport, ScenarioError>) + Sync,
) -> Result<Vec<ConformanceRow>, ScenarioError> {
    run_conformance_progress_with(specs, seeds, &ConformanceOptions::default(), on_done)
}

/// [`run_conformance_progress`] with explicit [`ConformanceOptions`].
///
/// # Errors
///
/// Returns the first [`ScenarioError`] any run produced.
///
/// # Panics
///
/// Panics if `seeds` is empty.
pub fn run_conformance_progress_with(
    specs: &[ScenarioSpec],
    seeds: &[u64],
    opts: &ConformanceOptions,
    on_done: impl Fn(&ScenarioSpec, u64, &Result<ConformanceReport, ScenarioError>) + Sync,
) -> Result<Vec<ConformanceRow>, ScenarioError> {
    assert!(!seeds.is_empty(), "conformance needs at least one seed");
    let jobs: Vec<(usize, u64)> = specs
        .iter()
        .enumerate()
        .flat_map(|(i, _)| seeds.iter().map(move |&s| (i, s)))
        .collect();
    let results = parallel_map_progress(
        jobs.clone(),
        |(i, seed)| run_scenario_conformance_with(&specs[i], seed, opts),
        |idx, result| {
            let spec = &specs[idx / seeds.len()];
            on_done(spec, seeds[idx % seeds.len()], result);
        },
    );
    let mut rows = Vec::with_capacity(jobs.len());
    for ((i, seed), report) in jobs.into_iter().zip(results) {
        rows.push(ConformanceRow {
            name: specs[i].name.clone(),
            nodes: specs[i].topology.node_count(),
            seed,
            report: report?,
        });
    }
    Ok(rows)
}

/// Renders a conformance sweep as one row per scenario × seed.
#[must_use]
pub fn conformance_table(rows: &[ConformanceRow]) -> Table {
    let mut t = Table::new(
        format!("conformance sweep — {} run(s)", rows.len()),
        &[
            "scenario",
            "seed",
            "samples",
            "global use",
            "gradient use",
            "weak use",
            "faults",
            "verdict",
        ],
    );
    t.caption(
        "use = worst observed/allowed ratio of each bound family (global-skew \
         envelope, pairwise gradient, weak-edge legality); > 100% is a violation. \
         faults = corruptions replayed from the realized change log.",
    );
    let pct = |c: &gcs_analysis::BoundCheck| {
        if c.checks == 0 {
            "-".to_string()
        } else {
            format!("{:.1}%", 100.0 * c.worst_utilization)
        }
    };
    for r in rows {
        t.row([
            r.name.clone(),
            r.seed.to_string(),
            r.report.samples.to_string(),
            pct(&r.report.global),
            pct(&r.report.gradient),
            pct(&r.report.weak_edges),
            r.report.faults_seen.to_string(),
            if r.report.is_conformant() {
                "ok".to_string()
            } else {
                "VIOLATION".to_string()
            },
        ]);
    }
    t
}

/// The violating runs of a sweep, with their violation descriptions.
#[must_use]
pub fn violations(rows: &[ConformanceRow]) -> Vec<(String, u64, Vec<String>)> {
    rows.iter()
        .filter(|r| !r.report.is_conformant())
        .map(|r| (r.name.clone(), r.seed, r.report.violations()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;
    use crate::spec::Scale;

    #[test]
    fn steady_and_fault_scenarios_conform() {
        for name in ["ring-steady", "self-heal"] {
            let spec = registry::find(name).expect("built-in").scaled(Scale::Tiny);
            let report = run_scenario_conformance(&spec, 1).unwrap();
            assert!(report.is_conformant(), "{name}: {:?}", report.violations());
            assert!(report.samples > 0);
            if name == "self-heal" {
                assert_eq!(report.faults_seen, 1, "the scripted fault must be replayed");
            }
        }
    }

    #[test]
    fn sweep_runs_in_parallel_and_tabulates() {
        let specs = vec![
            registry::find("line-worstcase")
                .unwrap()
                .scaled(Scale::Tiny),
            registry::find("churn-burst").unwrap().scaled(Scale::Tiny),
        ];
        let rows = run_conformance(&specs, &[0, 1]).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].name, "line-worstcase");
        assert_eq!(rows[0].seed, 0);
        assert!(violations(&rows).is_empty(), "{:?}", violations(&rows));
        let table = conformance_table(&rows).to_string();
        assert!(table.contains("conformance sweep"));
        assert!(table.contains("churn-burst"));
    }

    #[test]
    fn conformance_is_deterministic() {
        let spec = registry::find("byzantine-est").unwrap().scaled(Scale::Tiny);
        let a = run_scenario_conformance(&spec, 5).unwrap();
        let b = run_scenario_conformance(&spec, 5).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.faults_seen, 3, "all three scripted corruptions replay");
    }

    #[test]
    fn sampled_streaming_verdict_is_shard_count_invariant() {
        let spec = registry::find("self-heal").unwrap().scaled(Scale::Tiny);
        let opts = |threads| ConformanceOptions {
            oracle_sample: Some(0.25),
            oracle_seed: 7,
            threads,
        };
        let seq = run_scenario_conformance_with(&spec, 2, &opts(1)).unwrap();
        let two = run_scenario_conformance_with(&spec, 2, &opts(2)).unwrap();
        let four = run_scenario_conformance_with(&spec, 2, &opts(4)).unwrap();
        assert_eq!(seq, two, "sampled oracle must not see the engine");
        assert_eq!(seq, four);
        assert!(seq.sampled_sources > 0, "sampled mode actually sampled");
        assert!(seq.is_conformant(), "{:?}", seq.violations());
    }

    #[test]
    fn sampled_streaming_is_a_conservative_projection_of_exact() {
        // Default scale (36 nodes): large enough that the 8-source floor
        // still samples a strict subset of the exact all-pairs sweep.
        let spec = registry::find("grid-sensor")
            .unwrap()
            .scaled(Scale::Default);
        let exact = run_scenario_conformance(&spec, 3).unwrap();
        let sampled = run_scenario_conformance_with(
            &spec,
            3,
            &ConformanceOptions {
                oracle_sample: Some(0.3),
                oracle_seed: 11,
                threads: 1,
            },
        )
        .unwrap();
        assert!(sampled.gradient.checks < exact.gradient.checks);
        assert!(sampled.gradient.worst_utilization <= exact.gradient.worst_utilization);
        assert!(sampled.gradient.min_margin >= exact.gradient.min_margin);
        // The global envelope and weak-edge families are not sampled.
        assert_eq!(sampled.global, exact.global);
        assert_eq!(sampled.weak_edges, exact.weak_edges);
    }

    #[test]
    fn run_seed_perturbs_the_source_draw() {
        let opts = ConformanceOptions {
            oracle_sample: Some(0.25),
            oracle_seed: 7,
            threads: 1,
        };
        let a = opts.sampling_for(0).expect("sampled");
        let b = opts.sampling_for(1).expect("sampled");
        assert_ne!(a.seed, b.seed, "run seeds must decorrelate source draws");
        assert_eq!(opts.sampling_for(0).expect("sampled").seed, a.seed);
    }
}
